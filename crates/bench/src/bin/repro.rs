//! Regenerates every table and figure of "Provisioning On-line Games".
//!
//! ```text
//! repro [OPTIONS] <ARTIFACT>...
//!
//! ARTIFACT:  table1 table2 table3 table4 fig1..fig15
//!            ablate-tick ablate-population ablate-nat-capacity
//!            ablate-nat-buffer route-cache source-model web-vs-game
//!            all        every artifact above
//!            main       tables I-III and figures 1-13
//!            nat        table IV and figures 14-15
//!
//! OPTIONS:
//!   --seed N           RNG seed (default 2002)
//!   --hours H          main-trace length in hours (default 24)
//!   --full-week        use the paper's full 626,477 s trace (~7.25 days)
//!   --csv DIR          also write key figures' data series as CSV into DIR
//!   --progress         heartbeat on stderr (sim/wall ratio, ev/s, ETA)
//!   --metrics-out FILE metrics snapshot per artifact (text + JSON lines)
//!   --metrics-format F metrics-out format: text, json, or prom
//!                      (default: commented text + JSON lines combined)
//!   --trace-out FILE   event journal per world run, written as
//!                      FILE -> <stem>.<run>.<ext>; a .json extension
//!                      selects Chrome trace-event format (open in
//!                      Perfetto / chrome://tracing), anything else JSONL
//!   --series-out DIR   sim-time metric series per world run (DIR/main.csv,
//!                      DIR/nat.csv), sampled on the sim clock
//!   --series-interval MS  series sampling period in sim-ms (default 1000)
//!   --profile-out DIR  hierarchical wall-time profile per world run:
//!                      DIR/<run>.folded (collapsed stacks, flamegraph-
//!                      ready) and DIR/<run>.trace.json (journal merged
//!                      with profile spans, Perfetto-openable), plus a
//!                      ranked self-time table on stderr
//!   --chaos PROFILE    run under a fault-injection campaign:
//!                      none modem-burst reorder-dup last-mile-loss nat-exhaust
//!   --chaos-seed N     impairment seed (default: same as --seed)
//!   --fleet N          simulate a facility of N independent servers on the
//!                      work-stealing pool, merge their analysis state, and
//!                      print the provisioning report (pps/bandwidth mean
//!                      and p95/p99, per-player slope, aggregate Hurst,
//!                      uplink sizing); may be used without artifacts
//!   --fleet-minutes M  simulated minutes per fleet server (default 30)
//!   --serve ADDR       stream the run live over HTTP (GET /metrics,
//!                      /events (SSE), /series, /status, /report,
//!                      /healthz, /shards, /profile); the server runs
//!                      for the duration of the repro
//!   --serve-linger S   keep serving S seconds after the run finishes
//!                      (requires --serve)
//!   --speed S          replay speed: a multiplier (1 = wall clock,
//!                      8 = 8x fast-forward) or "max" (default: unpaced)
//! ```
//!
//! Instrumentation is observe-only: a seeded run's artifact output is
//! byte-identical with and without `--progress`/`--metrics-out`/
//! `--trace-out`/`--series-out`/`--serve`/`--speed`. Chaos campaigns are
//! replayable: the same `--chaos`/`--chaos-seed` pair impairs the same
//! packets, and `--chaos none` is byte-identical to no `--chaos` at all.

use csprov::chaos::{self, ChaosReport, ChaosSpec};
use csprov::experiments::{ablations, aggregate, figures, nat, tables, web, ExperimentId};
use csprov::fleet::ShardState;
use csprov::fleet::{self, FleetConfig};
use csprov::pipeline::MainRun;
use csprov_analysis::report::to_csv;
use csprov_bench::harness::{render_bench_json, BenchResult};
use csprov_game::{GameMetrics, ScenarioConfig, WorldInstruments, PAPER_TRACE_SECS};
use csprov_net::LinkMetrics;
use csprov_obs::{
    BroadcastBus, BusEvent, Journal, MetricsRegistry, Profile, ProfileSnapshot, ProgressReporter,
    SeriesSampler, ShardHealthBoard, TraceEvent, SHARD_RUNNING,
};
use csprov_router::EngineConfig;
use csprov_serve::ServeShared;
use csprov_sim::{Pacer, PacerStats, SimDuration, Simulator, Speed};
use std::cell::{Cell, RefCell};
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many kernel events pass between progress-observer callbacks.
const OBSERVER_STRIDE: u64 = 8192;

/// Wall interval between snapshot refreshes pushed to the serving plane.
const SERVE_REFRESH: Duration = Duration::from_millis(200);

/// Rendering for `--metrics-out`. The default keeps the legacy combined
/// dump (per-artifact commented text + JSON lines).
#[derive(Clone, Copy, PartialEq)]
enum MetricsFormat {
    Combined,
    Text,
    Json,
    Prom,
}

struct Options {
    seed: u64,
    hours: f64,
    full_week: bool,
    csv_dir: Option<String>,
    progress: bool,
    metrics_out: Option<String>,
    metrics_format: MetricsFormat,
    trace_out: Option<String>,
    series_out: Option<String>,
    series_interval_ms: u64,
    profile_out: Option<String>,
    chaos: Option<ChaosSpec>,
    chaos_seed: Option<u64>,
    fleet: Option<usize>,
    fleet_minutes: u64,
    fleet_state_dir: Option<String>,
    fleet_resume: bool,
    fleet_retries: Option<u32>,
    fleet_fail: Vec<fleet::FailSpec>,
    serve: Option<String>,
    serve_linger_secs: u64,
    speed: Speed,
    ingest: Option<IngestPath>,
    artifacts: Vec<ExperimentId>,
}

/// Which analyzer delivery path `--ingest` pins (normally the columnar
/// fast path is on and the flag is only used to cross-check the two).
#[derive(Clone, Copy)]
enum IngestPath {
    Columnar,
    PerRecord,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: 2002,
        hours: 24.0,
        full_week: false,
        csv_dir: None,
        progress: false,
        metrics_out: None,
        metrics_format: MetricsFormat::Combined,
        trace_out: None,
        series_out: None,
        series_interval_ms: 1000,
        profile_out: None,
        chaos: None,
        chaos_seed: None,
        fleet: None,
        fleet_minutes: 30,
        fleet_state_dir: None,
        fleet_resume: false,
        fleet_retries: None,
        fleet_fail: Vec::new(),
        serve: None,
        serve_linger_secs: 0,
        speed: Speed::Max,
        ingest: None,
        artifacts: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--hours" => {
                opts.hours = args
                    .next()
                    .ok_or("--hours needs a value")?
                    .parse()
                    .map_err(|e| format!("bad hours: {e}"))?;
            }
            "--full-week" => opts.full_week = true,
            "--csv" => opts.csv_dir = Some(args.next().ok_or("--csv needs a directory")?),
            "--progress" => opts.progress = true,
            "--metrics-out" => {
                opts.metrics_out = Some(args.next().ok_or("--metrics-out needs a file")?)
            }
            "--metrics-format" => {
                let f = args.next().ok_or("--metrics-format needs a value")?;
                opts.metrics_format = match f.as_str() {
                    "text" => MetricsFormat::Text,
                    "json" => MetricsFormat::Json,
                    "prom" => MetricsFormat::Prom,
                    other => {
                        return Err(format!(
                            "unknown metrics format '{other}' (known: text, json, prom)"
                        ))
                    }
                };
            }
            "--trace-out" => opts.trace_out = Some(args.next().ok_or("--trace-out needs a file")?),
            "--series-out" => {
                opts.series_out = Some(args.next().ok_or("--series-out needs a directory")?)
            }
            "--series-interval" => {
                opts.series_interval_ms = args
                    .next()
                    .ok_or("--series-interval needs a value in ms")?
                    .parse()
                    .map_err(|e| format!("bad series interval: {e}"))?;
                if opts.series_interval_ms == 0 {
                    return Err("--series-interval must be > 0".into());
                }
            }
            "--profile-out" => {
                opts.profile_out = Some(args.next().ok_or("--profile-out needs a directory")?)
            }
            "--chaos" => {
                let name = args.next().ok_or("--chaos needs a profile name")?;
                opts.chaos = Some(chaos::by_name(&name).ok_or_else(|| {
                    format!(
                        "unknown chaos profile '{name}' (known: {})",
                        chaos::names().join(", ")
                    )
                })?);
            }
            "--chaos-seed" => {
                opts.chaos_seed = Some(
                    args.next()
                        .ok_or("--chaos-seed needs a value")?
                        .parse()
                        .map_err(|e| format!("bad chaos seed: {e}"))?,
                );
            }
            "--fleet" => {
                let n: usize = args
                    .next()
                    .ok_or("--fleet needs a server count")?
                    .parse()
                    .map_err(|e| format!("bad fleet size: {e}"))?;
                if n == 0 {
                    return Err("--fleet must be > 0".into());
                }
                opts.fleet = Some(n);
            }
            "--fleet-minutes" => {
                opts.fleet_minutes = args
                    .next()
                    .ok_or("--fleet-minutes needs a value")?
                    .parse()
                    .map_err(|e| format!("bad fleet minutes: {e}"))?;
                if opts.fleet_minutes == 0 {
                    return Err("--fleet-minutes must be > 0".into());
                }
            }
            "--fleet-state-dir" => {
                opts.fleet_state_dir =
                    Some(args.next().ok_or("--fleet-state-dir needs a directory")?)
            }
            "--resume" => opts.fleet_resume = true,
            "--fleet-retries" => {
                let n: u32 = args
                    .next()
                    .ok_or("--fleet-retries needs a value")?
                    .parse()
                    .map_err(|e| format!("bad fleet retries: {e}"))?;
                if n == 0 {
                    return Err("--fleet-retries must be > 0".into());
                }
                opts.fleet_retries = Some(n);
            }
            "--fleet-fail" => {
                let spec = args.next().ok_or("--fleet-fail needs SHARD:COUNT,...")?;
                opts.fleet_fail = parse_fail_plan(&spec)?;
            }
            "--serve" => {
                opts.serve = Some(args.next().ok_or("--serve needs an address (host:port)")?)
            }
            "--serve-linger" => {
                opts.serve_linger_secs = args
                    .next()
                    .ok_or("--serve-linger needs seconds")?
                    .parse()
                    .map_err(|e| format!("bad linger seconds: {e}"))?;
            }
            "--speed" => {
                opts.speed = args.next().ok_or("--speed needs a value")?.parse()?;
            }
            "--ingest" => {
                let path = args.next().ok_or("--ingest needs a value")?;
                opts.ingest = Some(match path.as_str() {
                    "columnar" => IngestPath::Columnar,
                    "per-record" => IngestPath::PerRecord,
                    other => {
                        return Err(format!(
                            "--ingest must be columnar or per-record, got {other}"
                        ));
                    }
                });
            }
            "-h" | "--help" => return Err(String::new()),
            "all" => opts.artifacts = ExperimentId::all(),
            "main" => {
                opts.artifacts.extend([
                    ExperimentId::Table1,
                    ExperimentId::Table2,
                    ExperimentId::Table3,
                ]);
                opts.artifacts.extend((1..=13).map(ExperimentId::Fig));
            }
            "nat" => {
                opts.artifacts.extend([
                    ExperimentId::Table4,
                    ExperimentId::Fig14,
                    ExperimentId::Fig15,
                ]);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option: {other}"));
            }
            other => {
                let id: ExperimentId = other.parse()?;
                opts.artifacts.push(id);
            }
        }
    }
    if opts.artifacts.is_empty() && opts.fleet.is_none() {
        return Err("no artifacts requested".into());
    }
    if opts.metrics_format != MetricsFormat::Combined && opts.metrics_out.is_none() {
        return Err("--metrics-format requires --metrics-out".into());
    }
    if opts.serve_linger_secs > 0 && opts.serve.is_none() {
        return Err("--serve-linger requires --serve".into());
    }
    if opts.fleet.is_none()
        && (opts.fleet_state_dir.is_some()
            || opts.fleet_resume
            || opts.fleet_retries.is_some()
            || !opts.fleet_fail.is_empty())
    {
        return Err(
            "--fleet-state-dir/--resume/--fleet-retries/--fleet-fail require --fleet".into(),
        );
    }
    if opts.fleet_resume && opts.fleet_state_dir.is_none() {
        return Err("--resume requires --fleet-state-dir".into());
    }
    Ok(opts)
}

/// Parses `--fleet-fail SHARD:COUNT,...` — the deterministic fault plan
/// used by the crash-resume CI smoke and local resilience testing. A
/// COUNT of `forever` (or `u32::MAX`) makes the shard fail permanently;
/// `SHARD:stall=MS` instead makes the shard sleep MS wall-milliseconds
/// before each attempt (sim results unchanged), which is how the health
/// watchdog is exercised end to end.
fn parse_fail_plan(spec: &str) -> Result<Vec<fleet::FailSpec>, String> {
    let mut plan = Vec::new();
    for part in spec.split(',') {
        let (shard, action) = part.split_once(':').ok_or_else(|| {
            format!("bad --fleet-fail entry '{part}' (want SHARD:COUNT or SHARD:stall=MS)")
        })?;
        let shard: usize = shard
            .parse()
            .map_err(|e| format!("bad --fleet-fail shard '{shard}': {e}"))?;
        if let Some(ms) = action.strip_prefix("stall=") {
            let stall_ms: u64 = ms
                .parse()
                .map_err(|e| format!("bad --fleet-fail stall '{ms}': {e}"))?;
            plan.push(fleet::FailSpec {
                shard,
                failures: 0,
                stall_ms,
            });
            continue;
        }
        let failures: u32 = if action == "forever" {
            u32::MAX
        } else {
            action
                .parse()
                .map_err(|e| format!("bad --fleet-fail count '{action}': {e}"))?
        };
        plan.push(fleet::FailSpec {
            shard,
            failures,
            stall_ms: 0,
        });
    }
    Ok(plan)
}

fn usage() {
    eprintln!(
        "usage: repro [--seed N] [--hours H] [--full-week] [--csv DIR] [--progress] \
         [--metrics-out FILE] [--metrics-format text|json|prom] [--trace-out FILE] \
         [--series-out DIR] [--series-interval MS] [--profile-out DIR] \
         [--chaos PROFILE] [--chaos-seed N] \
         [--fleet N [--fleet-minutes M] [--fleet-state-dir DIR] [--resume] \
         [--fleet-retries N] [--fleet-fail SHARD:COUNT|SHARD:stall=MS,...]] \
         [--serve ADDR [--serve-linger S]] \
         [--speed N|max] [--ingest columnar|per-record] <artifact|all|main|nat>..."
    );
    eprintln!("       repro fleet merge OUT_REPORT STATE_FILE...");
    eprintln!(
        "       repro fleet work --shards LO:HI --fleet N --fleet-state-dir DIR \
         [--seed S] [--fleet-minutes M] [--fleet-retries N] [--fleet-fail SPEC]"
    );
    eprintln!(
        "       repro fleet coordinate --fleet N --fleet-state-dir DIR [--seed S] \
         [--fleet-minutes M] [--workers W] [--fan-in K] [--fleet-retries N] \
         [--fleet-fail SPEC] [--serve ADDR [--serve-linger S]]"
    );
    eprintln!("artifacts: table1..table4, fig1..fig15, ablate-tick, ablate-population,");
    eprintln!("           ablate-nat-capacity, ablate-nat-buffer, route-cache, source-model,");
    eprintln!("           web-vs-game");
    eprintln!("chaos profiles: {}", chaos::names().join(", "));
}

/// Builds the observe-only side channels for one world run: metric handles
/// registered against `registry` (when a metrics file was requested), an
/// event journal (when `--trace-out` or `--serve` is on), a wall-clock
/// pacer (`--speed`), and a kernel observer driving a [`ProgressReporter`]
/// (`--progress`), a [`SeriesSampler`] (`--series-out`/`--serve`) and the
/// live snapshot refresh (`--serve`) — all sharing the one observer slot
/// and stride.
///
/// The reporter and sampler are also returned so the caller can emit the
/// final summary line / flush the series after the run.
type RunTelemetry = (
    WorldInstruments,
    Option<Rc<ProgressReporter>>,
    Option<Rc<RefCell<SeriesSampler>>>,
);

/// Everything one world run's telemetry needs, bundled so each run site
/// states only what differs (label, horizon, journal).
struct TelemetrySpec<'a> {
    label: &'static str,
    horizon_ns: u64,
    registry: Option<&'a MetricsRegistry>,
    progress: bool,
    journal: Option<Journal>,
    series_interval_ns: Option<u64>,
    speed: Speed,
    serve: Option<Arc<ServeShared>>,
}

fn instruments_for(spec: TelemetrySpec<'_>) -> RunTelemetry {
    let TelemetrySpec {
        label,
        horizon_ns,
        registry,
        progress,
        journal,
        series_interval_ns,
        speed,
        serve,
    } = spec;
    let mut instruments = WorldInstruments::default();
    if let Some(registry) = registry {
        instruments.metrics = Some(GameMetrics::register(registry));
        instruments.link_metrics = Some(LinkMetrics::register(registry));
    }
    instruments.journal = journal.clone();
    let pacer_stats: Option<Arc<PacerStats>> = speed.is_paced().then(|| {
        let pacer = Pacer::new(speed);
        let stats = pacer.stats();
        instruments.pacer = Some(pacer);
        stats
    });
    let reporter = progress.then(|| Rc::new(ProgressReporter::new(label, Some(horizon_ns))));
    let sampler = match (series_interval_ns, registry) {
        (Some(interval_ns), Some(registry)) => Some(Rc::new(RefCell::new(SeriesSampler::new(
            registry.clone(),
            interval_ns,
        )))),
        _ => None,
    };
    if reporter.is_some() || sampler.is_some() || serve.is_some() {
        let reporter_cb = reporter.clone();
        let sampler_cb = sampler.clone();
        let registry_cb = registry.cloned();
        let last_refresh = Cell::new(Instant::now());
        // The sampler needs to see the sim clock often enough to hit its
        // interval boundaries; the progress reporter rate-limits itself on
        // wall time, so the finer stride costs only the callback dispatch.
        let stride = if sampler.is_some() {
            OBSERVER_STRIDE / 8
        } else {
            OBSERVER_STRIDE
        };
        instruments.observer = Some((
            stride,
            Box::new(move |sim: &Simulator| {
                if let Some(reporter) = &reporter_cb {
                    reporter.maybe_report(
                        sim.now().as_nanos(),
                        sim.events_executed(),
                        sim.pending_events(),
                    );
                }
                if let Some(sampler) = &sampler_cb {
                    sampler.borrow_mut().observe(sim.now().as_nanos());
                }
                // Live snapshot refresh: render the (single-threaded)
                // registry and sampler here on the sim thread and swap the
                // strings into the shared state. Wall-rate-limited so a
                // max-speed run spends its time simulating, not rendering.
                if let Some(serve) = &serve {
                    let now = Instant::now();
                    if now.duration_since(last_refresh.get()) >= SERVE_REFRESH {
                        last_refresh.set(now);
                        let sim_ns = sim.now().as_nanos();
                        let events = sim.events_executed();
                        let lag_ns = pacer_stats.as_ref().map_or(0, |s| s.lag_ns());
                        let journal_dropped = journal.as_ref().map_or(0, Journal::dropped);
                        serve.update_status(|s| {
                            s.sim_ns = sim_ns;
                            s.events = events;
                            s.lag_ns = lag_ns;
                            s.journal_dropped = journal_dropped;
                        });
                        if let Some(registry) = &registry_cb {
                            serve.export_metrics(registry);
                            serve.set_metrics(registry.render_prometheus());
                        }
                        if let Some(sampler) = &sampler_cb {
                            serve.set_series(sampler.borrow().to_csv());
                        }
                    }
                }
            }),
        ));
    }
    (instruments, reporter, sampler)
}

/// `base` with the run label spliced in before the extension:
/// `trace.json` + `main` -> `trace.main.json`.
fn per_run_path(base: &str, label: &str) -> String {
    let p = std::path::Path::new(base);
    match (
        p.file_stem().and_then(|s| s.to_str()),
        p.extension().and_then(|s| s.to_str()),
    ) {
        (Some(stem), Some(ext)) => p
            .with_file_name(format!("{stem}.{label}.{ext}"))
            .display()
            .to_string(),
        _ => format!("{base}.{label}"),
    }
}

/// Writes one run's journal: Chrome trace-event JSON when the requested
/// file has a `.json` extension (open in Perfetto), JSONL otherwise.
fn write_journal(journal: &Journal, base: &str, label: &str) {
    let path = per_run_path(base, label);
    let data = if path.ends_with(".json") {
        journal.export_chrome_trace()
    } else {
        journal.export_jsonl()
    };
    match std::fs::write(&path, data) {
        Ok(()) => eprintln!(
            "[trace] wrote {path} ({} events, {} dropped)",
            journal.len(),
            journal.dropped()
        ),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Flushes one run's series (adding the horizon row) and writes its CSV.
fn write_series(sampler: &RefCell<SeriesSampler>, dir: &str, label: &str, horizon_ns: u64) {
    let mut sampler = sampler.borrow_mut();
    sampler.finish(horizon_ns);
    let path = format!("{dir}/{label}.csv");
    match std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, sampler.to_csv())) {
        Ok(()) => eprintln!("[series] wrote {path} ({} samples)", sampler.len()),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Starts wall-time profiling for one world run: a fresh [`Profile`]
/// (frame trees are per-run), attached to the registry so spans created
/// for this run frame themselves. Must run before the run's instruments
/// are built — spans capture the profile at creation time.
fn start_profile(enabled: bool, registry: Option<&MetricsRegistry>) -> Option<Profile> {
    if !enabled {
        return None;
    }
    let profile = Profile::new();
    if let Some(registry) = registry {
        registry.attach_profile(Some(profile.clone()));
    }
    Some(profile)
}

/// Finishes one run's profile: detaches it from the registry, exports
/// the `profile.*` wall counters, writes the collapsed-stack and merged
/// Chrome-trace views (`--profile-out`), and folds the run's snapshot
/// into the cross-run cumulative behind the ranked table / `/profile`.
/// Everything here is wall-domain — stderr and side files only, so the
/// byte-identity of stdout and determinism artifacts is untouched.
fn finish_profile(
    profile: &Profile,
    label: &str,
    out_dir: Option<&str>,
    journal: Option<&Journal>,
    registry: Option<&MetricsRegistry>,
    total: &mut Option<ProfileSnapshot>,
) {
    if let Some(registry) = registry {
        registry.attach_profile(None);
        export_profile_metrics(registry, profile);
    }
    if let Some(dir) = out_dir {
        let folded_path = format!("{dir}/{label}.folded");
        let write = std::fs::create_dir_all(dir)
            .and_then(|_| std::fs::write(&folded_path, profile.render_folded()));
        match write {
            Ok(()) => eprintln!(
                "[profile] wrote {folded_path} ({} frames, {} enters)",
                profile.frames(),
                profile.enters()
            ),
            Err(e) => eprintln!("warning: could not write {folded_path}: {e}"),
        }
        if let Some(journal) = journal {
            let trace_path = format!("{dir}/{label}.trace.json");
            let data = journal.export_chrome_trace_with(&profile.chrome_rows(2));
            match std::fs::write(&trace_path, data) {
                Ok(()) => eprintln!("[profile] wrote {trace_path} (journal + profile spans)"),
                Err(e) => eprintln!("warning: could not write {trace_path}: {e}"),
            }
        }
    }
    absorb_profile(total, &profile.snapshot());
}

/// Folds a run's profile snapshot into the cross-run cumulative.
fn absorb_profile(total: &mut Option<ProfileSnapshot>, snap: &ProfileSnapshot) {
    match total {
        Some(total) => total.absorb(snap),
        None => *total = Some(snap.clone()),
    }
}

/// Exports one run's profiler self-observability as wall-flagged
/// `profile.*` instruments with HELP text. Counters accumulate across
/// runs (each run brings a fresh profile, so per-run totals add).
fn export_profile_metrics(registry: &MetricsRegistry, profile: &Profile) {
    let frames = registry.wall_gauge("profile.frames");
    frames.set(profile.frames() as i64);
    registry.describe("profile.frames", "distinct frames in the profile call tree");
    registry
        .wall_counter("profile.enters")
        .add(profile.enters());
    registry.describe("profile.enters", "profiled span entries (wall domain)");
    registry
        .wall_counter("profile.wall_ns")
        .add(profile.total_wall_ns());
    registry.describe(
        "profile.wall_ns",
        "wall time attributed to root profile frames",
    );
    registry
        .wall_counter("profile.dropped")
        .add(profile.events_dropped());
    registry.describe(
        "profile.dropped",
        "profile events dropped at the bounded ring capacity",
    );
}

/// End-of-run refresh for the serving plane: final status, a closing
/// series row (unless `--series-out` already flushed one), fresh
/// `/metrics` + `/series` snapshots, and the run-finished bus event.
fn finish_serve_run(
    shared: &Arc<ServeShared>,
    registry: &Option<MetricsRegistry>,
    sampler: &Option<Rc<RefCell<SeriesSampler>>>,
    finish_series: bool,
    horizon_ns: u64,
    events: u64,
    label: &str,
) {
    shared.update_status(|s| {
        s.sim_ns = horizon_ns;
        s.events = events;
        s.lag_ns = 0;
    });
    if let Some(sampler) = sampler {
        if finish_series {
            sampler.borrow_mut().finish(horizon_ns);
        }
        shared.set_series(sampler.borrow().to_csv());
    }
    if let Some(registry) = registry {
        shared.export_metrics(registry);
        shared.set_metrics(registry.render_prometheus());
    }
    shared.bus().publish(BusEvent::RunFinished {
        label: label.into(),
        sim_ns: horizon_ns,
        events,
    });
}

fn write_csv(dir: &str, name: &str, headers: &[&str], cols: &[&[f64]]) {
    let path = format!("{dir}/{name}.csv");
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, to_csv(headers, cols)))
    {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("[csv] wrote {path}");
    }
}

/// `repro fleet merge OUT_REPORT STATE_FILE...` — the multi-process
/// provisioning path: folds shard checkpoint files (written by
/// independent `--fleet-state-dir` runs or machines) through the same
/// typed merge layer the in-process fleet uses, and writes the rendered
/// provisioning report. Files stream through one accumulator in shard
/// order, so merging 10k+ states never holds more than one decoded
/// state at a time.
fn fleet_merge_command(args: &[String]) -> ExitCode {
    if args.len() < 2 {
        eprintln!("usage: repro fleet merge OUT_REPORT STATE_FILE...");
        return ExitCode::FAILURE;
    }
    let out = &args[0];
    let paths: Vec<std::path::PathBuf> = args[1..].iter().map(std::path::PathBuf::from).collect();
    // The report header's run length comes from the first shard's recorded
    // duration (every shard of one fleet runs the same horizon).
    let minutes = match std::fs::read(&paths[0]) {
        Ok(bytes) => match fleet::persist::decode_shard_state(&bytes) {
            Ok(state) => (state.duration.as_secs() / 60).max(1),
            Err(e) => {
                eprintln!("error: {}: {e}", paths[0].display());
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: {}: {e}", paths[0].display());
            return ExitCode::FAILURE;
        }
    };
    let (facility, shards) = match fleet::persist::merge_state_files(&paths) {
        Ok(merged) => merged,
        Err(e) => {
            eprintln!("error: fleet merge failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = FleetConfig::new("fleet", 0, facility.shards, minutes);
    let coverage = fleet::FleetCoverage::full(facility.shards);
    let report = match fleet::ProvisioningReport::build(&config, &facility, &shards, coverage) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: fleet merge report failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = format!(
        "================ fleet ================\n{}\n{}\n",
        report.render().render(),
        report.sizing_line()
    );
    if let Err(e) = std::fs::write(out, &text) {
        eprintln!("error: could not write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[merge] folded {} state files into {out} ({} packets)",
        paths.len(),
        facility.counts.total_packets()
    );
    print!("{text}");
    ExitCode::SUCCESS
}

/// Flags shared by `repro fleet work` and `repro fleet coordinate`.
/// Both subcommands describe the *same* fleet (`--seed`, `--fleet`,
/// `--fleet-minutes`, `--fleet-retries`, `--fleet-fail`) so shard seeds
/// derive identically no matter which process runs a shard; the rest is
/// role-specific (an assigned `--shards` range for a worker, worker and
/// merge-tree counts plus an optional serving plane for the coordinator).
struct CoordCli {
    seed: u64,
    servers: Option<usize>,
    minutes: u64,
    state_dir: Option<String>,
    retries: Option<u32>,
    fail_spec: Option<String>,
    shards: Option<fleet::coord::ShardRange>,
    workers: usize,
    fan_in: usize,
    serve: Option<String>,
    serve_linger_secs: u64,
}

fn parse_coord_cli(args: &[String]) -> Result<CoordCli, String> {
    let mut o = CoordCli {
        seed: 2002,
        servers: None,
        minutes: 30,
        state_dir: None,
        retries: None,
        fail_spec: None,
        shards: None,
        workers: 2,
        fan_in: 16,
        serve: None,
        serve_linger_secs: 0,
    };
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                o.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--fleet" => {
                let n: usize = args
                    .next()
                    .ok_or("--fleet needs a server count")?
                    .parse()
                    .map_err(|e| format!("bad fleet size: {e}"))?;
                if n == 0 {
                    return Err("--fleet must be > 0".into());
                }
                o.servers = Some(n);
            }
            "--fleet-minutes" => {
                o.minutes = args
                    .next()
                    .ok_or("--fleet-minutes needs a value")?
                    .parse()
                    .map_err(|e| format!("bad fleet minutes: {e}"))?;
                if o.minutes == 0 {
                    return Err("--fleet-minutes must be > 0".into());
                }
            }
            "--fleet-state-dir" => {
                o.state_dir = Some(
                    args.next()
                        .ok_or("--fleet-state-dir needs a directory")?
                        .clone(),
                );
            }
            "--fleet-retries" => {
                let n: u32 = args
                    .next()
                    .ok_or("--fleet-retries needs a value")?
                    .parse()
                    .map_err(|e| format!("bad fleet retries: {e}"))?;
                if n == 0 {
                    return Err("--fleet-retries must be > 0".into());
                }
                o.retries = Some(n);
            }
            "--fleet-fail" => {
                let spec = args.next().ok_or("--fleet-fail needs SHARD:COUNT,...")?;
                parse_fail_plan(spec)?;
                o.fail_spec = Some(spec.clone());
            }
            "--shards" => {
                let spec = args.next().ok_or("--shards needs LO:HI")?;
                o.shards = Some(
                    fleet::coord::ShardRange::parse(spec)
                        .ok_or_else(|| format!("bad --shards '{spec}' (want LO:HI, HI > LO)"))?,
                );
            }
            "--workers" => {
                let n: usize = args
                    .next()
                    .ok_or("--workers needs a count")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
                if n == 0 {
                    return Err("--workers must be > 0".into());
                }
                o.workers = n;
            }
            "--fan-in" => {
                let n: usize = args
                    .next()
                    .ok_or("--fan-in needs a value")?
                    .parse()
                    .map_err(|e| format!("bad fan-in: {e}"))?;
                if n < 2 {
                    return Err("--fan-in must be >= 2".into());
                }
                o.fan_in = n;
            }
            "--serve" => o.serve = Some(args.next().ok_or("--serve needs HOST:PORT")?.clone()),
            "--serve-linger" => {
                o.serve_linger_secs = args
                    .next()
                    .ok_or("--serve-linger needs seconds")?
                    .parse()
                    .map_err(|e| format!("bad linger: {e}"))?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if o.servers.is_none() {
        return Err("--fleet N is required".into());
    }
    if o.state_dir.is_none() {
        return Err("--fleet-state-dir DIR is required".into());
    }
    Ok(o)
}

/// Builds the fleet config both subcommands agree on. Shard traffic is a
/// pure function of (seed, shard index), so a worker and the coordinator
/// constructing this independently stay byte-compatible.
fn coord_fleet_config(o: &CoordCli) -> Result<FleetConfig, String> {
    let mut config = FleetConfig::new("fleet", o.seed, o.servers.unwrap(), o.minutes);
    if let Some(attempts) = o.retries {
        config.retry.attempts = attempts;
    }
    if let Some(spec) = &o.fail_spec {
        config.fail_plan = parse_fail_plan(spec)?;
    }
    Ok(config)
}

/// `repro fleet work --shards LO:HI ...` — the worker half of the
/// coordinator/worker protocol: executes one assigned shard range against
/// the shared state directory, writing checkpoints and heartbeat sidecars
/// the coordinator watches. Narrates to stderr only (stdout belongs to
/// the coordinator's report). Exits 0 even when shards were lost after
/// exhausting retries — loss is coverage accounting, not a worker crash.
fn fleet_work_command(args: &[String]) -> ExitCode {
    let opts = match parse_coord_cli(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: repro fleet work --shards LO:HI --fleet N --fleet-state-dir DIR \
                 [--seed S] [--fleet-minutes M] [--fleet-retries N] [--fleet-fail SPEC]"
            );
            return ExitCode::FAILURE;
        }
    };
    let Some(range) = opts.shards else {
        eprintln!("error: fleet work requires --shards LO:HI");
        return ExitCode::FAILURE;
    };
    let config = match coord_fleet_config(&opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let state_dir = std::path::PathBuf::from(opts.state_dir.as_deref().unwrap());
    eprintln!(
        "[worker] shards {range} of a {}-shard fleet (seed {}, state dir {})",
        config.servers,
        config.seed,
        state_dir.display()
    );
    let t0 = Instant::now();
    let on_event = |ev: &fleet::FleetEvent<'_>| match ev {
        fleet::FleetEvent::ShardDone {
            state,
            from_checkpoint,
            ..
        } => {
            if !from_checkpoint {
                eprintln!("[worker] shard {} done", state.shard);
            }
        }
        fleet::FleetEvent::ShardRetry {
            shard,
            attempt,
            backoff_ns,
            message,
        } => {
            eprintln!(
                "[worker] shard {shard} attempt {attempt} failed ({message}); \
                 retrying after {} ms simulated backoff",
                backoff_ns / 1_000_000
            );
        }
        fleet::FleetEvent::ShardLost {
            shard,
            attempts,
            message,
        } => {
            eprintln!("[worker] shard {shard} LOST after {attempts} attempts ({message})");
        }
        fleet::FleetEvent::CheckpointWritten { .. } => {}
        fleet::FleetEvent::CheckpointFailed { shard, message } => {
            eprintln!("[worker] shard {shard} checkpoint write failed: {message}");
        }
        fleet::FleetEvent::ResumeLoaded { shard } => {
            eprintln!("[worker] shard {shard} restored from checkpoint");
        }
        fleet::FleetEvent::ResumeInvalid { message } => {
            eprintln!("[worker] ignoring invalid checkpoint: {message}");
        }
    };
    match fleet::coord::run_worker_range(&config, range, &state_dir, Some(&on_event)) {
        Ok(summary) => {
            eprintln!(
                "[worker] range {range} finished in {:.1} s wall: {} done, {} resumed, \
                 {} lost, {} retries",
                t0.elapsed().as_secs_f64(),
                summary.done.len(),
                summary.resumed.len(),
                summary.lost.len(),
                summary.retries
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: fleet work failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A spawned `repro fleet work` child as a pollable coordinator handle.
struct ProcessWorker {
    child: std::process::Child,
}

impl fleet::coord::WorkerHandle for ProcessWorker {
    fn try_status(&mut self) -> Option<Result<(), String>> {
        match self.child.try_wait() {
            Ok(None) => None,
            Ok(Some(status)) if status.success() => Some(Ok(())),
            Ok(Some(status)) => Some(Err(status.to_string())),
            Err(e) => Some(Err(e.to_string())),
        }
    }
}

/// `repro fleet coordinate ...` — plans shard ranges, spawns `repro fleet
/// work` children against the shared state directory, watches their
/// heartbeat sidecars and exits, re-dispatches ranges of killed workers,
/// folds the collected checkpoints through the hierarchical merge tree,
/// and prints the same byte-identical report as an in-process `--fleet`
/// run. With `--serve`, `/shards` and `/report` watch a fleet this
/// process never executes — the board is fed purely from sidecars.
fn fleet_coordinate_command(args: &[String]) -> ExitCode {
    let opts = match parse_coord_cli(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: repro fleet coordinate --fleet N --fleet-state-dir DIR [--seed S] \
                 [--fleet-minutes M] [--workers W] [--fan-in K] [--fleet-retries N] \
                 [--fleet-fail SPEC] [--serve HOST:PORT [--serve-linger S]]"
            );
            return ExitCode::FAILURE;
        }
    };
    if opts.shards.is_some() {
        eprintln!("error: --shards belongs to fleet work (the coordinator plans ranges)");
        return ExitCode::FAILURE;
    }
    let mut config = match coord_fleet_config(&opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let servers = config.servers;
    let state_dir = std::path::PathBuf::from(opts.state_dir.as_deref().unwrap());
    let watchdog_ms: u64 = std::env::var("CSPROV_WATCHDOG_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(3000);
    let board = Arc::new(ShardHealthBoard::new(
        servers,
        Duration::from_millis(watchdog_ms),
    ));
    config.health = Some(board.clone());
    let fleet_horizon = SimDuration::from_mins(opts.minutes).as_nanos();

    // The optional serving plane: this process executes nothing, so every
    // document it serves is assembled from observation — `/shards` from
    // sidecar records aged by mtime, `/report` from checkpoints collected
    // so far.
    let serve_state = opts
        .serve
        .as_ref()
        .map(|_| Arc::new(ServeShared::new(BroadcastBus::new())));
    let mut serve_handle = None;
    if let (Some(addr), Some(shared)) = (&opts.serve, &serve_state) {
        match csprov_serve::serve(addr.as_str(), shared.clone()) {
            Ok(handle) => {
                eprintln!(
                    "[serve] listening on http://{} (/metrics /events /series /status /report \
                     /healthz /shards /profile)",
                    handle.addr()
                );
                serve_handle = Some(handle);
            }
            Err(e) => {
                eprintln!("error: could not bind --serve {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
        shared.set_board(board.clone());
        shared.update_status(|s| {
            s.state = "running";
            s.mode = "coordinate";
            s.label = "fleet".to_string();
            s.seed = opts.seed;
            s.horizon_ns = fleet_horizon;
            s.shards_total = servers as u64;
        });
        shared.bus().publish(BusEvent::RunStarted {
            label: "fleet".into(),
            horizon_ns: fleet_horizon,
        });
    }

    eprintln!(
        "[coord] fleet: {servers} servers x {} simulated min (seed {}), {} workers, \
         fan-in {}, state dir {}",
        opts.minutes,
        opts.seed,
        opts.workers,
        opts.fan_in,
        state_dir.display()
    );
    let t0 = Instant::now();
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot locate own executable to spawn workers: {e}");
            return ExitCode::FAILURE;
        }
    };
    let launch = |worker: usize, range: fleet::coord::ShardRange| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("fleet")
            .arg("work")
            .arg("--shards")
            .arg(range.to_string())
            .arg("--seed")
            .arg(opts.seed.to_string())
            .arg("--fleet")
            .arg(servers.to_string())
            .arg("--fleet-minutes")
            .arg(opts.minutes.to_string())
            .arg("--fleet-state-dir")
            .arg(&state_dir);
        if let Some(attempts) = opts.retries {
            cmd.arg("--fleet-retries").arg(attempts.to_string());
        }
        if let Some(spec) = &opts.fail_spec {
            cmd.arg("--fleet-fail").arg(spec);
        }
        // Worker stdout is the coordinator's: only the coordinator may
        // print to it (the report must stay byte-identical to --fleet).
        cmd.stdout(std::process::Stdio::null());
        cmd.spawn()
            .map(|child| ProcessWorker { child })
            .map_err(|e| format!("spawn worker {worker}: {e}"))
    };
    let partial: Mutex<Vec<ShardState>> = Mutex::new(Vec::new());
    let on_event = |ev: &fleet::coord::CoordEvent<'_>| match ev {
        fleet::coord::CoordEvent::WorkerLaunched {
            worker,
            range,
            attempt,
        } => {
            eprintln!("[coord] worker {worker} launched for shards {range} (attempt {attempt})");
        }
        fleet::coord::CoordEvent::WorkerExited {
            worker,
            range,
            clean,
            detail,
        } => {
            if *clean {
                eprintln!("[coord] worker {worker} finished shards {range}");
            } else {
                eprintln!("[coord] worker {worker} died on shards {range} ({detail})");
            }
        }
        fleet::coord::CoordEvent::RangeRedispatched {
            worker,
            range,
            attempt,
        } => {
            eprintln!(
                "[coord] re-dispatching shards {range} of worker {worker} (attempt {attempt})"
            );
        }
        fleet::coord::CoordEvent::RangeLost {
            worker,
            range,
            shards,
            message,
        } => {
            eprintln!(
                "[coord] shards {shards:?} of worker {worker} (range {range}) LOST ({message}); \
                 report degrades to a lower bound"
            );
        }
        fleet::coord::CoordEvent::ShardCollected { shard, state } => {
            eprintln!("[coord] shard {shard} collected");
            let Some(shared) = &serve_state else { return };
            let mut done = partial.lock().unwrap_or_else(|e| e.into_inner());
            done.push((*state).clone());
            let n = done.len() as u64;
            shared.update_status(|s| {
                s.shards_done = n;
                s.sim_ns = fleet_horizon * n / servers as u64;
            });
            shared.bus().publish(BusEvent::Trace(TraceEvent {
                sim_ns: fleet_horizon * n / servers as u64,
                kind: "fleet.shard.done",
                key: *shard as u64,
                value: n,
            }));
            if let Ok(report) = fleet::interim_report(&config, &done) {
                shared.set_report(format!(
                    "================ fleet (interim, {n}/{servers} shards) ================\n{}\n{}\n",
                    report.render().render(),
                    report.sizing_line()
                ));
            }
        }
    };
    let coord_opts = fleet::coord::CoordOptions {
        workers: opts.workers,
        fan_in: opts.fan_in,
        ..fleet::coord::CoordOptions::default()
    };
    let result =
        fleet::coord::coordinate(&config, &state_dir, &coord_opts, launch, Some(&on_event));
    let run = match result {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: fleet coordinate failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    println!("\n================ fleet ================");
    println!("{}", run.report.render().render());
    println!("{}", run.report.sizing_line());
    eprintln!(
        "[coord] fleet done: {} packets across {} shards in {:.1} s wall",
        run.facility.counts.total_packets(),
        run.facility.shards,
        secs
    );
    let cov = &run.report.coverage;
    if cov.is_degraded() {
        eprintln!(
            "[fleet] DEGRADED: {}/{} shards merged; lost {:?}; \
             headline numbers are lower bounds",
            cov.merged, cov.configured, cov.lost
        );
    }
    if let Some(shared) = &serve_state {
        shared.set_report(format!(
            "================ fleet ================\n{}\n{}\n",
            run.report.render().render(),
            run.report.sizing_line()
        ));
        shared.update_status(|s| {
            s.state = "finished";
            s.sim_ns = fleet_horizon;
            s.shards_done = run.facility.shards as u64;
            s.events = run.facility.counts.total_packets();
        });
        shared.bus().publish(BusEvent::RunFinished {
            label: "fleet".into(),
            sim_ns: fleet_horizon,
            events: run.facility.counts.total_packets(),
        });
        if opts.serve_linger_secs > 0 {
            eprintln!(
                "[serve] lingering {} s before shutdown",
                opts.serve_linger_secs
            );
            std::thread::sleep(Duration::from_secs(opts.serve_linger_secs));
        }
    }
    if let Some(mut handle) = serve_handle.take() {
        handle.shutdown();
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.len() >= 2 && argv[0] == "fleet" {
            match argv[1].as_str() {
                "merge" => return fleet_merge_command(&argv[2..]),
                "work" => return fleet_work_command(&argv[2..]),
                "coordinate" => return fleet_coordinate_command(&argv[2..]),
                _ => {}
            }
        }
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    // Analyzer construction reads the env var, so pinning it here covers
    // every run this invocation performs (main, NAT, ablations, fleet).
    // The CI ingest-smoke step diffs a columnar run against a per-record
    // run through this flag; artifacts must come out byte-identical.
    match opts.ingest {
        Some(IngestPath::Columnar) => std::env::set_var(csprov::INGEST_PATH_ENV, "columnar"),
        Some(IngestPath::PerRecord) => std::env::set_var(csprov::INGEST_PATH_ENV, "per-record"),
        None => {}
    }

    let duration = if opts.full_week {
        SimDuration::from_secs(PAPER_TRACE_SECS)
    } else {
        SimDuration::from_secs_f64(opts.hours * 3600.0)
    };

    let needs_main = opts.artifacts.iter().any(|a| a.needs_main_run());
    let needs_nat = opts.artifacts.iter().any(|a| a.needs_nat_run());

    // The registry backs the snapshot dump (--metrics-out), the sim-time
    // series (--series-out), the live /metrics + /series endpoints, and
    // span->profile framing (--profile-out needs spans to attribute
    // tick/flush time, so it implies a registry).
    let registry = (opts.metrics_out.is_some()
        || opts.series_out.is_some()
        || opts.serve.is_some()
        || opts.profile_out.is_some())
    .then(MetricsRegistry::new);
    // Profiling is on for --profile-out (files + table) and for --serve
    // (the /profile endpoint); both are wall-domain-only consumers.
    let profile_enabled = opts.profile_out.is_some() || opts.serve.is_some();
    let mut profile_total: Option<ProfileSnapshot> = None;
    let series_interval_ns = (opts.series_out.is_some() || opts.serve.is_some())
        .then(|| opts.series_interval_ms * 1_000_000);

    // The live serving plane: shared snapshot state plus the broadcast bus
    // every run's journal taps into. HTTP threads only ever read rendered
    // snapshots, so nothing a subscriber does can perturb the simulation.
    let serve_state = opts
        .serve
        .as_ref()
        .map(|_| Arc::new(ServeShared::new(BroadcastBus::new())));
    let mut serve_handle = None;
    if let (Some(addr), Some(shared)) = (&opts.serve, &serve_state) {
        match csprov_serve::serve(addr.as_str(), shared.clone()) {
            Ok(handle) => {
                eprintln!(
                    "[serve] listening on http://{} (/metrics /events /series /status /report \
                     /healthz /shards /profile)",
                    handle.addr()
                );
                serve_handle = Some(handle);
            }
            Err(e) => {
                eprintln!("error: could not bind --serve {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
        let mut labels: Vec<String> = opts.artifacts.iter().map(|id| id.to_string()).collect();
        if opts.fleet.is_some() {
            labels.push("fleet".to_string());
        }
        shared.update_status(|s| {
            s.seed = opts.seed;
            s.speed = opts.speed.to_string();
            s.label = labels.join(",");
        });
    }

    // Wall-clock phases, reported at exit in the same `[time]` format the
    // per-artifact lines use and exported as BENCH_repro.json when
    // CSPROV_BENCH_OUT is set (single runs: median == min).
    let total_t0 = Instant::now();
    let mut timings: Vec<BenchResult> = Vec::new();
    fn phase(name: &str, secs: f64, rate_per_sec: Option<f64>) -> BenchResult {
        BenchResult {
            name: name.to_string(),
            median_ns: secs * 1e9,
            min_ns: secs * 1e9,
            rate_per_sec,
        }
    }

    let chaos_seed = opts.chaos_seed.unwrap_or(opts.seed);
    let mut chaos_reports: Vec<ChaosReport> = Vec::new();

    let main_run = needs_main.then(|| {
        eprintln!(
            "[run] simulating {:.1} h of server traffic (seed {})...",
            duration.as_secs_f64() / 3600.0,
            opts.seed
        );
        let t0 = Instant::now();
        let journal = (opts.trace_out.is_some() || serve_state.is_some()).then(Journal::new);
        if let (Some(journal), Some(shared)) = (&journal, &serve_state) {
            journal.set_tap(shared.bus().clone());
        }
        let profile = start_profile(profile_enabled, registry.as_ref());
        let (mut instruments, reporter, sampler) = instruments_for(TelemetrySpec {
            label: "main",
            horizon_ns: duration.as_nanos(),
            registry: registry.as_ref(),
            progress: opts.progress,
            journal: journal.clone(),
            series_interval_ns,
            speed: opts.speed,
            serve: serve_state.clone(),
        });
        instruments.profile = profile.clone();
        if let Some(shared) = &serve_state {
            shared.update_status(|s| {
                s.state = "running";
                s.horizon_ns = duration.as_nanos();
                s.sim_ns = 0;
            });
            shared.bus().publish(BusEvent::RunStarted {
                label: "main".into(),
                horizon_ns: duration.as_nanos(),
            });
        }
        let scenario = ScenarioConfig::scaled(opts.seed, duration);
        let run = match &opts.chaos {
            Some(spec) => {
                eprintln!(
                    "[run] chaos profile '{}' (chaos-seed {chaos_seed})",
                    spec.name
                );
                let (run, report) = chaos::run_chaos_main(
                    spec,
                    scenario,
                    chaos_seed,
                    instruments,
                    registry.as_ref(),
                );
                chaos_reports.push(report);
                run
            }
            None => MainRun::execute_instrumented(scenario, instruments, registry.as_ref()),
        };
        if let Some(reporter) = reporter {
            reporter.finish(duration.as_nanos(), run.outcome.events_executed);
        }
        if let (Some(journal), Some(base)) = (&journal, &opts.trace_out) {
            write_journal(journal, base, "main");
        }
        if let (Some(sampler), Some(dir)) = (&sampler, &opts.series_out) {
            write_series(sampler, dir, "main", duration.as_nanos());
        }
        if let Some(profile) = &profile {
            finish_profile(
                profile,
                "main",
                opts.profile_out.as_deref(),
                journal.as_ref(),
                registry.as_ref(),
                &mut profile_total,
            );
            if let (Some(shared), Some(total)) = (&serve_state, &profile_total) {
                shared.set_profile(total.render_table());
            }
        }
        if let Some(shared) = &serve_state {
            finish_serve_run(
                shared,
                &registry,
                &sampler,
                opts.series_out.is_none(),
                duration.as_nanos(),
                run.outcome.events_executed,
                "main",
            );
        }
        let secs = t0.elapsed().as_secs_f64();
        eprintln!(
            "[run] done: {} packets in {:.1} s wall ({} events)",
            run.analysis.counts.total_packets(),
            secs,
            run.outcome.events_executed
        );
        timings.push(phase(
            "main_run",
            secs,
            Some(run.outcome.events_executed as f64 / secs.max(1e-9)),
        ));
        run
    });
    let nat_run = needs_nat.then(|| {
        eprintln!("[run] NAT experiment: one 30-minute map through the device...");
        let t0 = Instant::now();
        let nat_horizon = SimDuration::from_mins(30).as_nanos();
        let journal = (opts.trace_out.is_some() || serve_state.is_some()).then(Journal::new);
        if let (Some(journal), Some(shared)) = (&journal, &serve_state) {
            journal.set_tap(shared.bus().clone());
        }
        let profile = start_profile(profile_enabled, registry.as_ref());
        let (mut instruments, reporter, sampler) = instruments_for(TelemetrySpec {
            label: "nat",
            horizon_ns: nat_horizon,
            registry: registry.as_ref(),
            progress: opts.progress,
            journal: journal.clone(),
            series_interval_ns,
            speed: opts.speed,
            serve: serve_state.clone(),
        });
        instruments.profile = profile.clone();
        if let Some(shared) = &serve_state {
            shared.update_status(|s| {
                s.state = "running";
                s.horizon_ns = nat_horizon;
                s.sim_ns = 0;
            });
            shared.bus().publish(BusEvent::RunStarted {
                label: "nat".into(),
                horizon_ns: nat_horizon,
            });
        }
        let run = match &opts.chaos {
            Some(spec) => {
                eprintln!(
                    "[run] chaos profile '{}' (chaos-seed {chaos_seed})",
                    spec.name
                );
                let (run, report) = nat::run_nat_experiment_chaos(
                    opts.seed,
                    EngineConfig::default(),
                    spec,
                    chaos_seed,
                    instruments,
                    registry.as_ref(),
                );
                chaos_reports.push(report);
                run
            }
            None => nat::run_nat_experiment_instrumented(
                opts.seed,
                EngineConfig::default(),
                instruments,
                registry.as_ref(),
            ),
        };
        if let Some(reporter) = reporter {
            reporter.finish(nat_horizon, run.outcome.events_executed);
        }
        if let (Some(journal), Some(base)) = (&journal, &opts.trace_out) {
            write_journal(journal, base, "nat");
        }
        if let (Some(sampler), Some(dir)) = (&sampler, &opts.series_out) {
            write_series(sampler, dir, "nat", nat_horizon);
        }
        if let Some(profile) = &profile {
            finish_profile(
                profile,
                "nat",
                opts.profile_out.as_deref(),
                journal.as_ref(),
                registry.as_ref(),
                &mut profile_total,
            );
            if let (Some(shared), Some(total)) = (&serve_state, &profile_total) {
                shared.set_profile(total.render_table());
            }
        }
        if let Some(shared) = &serve_state {
            finish_serve_run(
                shared,
                &registry,
                &sampler,
                opts.series_out.is_none(),
                nat_horizon,
                run.outcome.events_executed,
                "nat",
            );
        }
        let secs = t0.elapsed().as_secs_f64();
        timings.push(phase(
            "nat_run",
            secs,
            Some(run.outcome.events_executed as f64 / secs.max(1e-9)),
        ));
        run
    });

    for id in &opts.artifacts {
        let artifact_t0 = Instant::now();
        println!("\n================ {id} ================");
        let main = main_run.as_ref();
        let natr = nat_run.as_ref();
        let out = match id {
            ExperimentId::Table1 => tables::table1(main.unwrap()).render(),
            ExperimentId::Table2 => tables::table2(main.unwrap()).render(),
            ExperimentId::Table3 => tables::table3(main.unwrap()).render(),
            ExperimentId::Table4 => tables::table4(natr.unwrap()).render(),
            ExperimentId::Fig(n) => {
                let r = main.unwrap();
                match n {
                    1 => figures::fig1(r),
                    2 => figures::fig2(r),
                    3 => figures::fig3(r),
                    4 => figures::fig4(r),
                    5 => figures::fig5(r),
                    6 => figures::fig6(r),
                    7 => figures::fig7(r),
                    8 => figures::fig8(r),
                    9 => figures::fig9(r),
                    10 => figures::fig10(r),
                    11 => figures::fig11(r),
                    12 => figures::fig12(r),
                    13 => figures::fig13(r),
                    _ => unreachable!("validated at parse"),
                }
            }
            ExperimentId::Fig14 => figures::fig14(natr.unwrap()),
            ExperimentId::Fig15 => figures::fig15(natr.unwrap()),
            ExperimentId::AblateTick => ablations::ablate_tick(opts.seed, 20).render(),
            ExperimentId::AblatePopulation => ablations::ablate_population(opts.seed, 240).render(),
            ExperimentId::AblateNatCapacity => ablations::ablate_nat_capacity(opts.seed).render(),
            ExperimentId::AblateNatBuffer => ablations::ablate_nat_buffer(opts.seed).render(),
            ExperimentId::RouteCache => ablations::route_cache_experiment(opts.seed).render(),
            ExperimentId::SourceModel => ablations::source_model_experiment(opts.seed, 30).render(),
            ExperimentId::WebVsGame => web::web_vs_game(opts.seed).render(),
            ExperimentId::AblateLinkMix => ablations::ablate_link_mix(opts.seed, 20).render(),
            ExperimentId::AggregateServers => aggregate::aggregate_servers(opts.seed, 120).render(),
        };
        println!("{out}");
        if let Some(shared) = &serve_state {
            shared.append_report(&format!(
                "\n================ {id} ================\n{out}\n"
            ));
        }

        if let Some(dir) = &opts.csv_dir {
            match id {
                ExperimentId::Fig(1) | ExperimentId::Fig(2) => {
                    let r = main.unwrap();
                    let minutes: Vec<f64> = (0..r.analysis.per_minute.bins().len())
                        .map(|i| i as f64)
                        .collect();
                    write_csv(
                        dir,
                        &id.to_string(),
                        &["minute", "kbps", "pps"],
                        &[
                            &minutes,
                            &r.analysis.per_minute.kbps(),
                            &r.analysis.per_minute.pps(),
                        ],
                    );
                }
                ExperimentId::Fig(5) => {
                    let r = main.unwrap();
                    let pts = r.analysis.variance_time.points();
                    let xs: Vec<f64> = pts.iter().map(|p| p.log_block()).collect();
                    let ys: Vec<f64> = pts.iter().map(|p| p.log_variance()).collect();
                    write_csv(dir, "fig5", &["log10_block", "log10_norm_var"], &[&xs, &ys]);
                }
                ExperimentId::Fig(6) => {
                    let r = main.unwrap();
                    write_csv(dir, "fig6", &["pps"], &[&r.analysis.ms10_total.pps()]);
                }
                ExperimentId::Fig(9) => {
                    let r = main.unwrap();
                    write_csv(dir, "fig9", &["pps"], &[&r.analysis.sec1_total.pps()]);
                }
                ExperimentId::Fig14 => {
                    let r = natr.unwrap();
                    write_csv(
                        dir,
                        "fig14",
                        &["clients_to_nat_pps", "nat_to_server_pps"],
                        &[&r.clients_to_nat.pps(), &r.nat_to_server.pps()],
                    );
                }
                ExperimentId::Fig15 => {
                    let r = natr.unwrap();
                    write_csv(
                        dir,
                        "fig15",
                        &["server_to_nat_pps", "nat_to_clients_pps"],
                        &[&r.server_to_nat.pps(), &r.nat_to_clients.pps()],
                    );
                }
                _ => {}
            }
        }
        let secs = artifact_t0.elapsed().as_secs_f64();
        eprintln!("[time] {id}: {secs:.3} s wall");
        timings.push(phase(&id.to_string(), secs, None));
    }

    if let Some(servers) = opts.fleet {
        eprintln!(
            "[run] fleet: {servers} servers x {} simulated min (seed {})...",
            opts.fleet_minutes, opts.seed
        );
        let t0 = Instant::now();
        let mut config = FleetConfig::new("fleet", opts.seed, servers, opts.fleet_minutes);
        config.speed = opts.speed;
        if let Some(attempts) = opts.fleet_retries {
            config.retry.attempts = attempts;
        }
        config.fail_plan = opts.fleet_fail.clone();
        config.profile = profile_enabled;
        // The health board behind /shards: workers beat it in-process;
        // a scanner thread folds in .hb sidecars so externally-written
        // heartbeats (other processes sharing the state dir) are seen
        // too. The watchdog deadline is wall-domain and tunable because
        // "stalled" is a property of the host, not the simulation.
        let watchdog_ms: u64 = std::env::var("CSPROV_WATCHDOG_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&ms| ms > 0)
            .unwrap_or(3000);
        let board = serve_state.as_ref().map(|shared| {
            let board = Arc::new(ShardHealthBoard::new(
                servers,
                Duration::from_millis(watchdog_ms),
            ));
            shared.set_board(board.clone());
            board
        });
        config.health = board.clone();
        let persistence = match (&opts.fleet_state_dir, opts.fleet_resume) {
            (Some(dir), true) => fleet::FleetPersistence::resume_from(dir),
            (Some(dir), false) => fleet::FleetPersistence::checkpoint_to(dir),
            (None, _) => fleet::FleetPersistence::none(),
        };
        let fleet_horizon = SimDuration::from_mins(opts.fleet_minutes).as_nanos();
        if let Some(shared) = &serve_state {
            shared.update_status(|s| {
                s.state = "running";
                s.horizon_ns = fleet_horizon;
                s.sim_ns = 0;
                s.shards_total = servers as u64;
                s.shards_done = 0;
            });
            shared.bus().publish(BusEvent::RunStarted {
                label: "fleet".into(),
                horizon_ns: fleet_horizon,
            });
        }
        // Execution-plane event hook: shard completions feed the serving
        // plane (interim reports, live status), while recovery events
        // (retries, losses, checkpoint and resume activity) narrate to
        // stderr. The canonical merge happens inside the engine, so none
        // of this affects the answer.
        let partial: Mutex<Vec<ShardState>> = Mutex::new(Vec::new());
        let on_event = |ev: &fleet::FleetEvent<'_>| match ev {
            fleet::FleetEvent::ShardDone { state, .. } => {
                let Some(shared) = &serve_state else { return };
                let mut done = partial.lock().unwrap_or_else(|e| e.into_inner());
                done.push((*state).clone());
                let n = done.len() as u64;
                shared.update_status(|s| {
                    s.shards_done = n;
                    s.sim_ns = fleet_horizon * n / servers as u64;
                });
                shared.bus().publish(BusEvent::Trace(TraceEvent {
                    sim_ns: fleet_horizon * n / servers as u64,
                    kind: "fleet.shard.done",
                    key: state.shard as u64,
                    value: n,
                }));
                if let Ok(report) = fleet::interim_report(&config, &done) {
                    shared.set_report(format!(
                            "================ fleet (interim, {n}/{servers} shards) ================\n{}\n{}\n",
                            report.render().render(),
                            report.sizing_line()
                        ));
                }
            }
            fleet::FleetEvent::ShardRetry {
                shard,
                attempt,
                backoff_ns,
                message,
            } => {
                eprintln!(
                    "[fleet] shard {shard} attempt {attempt} failed ({message}); \
                         retrying after {} ms simulated backoff",
                    backoff_ns / 1_000_000
                );
            }
            fleet::FleetEvent::ShardLost {
                shard,
                attempts,
                message,
            } => {
                eprintln!(
                    "[fleet] shard {shard} LOST after {attempts} attempts ({message}); \
                         report degrades to a lower bound"
                );
            }
            fleet::FleetEvent::CheckpointWritten { .. } => {}
            fleet::FleetEvent::CheckpointFailed { shard, message } => {
                eprintln!("[fleet] shard {shard} checkpoint write failed: {message}");
            }
            fleet::FleetEvent::ResumeLoaded { shard } => {
                eprintln!("[fleet] shard {shard} restored from checkpoint");
            }
            fleet::FleetEvent::ResumeInvalid { message } => {
                eprintln!("[fleet] ignoring invalid checkpoint: {message}");
            }
        };
        // Heartbeat sidecar scanner: while the fleet runs, fold any .hb
        // files in the state dir into the board and narrate fresh beats
        // onto the bus. Reads only; undecodable files are skipped.
        let scan_stop = Arc::new(AtomicBool::new(false));
        let scanner = match (&board, &opts.fleet_state_dir, &serve_state) {
            (Some(board), Some(dir), Some(shared)) => {
                let board = board.clone();
                let shared = shared.clone();
                let dir = std::path::PathBuf::from(dir);
                let stop = scan_stop.clone();
                std::thread::Builder::new()
                    .name("csprov-hb-scan".to_string())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            // Freshness comes from the sidecar's observed
                            // mtime age on this clock, never the record's
                            // embedded wall time: re-scanning an unchanged
                            // file must not refresh it (that would mask a
                            // stall), and a skewed writer clock must not
                            // forge one.
                            for o in fleet::persist::scan_heartbeats_observed(&dir) {
                                board.apply_observed(&o.rec, o.age_ms);
                                if o.rec.state == SHARD_RUNNING {
                                    shared.bus().publish(BusEvent::Trace(TraceEvent {
                                        sim_ns: o.rec.sim_ns,
                                        kind: "fleet.shard.beat",
                                        key: o.rec.shard,
                                        value: o.rec.retries,
                                    }));
                                }
                            }
                            std::thread::sleep(Duration::from_millis(300));
                        }
                    })
                    .ok()
            }
            _ => None,
        };
        let fleet_result = fleet::run_fleet_full(&config, &persistence, Some(&on_event));
        scan_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = scanner {
            let _ = handle.join();
        }
        match fleet_result {
            Ok(run) => {
                let secs = t0.elapsed().as_secs_f64();
                println!("\n================ fleet ================");
                println!("{}", run.report.render().render());
                println!("{}", run.report.sizing_line());
                if let Some(registry) = &registry {
                    run.export_metrics(registry);
                    if let Some(board) = &board {
                        board.export_metrics(registry);
                    }
                }
                if let Some(snap) = &run.profile {
                    if let Some(dir) = &opts.profile_out {
                        let folded_path = format!("{dir}/fleet.folded");
                        let write = std::fs::create_dir_all(dir)
                            .and_then(|_| std::fs::write(&folded_path, snap.render_folded()));
                        match write {
                            Ok(()) => eprintln!(
                                "[profile] wrote {folded_path} ({} frames)",
                                snap.entries().len()
                            ),
                            Err(e) => eprintln!("warning: could not write {folded_path}: {e}"),
                        }
                    }
                    absorb_profile(&mut profile_total, snap);
                    if let (Some(shared), Some(total)) = (&serve_state, &profile_total) {
                        shared.set_profile(total.render_table());
                    }
                }
                let journal =
                    (opts.trace_out.is_some() || serve_state.is_some()).then(Journal::new);
                if let Some(journal) = &journal {
                    if let Some(shared) = &serve_state {
                        journal.set_tap(shared.bus().clone());
                    }
                    run.emit_journal(journal);
                    if let Some(base) = &opts.trace_out {
                        write_journal(journal, base, "fleet");
                    }
                }
                if let Some(shared) = &serve_state {
                    shared.set_report(format!(
                        "================ fleet ================\n{}\n{}\n",
                        run.report.render().render(),
                        run.report.sizing_line()
                    ));
                    shared.update_status(|s| {
                        s.sim_ns = fleet_horizon;
                        s.shards_done = run.facility.shards as u64;
                        s.events = run.facility.counts.total_packets();
                    });
                    shared.bus().publish(BusEvent::RunFinished {
                        label: "fleet".into(),
                        sim_ns: fleet_horizon,
                        events: run.facility.counts.total_packets(),
                    });
                }
                eprintln!(
                    "[run] fleet done: {} packets across {} shards in {:.1} s wall",
                    run.facility.counts.total_packets(),
                    run.facility.shards,
                    secs
                );
                let p = &run.persist;
                if p.checkpoints_written + p.resumed + p.invalid_checkpoints > 0 {
                    eprintln!(
                        "[fleet] persistence: {} checkpoints written, {} shards resumed, \
                         {} invalid checkpoints recomputed",
                        p.checkpoints_written, p.resumed, p.invalid_checkpoints
                    );
                }
                let cov = &run.report.coverage;
                if cov.is_degraded() {
                    eprintln!(
                        "[fleet] DEGRADED: {}/{} shards merged; lost {:?}; \
                         headline numbers are lower bounds",
                        cov.merged, cov.configured, cov.lost
                    );
                }
                eprintln!("[time] fleet: {secs:.3} s wall");
                timings.push(phase(
                    "fleet",
                    secs,
                    Some(run.facility.counts.total_packets() as f64 / secs.max(1e-9)),
                ));
            }
            Err(e) => {
                eprintln!("error: fleet run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for report in &chaos_reports {
        println!("\n================ chaos ================");
        println!("{}", report.render());
    }

    // The cumulative wall-time attribution across every run this
    // invocation performed, ranked by self time. Stderr, not stdout —
    // wall timings must never contaminate the determinism artifacts.
    if let Some(total) = &profile_total {
        eprintln!("[profile] wall-time attribution (self-time ranked):");
        for line in total.render_table().lines() {
            eprintln!("  {line}");
        }
    }

    let total_secs = total_t0.elapsed().as_secs_f64();
    eprintln!("[time] total: {total_secs:.3} s wall");
    timings.push(phase("total", total_secs, None));
    if let Ok(dir) = std::env::var("CSPROV_BENCH_OUT") {
        if !dir.is_empty() {
            let path = std::path::Path::new(&dir).join("BENCH_repro.json");
            let json = render_bench_json("repro", &timings);
            match std::fs::write(&path, json) {
                Ok(()) => eprintln!("[bench] wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
    }

    if let (Some(path), Some(registry)) = (&opts.metrics_out, &registry) {
        let mut labels: Vec<String> = opts.artifacts.iter().map(|id| id.to_string()).collect();
        if opts.fleet.is_some() {
            labels.push("fleet".to_string());
        }
        let out = match opts.metrics_format {
            MetricsFormat::Combined => {
                let mut out = String::new();
                for label in &labels {
                    out.push_str(&format!("# ==== {label} ====\n"));
                    for line in registry.render_deterministic().lines() {
                        out.push_str("# ");
                        out.push_str(line);
                        out.push('\n');
                    }
                    out.push_str(&registry.render_jsonl(label));
                }
                out
            }
            MetricsFormat::Text => {
                // Deterministic section first (byte-stable per seed),
                // then the wall section (span wall histograms with
                // p50/p95/p99, profile.*, shard.*, serve.*) under a
                // comment fence so consumers can split them apart.
                let mut out = registry.render_deterministic();
                let wall = registry.render_wall();
                if !wall.is_empty() {
                    out.push_str("# ---- wall (host-dependent) ----\n");
                    out.push_str(&wall);
                }
                out
            }
            MetricsFormat::Json => {
                let mut out = String::new();
                for label in &labels {
                    out.push_str(&registry.render_jsonl(label));
                }
                out
            }
            MetricsFormat::Prom => registry.render_prometheus(),
        };
        match std::fs::write(path, out) {
            Ok(()) => eprintln!("[metrics] wrote {path} ({} instruments)", registry.len()),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Wind the serving plane down: one last snapshot, the terminal status,
    // an optional linger window for late scrapers, then a clean shutdown
    // that closes the bus so SSE streams end instead of hanging.
    if let Some(shared) = &serve_state {
        if let Some(registry) = &registry {
            shared.export_metrics(registry);
            shared.set_metrics(registry.render_prometheus());
        }
        shared.update_status(|s| s.state = "finished");
        if opts.serve_linger_secs > 0 {
            eprintln!(
                "[serve] lingering {} s before shutdown",
                opts.serve_linger_secs
            );
            std::thread::sleep(Duration::from_secs(opts.serve_linger_secs));
        }
    }
    if let Some(mut handle) = serve_handle.take() {
        handle.shutdown();
    }
    ExitCode::SUCCESS
}
