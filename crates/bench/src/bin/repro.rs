//! Regenerates every table and figure of "Provisioning On-line Games".
//!
//! ```text
//! repro [OPTIONS] <ARTIFACT>...
//!
//! ARTIFACT:  table1 table2 table3 table4 fig1..fig15
//!            ablate-tick ablate-population ablate-nat-capacity
//!            ablate-nat-buffer route-cache source-model web-vs-game
//!            all        every artifact above
//!            main       tables I-III and figures 1-13
//!            nat        table IV and figures 14-15
//!
//! OPTIONS:
//!   --seed N       RNG seed (default 2002)
//!   --hours H      main-trace length in hours (default 24)
//!   --full-week    use the paper's full 626,477 s trace (~7.25 days)
//!   --csv DIR      also write key figures' data series as CSV into DIR
//! ```

use csprov::experiments::{ablations, aggregate, figures, nat, tables, web, ExperimentId};
use csprov::pipeline::MainRun;
use csprov_analysis::report::to_csv;
use csprov_game::{ScenarioConfig, PAPER_TRACE_SECS};
use csprov_router::EngineConfig;
use csprov_sim::SimDuration;
use std::process::ExitCode;

struct Options {
    seed: u64,
    hours: f64,
    full_week: bool,
    csv_dir: Option<String>,
    artifacts: Vec<ExperimentId>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: 2002,
        hours: 24.0,
        full_week: false,
        csv_dir: None,
        artifacts: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--hours" => {
                opts.hours = args
                    .next()
                    .ok_or("--hours needs a value")?
                    .parse()
                    .map_err(|e| format!("bad hours: {e}"))?;
            }
            "--full-week" => opts.full_week = true,
            "--csv" => opts.csv_dir = Some(args.next().ok_or("--csv needs a directory")?),
            "-h" | "--help" => return Err(String::new()),
            "all" => opts.artifacts = ExperimentId::all(),
            "main" => {
                opts.artifacts
                    .extend([ExperimentId::Table1, ExperimentId::Table2, ExperimentId::Table3]);
                opts.artifacts.extend((1..=13).map(ExperimentId::Fig));
            }
            "nat" => {
                opts.artifacts.extend([
                    ExperimentId::Table4,
                    ExperimentId::Fig14,
                    ExperimentId::Fig15,
                ]);
            }
            other => {
                let id: ExperimentId = other.parse()?;
                opts.artifacts.push(id);
            }
        }
    }
    if opts.artifacts.is_empty() {
        return Err("no artifacts requested".into());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: repro [--seed N] [--hours H] [--full-week] [--csv DIR] <artifact|all|main|nat>..."
    );
    eprintln!("artifacts: table1..table4, fig1..fig15, ablate-tick, ablate-population,");
    eprintln!("           ablate-nat-capacity, ablate-nat-buffer, route-cache, source-model,");
    eprintln!("           web-vs-game");
}

fn write_csv(dir: &str, name: &str, headers: &[&str], cols: &[&[f64]]) {
    let path = format!("{dir}/{name}.csv");
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, to_csv(headers, cols)))
    {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("[csv] wrote {path}");
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let duration = if opts.full_week {
        SimDuration::from_secs(PAPER_TRACE_SECS)
    } else {
        SimDuration::from_secs_f64(opts.hours * 3600.0)
    };

    let needs_main = opts.artifacts.iter().any(|a| a.needs_main_run());
    let needs_nat = opts.artifacts.iter().any(|a| a.needs_nat_run());

    let main_run = needs_main.then(|| {
        eprintln!(
            "[run] simulating {:.1} h of server traffic (seed {})...",
            duration.as_secs_f64() / 3600.0,
            opts.seed
        );
        let t0 = std::time::Instant::now();
        let run = MainRun::execute(ScenarioConfig::scaled(opts.seed, duration));
        eprintln!(
            "[run] done: {} packets in {:.1} s wall ({} events)",
            run.analysis.counts.total_packets(),
            t0.elapsed().as_secs_f64(),
            run.outcome.events_executed
        );
        run
    });
    let nat_run = needs_nat.then(|| {
        eprintln!("[run] NAT experiment: one 30-minute map through the device...");
        nat::run_nat_experiment(opts.seed, EngineConfig::default())
    });

    for id in &opts.artifacts {
        println!("\n================ {id} ================");
        let main = main_run.as_ref();
        let natr = nat_run.as_ref();
        let out = match id {
            ExperimentId::Table1 => tables::table1(main.unwrap()).render(),
            ExperimentId::Table2 => tables::table2(main.unwrap()).render(),
            ExperimentId::Table3 => tables::table3(main.unwrap()).render(),
            ExperimentId::Table4 => tables::table4(natr.unwrap()).render(),
            ExperimentId::Fig(n) => {
                let r = main.unwrap();
                match n {
                    1 => figures::fig1(r),
                    2 => figures::fig2(r),
                    3 => figures::fig3(r),
                    4 => figures::fig4(r),
                    5 => figures::fig5(r),
                    6 => figures::fig6(r),
                    7 => figures::fig7(r),
                    8 => figures::fig8(r),
                    9 => figures::fig9(r),
                    10 => figures::fig10(r),
                    11 => figures::fig11(r),
                    12 => figures::fig12(r),
                    13 => figures::fig13(r),
                    _ => unreachable!("validated at parse"),
                }
            }
            ExperimentId::Fig14 => figures::fig14(natr.unwrap()),
            ExperimentId::Fig15 => figures::fig15(natr.unwrap()),
            ExperimentId::AblateTick => ablations::ablate_tick(opts.seed, 20).render(),
            ExperimentId::AblatePopulation => {
                ablations::ablate_population(opts.seed, 240).render()
            }
            ExperimentId::AblateNatCapacity => ablations::ablate_nat_capacity(opts.seed).render(),
            ExperimentId::AblateNatBuffer => ablations::ablate_nat_buffer(opts.seed).render(),
            ExperimentId::RouteCache => ablations::route_cache_experiment(opts.seed).render(),
            ExperimentId::SourceModel => {
                ablations::source_model_experiment(opts.seed, 30).render()
            }
            ExperimentId::WebVsGame => web::web_vs_game(opts.seed).render(),
            ExperimentId::AblateLinkMix => ablations::ablate_link_mix(opts.seed, 20).render(),
            ExperimentId::AggregateServers => {
                aggregate::aggregate_servers(opts.seed, 120).render()
            }
        };
        println!("{out}");

        if let Some(dir) = &opts.csv_dir {
            match id {
                ExperimentId::Fig(1) | ExperimentId::Fig(2) => {
                    let r = main.unwrap();
                    let minutes: Vec<f64> =
                        (0..r.analysis.per_minute.bins().len()).map(|i| i as f64).collect();
                    write_csv(
                        dir,
                        &id.to_string(),
                        &["minute", "kbps", "pps"],
                        &[&minutes, &r.analysis.per_minute.kbps(), &r.analysis.per_minute.pps()],
                    );
                }
                ExperimentId::Fig(5) => {
                    let r = main.unwrap();
                    let pts = r.analysis.variance_time.points();
                    let xs: Vec<f64> = pts.iter().map(|p| p.log_block()).collect();
                    let ys: Vec<f64> = pts.iter().map(|p| p.log_variance()).collect();
                    write_csv(dir, "fig5", &["log10_block", "log10_norm_var"], &[&xs, &ys]);
                }
                ExperimentId::Fig(6) => {
                    let r = main.unwrap();
                    write_csv(dir, "fig6", &["pps"], &[&r.analysis.ms10_total.pps()]);
                }
                ExperimentId::Fig(9) => {
                    let r = main.unwrap();
                    write_csv(dir, "fig9", &["pps"], &[&r.analysis.sec1_total.pps()]);
                }
                ExperimentId::Fig14 => {
                    let r = natr.unwrap();
                    write_csv(
                        dir,
                        "fig14",
                        &["clients_to_nat_pps", "nat_to_server_pps"],
                        &[&r.clients_to_nat.pps(), &r.nat_to_server.pps()],
                    );
                }
                ExperimentId::Fig15 => {
                    let r = natr.unwrap();
                    write_csv(
                        dir,
                        "fig15",
                        &["server_to_nat_pps", "nat_to_clients_pps"],
                        &[&r.server_to_nat.pps(), &r.nat_to_clients.pps()],
                    );
                }
                _ => {}
            }
        }
    }
    ExitCode::SUCCESS
}
