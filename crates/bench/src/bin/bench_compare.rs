//! CI perf sentinel: diffs `BENCH_*.json` reports against the committed
//! baseline and fails on out-of-band regressions.
//!
//! ```text
//! bench_compare --baseline FILE --dir DIR [OPTIONS]
//!
//! OPTIONS:
//!   --baseline FILE     committed baseline (results/bench_baseline.json)
//!   --dir DIR           directory holding BENCH_*.json reports
//!   --tolerance PCT     default tolerance band in percent (default 15)
//!   --tolerance G=PCT   per-group override (repeatable)
//!   --out FILE          also write the JSON verdict there
//!   --update            rewrite the baseline from DIR's reports and exit
//!   --self-check        scale current medians 1.2x in memory and require
//!                       the gate to trip (validates the sentinel itself)
//! ```
//!
//! Exit codes: 0 pass, 1 regression (or failed self-check), 2 usage/IO
//! error. A host-metadata mismatch (different cpu count or rustc) prints
//! the comparison but never fails — wall times across machines are not
//! comparable evidence.

use csprov_bench::compare::{
    compare, parse_baseline, parse_report, render_baseline, render_text, render_verdict_json,
    Baseline, GroupReport, Tolerance,
};
use csprov_bench::harness::HostMeta;
use std::process::ExitCode;

struct Options {
    baseline: String,
    dir: String,
    tolerance: Tolerance,
    out: Option<String>,
    update: bool,
    self_check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        baseline: String::new(),
        dir: String::new(),
        tolerance: Tolerance::default(),
        out: None,
        update: false,
        self_check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => opts.baseline = args.next().ok_or("--baseline needs a file")?,
            "--dir" => opts.dir = args.next().ok_or("--dir needs a directory")?,
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs PCT or GROUP=PCT")?;
                match v.split_once('=') {
                    Some((group, pct)) => {
                        let pct: f64 = pct.parse().map_err(|e| format!("bad tolerance: {e}"))?;
                        opts.tolerance.per_group.insert(group.to_string(), pct);
                    }
                    None => {
                        opts.tolerance.default_pct =
                            v.parse().map_err(|e| format!("bad tolerance: {e}"))?;
                    }
                }
            }
            "--out" => opts.out = Some(args.next().ok_or("--out needs a file")?),
            "--update" => opts.update = true,
            "--self-check" => opts.self_check = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.baseline.is_empty() || opts.dir.is_empty() {
        return Err("--baseline and --dir are both required".into());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: bench_compare --baseline FILE --dir DIR [--tolerance PCT|GROUP=PCT]... \
         [--out FILE] [--update] [--self-check]"
    );
}

/// Reads and parses every `BENCH_*.json` in `dir`, sorted by file name.
fn load_reports(dir: &str) -> Result<Vec<GroupReport>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    let mut reports = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let report = parse_report(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        reports.push(report);
    }
    if reports.is_empty() {
        return Err(format!("no BENCH_*.json reports in {dir}"));
    }
    Ok(reports)
}

fn run(opts: &Options) -> Result<bool, String> {
    let reports = load_reports(&opts.dir)?;

    if opts.update {
        let host = reports
            .iter()
            .find_map(|r| r.host.clone())
            .unwrap_or_else(HostMeta::current);
        let text = render_baseline(&host, &reports);
        std::fs::write(&opts.baseline, text)
            .map_err(|e| format!("cannot write {}: {e}", opts.baseline))?;
        eprintln!(
            "[bench_compare] baseline {} updated from {} groups",
            opts.baseline,
            reports.len()
        );
        return Ok(true);
    }

    let text = std::fs::read_to_string(&opts.baseline)
        .map_err(|e| format!("cannot read {}: {e}", opts.baseline))?;
    let baseline: Baseline =
        parse_baseline(&text).map_err(|e| format!("{}: {e}", opts.baseline))?;

    if opts.self_check {
        // Inflate every current median by 20% in memory; with the default
        // 15% band the gate must trip, proving the sentinel actually bites.
        let mut inflated = reports.clone();
        for r in &mut inflated {
            for v in r.medians.values_mut() {
                *v *= 1.2;
            }
            // Force host equality so the mismatch downgrade can't mask a
            // broken gate.
            r.host = baseline.host.clone();
        }
        let cmp = compare(&baseline, &inflated, &opts.tolerance);
        if !cmp.fails() {
            return Err("self-check failed: a uniform 20% slowdown did not trip the gate".into());
        }
        eprintln!("[bench_compare] self-check ok: synthetic 20% slowdown trips the gate");
    }

    let cmp = compare(&baseline, &reports, &opts.tolerance);
    print!("{}", render_text(&cmp));
    if let Some(out) = &opts.out {
        std::fs::write(out, render_verdict_json(&cmp))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("[bench_compare] verdict written to {out}");
    }
    Ok(!cmp.fails())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
