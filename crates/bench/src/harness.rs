//! Minimal micro-benchmark harness.
//!
//! The workspace builds fully offline, so the `benches/` targets use this
//! small in-tree runner instead of an external benchmarking crate. The API
//! mirrors the conventional group/function/iter shape:
//!
//! ```no_run
//! use csprov_bench::harness::{black_box, Harness, Throughput};
//!
//! let mut h = Harness::from_args();
//! let mut g = h.group("sums");
//! g.throughput(Throughput::Elements(1_000));
//! g.bench_function("wrapping_add_1k", |b| {
//!     b.iter(|| (0..1_000u64).fold(0u64, |a, x| a.wrapping_add(black_box(x))))
//! });
//! g.finish();
//! ```
//!
//! Each function is warmed up, then timed over a fixed number of samples;
//! the report shows the median and minimum per-iteration time plus a
//! throughput rate when one is configured. A positional argument acts as a
//! substring filter on `group/name`, matching `cargo bench <filter>`.

use std::fmt::Write as _;
pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical items (events, packets, records) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level runner: parses CLI args once, then hands out groups.
pub struct Harness {
    filter: Option<String>,
    samples: u32,
    sample_time: Duration,
}

impl Harness {
    /// Builds a harness from `std::env::args`: flags (anything starting
    /// with `-`, as passed by `cargo bench`) are ignored, the first
    /// positional argument becomes a substring filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let sample_ms = std::env::var("CSPROV_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100u64);
        let samples = std::env::var("CSPROV_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10u32);
        Harness {
            filter,
            samples,
            sample_time: Duration::from_millis(sample_ms),
        }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            samples: self.samples,
            harness: self,
            name: name.to_string(),
            throughput: None,
            results: Vec::new(),
        }
    }
}

/// One finished measurement, as recorded in the group's JSON report.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Function name within the group.
    pub name: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Minimum per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Median throughput in units (elements or bytes) per second, when a
    /// [`Throughput`] was configured.
    pub rate_per_sec: Option<f64>,
}

/// A named group of benchmark functions sharing a throughput setting.
pub struct Group<'a> {
    harness: &'a Harness,
    name: String,
    throughput: Option<Throughput>,
    samples: u32,
    results: Vec<BenchResult>,
}

impl Group<'_> {
    /// Sets the per-iteration throughput for subsequent functions.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample count for this group (for expensive workloads).
    pub fn sample_size(&mut self, n: u32) {
        self.samples = n.max(1);
    }

    /// Runs one benchmark function: `f` receives a [`Bencher`] and must
    /// call [`Bencher::iter`] exactly once with the workload closure.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration: one iteration to estimate cost, then scale the
        // per-sample iteration count to fill the sample window.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let iters =
            (self.harness.sample_time.as_nanos() / once.as_nanos()).clamp(1, 1 << 30) as u64;

        // Warmup (discarded), then measured samples.
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for sample in 0..self.samples + 2 {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if sample >= 2 {
                per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
            }
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let rate_per_sec = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                Some(n as f64 / (median * 1e-9))
            }
            None => None,
        };
        let rate = match (self.throughput, rate_per_sec) {
            (Some(Throughput::Elements(_)), Some(r)) => format!("  {:>10}/s", si(r)),
            (Some(Throughput::Bytes(_)), Some(r)) => format!("  {:>9}B/s", si(r)),
            _ => String::new(),
        };
        println!(
            "{full:<44} median {:>12}  min {:>12}{rate}",
            fmt_ns(median),
            fmt_ns(min)
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns: median,
            min_ns: min,
            rate_per_sec,
        });
    }

    /// Ends the group. When `CSPROV_BENCH_OUT` names a directory, a
    /// machine-readable `BENCH_<group>.json` report of every measurement
    /// is written there (skipped silently when the group was fully
    /// filtered out, so filtered runs never clobber full reports).
    pub fn finish(self) {
        if self.results.is_empty() {
            return;
        }
        if let Ok(dir) = std::env::var("CSPROV_BENCH_OUT") {
            if dir.is_empty() {
                return;
            }
            let path = std::path::Path::new(&dir)
                .join(format!("BENCH_{}.json", self.name.replace(['/', ' '], "_")));
            let json = render_bench_json(&self.name, &self.results);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

/// Schema tag stamped into every bench report and baseline file.
pub const BENCH_SCHEMA: &str = "csprov-bench/1";

/// Host facts recorded alongside measurements so cross-host comparisons
/// can be recognised (and downgraded to warnings) instead of failing.
#[derive(Debug, Clone, PartialEq)]
pub struct HostMeta {
    /// Logical CPU count.
    pub cpus: u64,
    /// `rustc --version` of the toolchain on PATH, or `"unknown"`.
    pub rustc: String,
}

impl HostMeta {
    /// Probes the current host.
    pub fn current() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(0);
        let rustc = std::process::Command::new("rustc")
            .arg("--version")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        HostMeta { cpus, rustc }
    }

    /// Renders the `"host": {...}` JSON fragment.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cpus\": {}, \"rustc\": \"{}\"}}",
            self.cpus,
            json_escape(&self.rustc)
        )
    }
}

/// Renders a group report as JSON (hand-rolled: the workspace is
/// dependency-free, and the schema is flat enough not to need more).
pub fn render_bench_json(group: &str, results: &[BenchResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
    let _ = writeln!(out, "  \"group\": \"{}\",", json_escape(group));
    let _ = writeln!(out, "  \"host\": {},", HostMeta::current().to_json());
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let rate = match r.rate_per_sec {
            Some(v) => format!("{v:.1}"),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"rate_per_sec\": {}}}{}",
            json_escape(&r.name),
            r.median_ns,
            r.min_ns,
            rate,
            comma
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Per-function measurement context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_ranges() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert!(si(2.5e6).starts_with("2.50 M"));
    }

    #[test]
    fn bench_json_shape() {
        let results = vec![
            BenchResult {
                name: "push_pop_10k".into(),
                median_ns: 64_781.25,
                min_ns: 59_130.0,
                rate_per_sec: Some(154_365_000.7),
            },
            BenchResult {
                name: "quote\"d".into(),
                median_ns: 1.0,
                min_ns: 1.0,
                rate_per_sec: None,
            },
        ];
        let json = render_bench_json("event_queue", &results);
        assert!(json.contains("\"group\": \"event_queue\""));
        assert!(json.contains("\"schema\": \"csprov-bench/1\""));
        assert!(json.contains("\"host\": {\"cpus\": "));
        assert!(json.contains("\"rustc\": \""));
        assert!(json.contains("\"median_ns\": 64781.2") || json.contains("\"median_ns\": 64781.3"));
        assert!(json.contains("\"rate_per_sec\": 154365000.7"));
        assert!(json.contains("\"rate_per_sec\": null"));
        assert!(json.contains("quote\\\"d"));
        // Exactly one trailing comma between the two entries (the host
        // metadata line contributes the other `},`).
        assert_eq!(json.matches("}},").count(), 0);
        assert_eq!(json.matches("},\n").count(), 2);
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 17);
        assert!(b.elapsed > Duration::ZERO);
    }
}
