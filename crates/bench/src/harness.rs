//! Minimal micro-benchmark harness.
//!
//! The workspace builds fully offline, so the `benches/` targets use this
//! small in-tree runner instead of an external benchmarking crate. The API
//! mirrors the conventional group/function/iter shape:
//!
//! ```no_run
//! use csprov_bench::harness::{black_box, Harness, Throughput};
//!
//! let mut h = Harness::from_args();
//! let mut g = h.group("sums");
//! g.throughput(Throughput::Elements(1_000));
//! g.bench_function("wrapping_add_1k", |b| {
//!     b.iter(|| (0..1_000u64).fold(0u64, |a, x| a.wrapping_add(black_box(x))))
//! });
//! g.finish();
//! ```
//!
//! Each function is warmed up, then timed over a fixed number of samples;
//! the report shows the median and minimum per-iteration time plus a
//! throughput rate when one is configured. A positional argument acts as a
//! substring filter on `group/name`, matching `cargo bench <filter>`.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical items (events, packets, records) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level runner: parses CLI args once, then hands out groups.
pub struct Harness {
    filter: Option<String>,
    samples: u32,
    sample_time: Duration,
}

impl Harness {
    /// Builds a harness from `std::env::args`: flags (anything starting
    /// with `-`, as passed by `cargo bench`) are ignored, the first
    /// positional argument becomes a substring filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let sample_ms = std::env::var("CSPROV_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100u64);
        let samples = std::env::var("CSPROV_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10u32);
        Harness {
            filter,
            samples,
            sample_time: Duration::from_millis(sample_ms),
        }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            samples: self.samples,
            harness: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group of benchmark functions sharing a throughput setting.
pub struct Group<'a> {
    harness: &'a Harness,
    name: String,
    throughput: Option<Throughput>,
    samples: u32,
}

impl Group<'_> {
    /// Sets the per-iteration throughput for subsequent functions.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample count for this group (for expensive workloads).
    pub fn sample_size(&mut self, n: u32) {
        self.samples = n.max(1);
    }

    /// Runs one benchmark function: `f` receives a [`Bencher`] and must
    /// call [`Bencher::iter`] exactly once with the workload closure.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration: one iteration to estimate cost, then scale the
        // per-sample iteration count to fill the sample window.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let iters =
            (self.harness.sample_time.as_nanos() / once.as_nanos()).clamp(1, 1 << 30) as u64;

        // Warmup (discarded), then measured samples.
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for sample in 0..self.samples + 2 {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if sample >= 2 {
                per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
            }
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10}/s", si(n as f64 / (median * 1e-9)))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>9}B/s", si(n as f64 / (median * 1e-9)))
            }
            None => String::new(),
        };
        println!(
            "{full:<44} median {:>12}  min {:>12}{rate}",
            fmt_ns(median),
            fmt_ns(min)
        );
    }

    /// Ends the group (kept for call-site symmetry; no summary state).
    pub fn finish(self) {}
}

/// Per-function measurement context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_ranges() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert!(si(2.5e6).starts_with("2.50 M"));
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 17);
        assert!(b.elapsed > Duration::ZERO);
    }
}
