//! # csprov-bench — reproduction harness and performance benchmarks
//!
//! - `src/bin/repro.rs` — regenerates every table and figure of the paper
//!   (`cargo run -p csprov-bench --release --bin repro -- all`).
//! - `src/bin/bench_compare.rs` — the CI perf sentinel: diffs bench
//!   reports against `results/bench_baseline.json` (logic in [`compare`]).
//! - `benches/` — micro-benchmarks for the performance-critical layers
//!   (event kernel, wire formats, streaming analyzers, router models, and
//!   the end-to-end simulation), built on the in-tree [`harness`].
//!
//! This crate intentionally has no library surface beyond the helpers the
//! binaries and benches share.

pub mod compare;
pub mod harness;

use csprov::pipeline::MainRun;
use csprov_game::ScenarioConfig;
use csprov_sim::SimDuration;

/// Builds the standard scaled scenario the harness uses.
pub fn scenario(seed: u64, hours: f64) -> ScenarioConfig {
    ScenarioConfig::scaled(seed, SimDuration::from_secs_f64(hours * 3600.0))
}

/// Runs the main trace at the standard scale.
pub fn main_run(seed: u64, hours: f64) -> MainRun {
    MainRun::execute(scenario(seed, hours))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_scaled() {
        let cfg = scenario(1, 2.0);
        assert_eq!(cfg.duration.as_secs(), 7200);
        assert!(cfg.outages.is_empty(), "outages fall outside 2 h");
        let cfg = scenario(1, 174.0);
        assert_eq!(cfg.outages.len(), 3);
    }
}
