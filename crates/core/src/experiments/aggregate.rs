//! Multi-server aggregation — Section IV-B's "good news":
//! "the traffic from an aggregation of all on-line Counter-Strike players is
//! effectively linear to the number of active players", while
//! "self-similarity in aggregate game traffic ... will be directly
//! dependent on the self-similarity of user populations".
//!
//! The experiment delegates to the [`crate::fleet`] engine: independent
//! servers run across the work-stealing pool, each run is reduced to its
//! mergeable shard state, and the measurements (per-player slope, fit
//! quality, aggregate Hurst) are read off the merged facility aggregate.

use crate::fleet::{run_fleet as run_fleet_engine, FleetConfig, FleetError};
use csprov_analysis::report::{fmt_f64, TextTable};

/// One fleet variant's measurements.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    /// Variant label.
    pub label: String,
    /// Servers in the fleet.
    pub servers: usize,
    /// Mean aggregate player count.
    pub mean_players: f64,
    /// Per-player packet rate from the cross-fleet regression.
    pub pps_per_player: f64,
    /// Fit quality of the linearity claim.
    pub r_squared: f64,
    /// R/S Hurst exponent of the aggregate per-minute rate.
    pub hurst: Option<f64>,
    /// Tail minute bins dropped when truncating shards to the common
    /// prefix (surfaced instead of silently discarded).
    pub dropped_bins: u64,
}

/// Runs `servers` independent servers for `minutes` with the session-
/// duration shape `sigma`, merges their traffic, and measures linearity
/// and aggregate Hurst.
///
/// Degenerate inputs are typed errors, not panics: `servers == 0` is
/// [`FleetError::NoServers`], and a shard worker panic is contained and
/// reported as [`FleetError::ShardFailed`].
pub fn run_fleet(
    label: &str,
    seed: u64,
    servers: usize,
    minutes: u64,
    sigma: f64,
) -> Result<AggregateResult, FleetError> {
    let mut config = FleetConfig::new(label, seed, servers, minutes);
    config.session_sigma = sigma;
    let fleet = run_fleet_engine(&config)?;
    Ok(AggregateResult {
        label: label.to_string(),
        servers,
        mean_players: fleet.report.mean_players,
        pps_per_player: fleet.report.pps_per_player,
        r_squared: fleet.report.r_squared,
        hurst: fleet.report.hurst,
        dropped_bins: fleet.report.dropped_bins,
    })
}

/// The rendered aggregation experiment.
pub fn aggregate_servers(seed: u64, minutes: u64) -> TextTable {
    let mut t =
        TextTable::new("Aggregation: fleet traffic vs players (Section IV-B)").header(vec![
            "population",
            "servers",
            "mean players",
            "pps/player",
            "linearity r^2",
            "aggregate H (R/S)",
            "dropped bins",
        ]);
    let variants = [
        run_fleet("fixed-ish (default)", seed, 4, minutes, 1.05),
        run_fleet("heavy-tail sessions", seed + 100, 4, minutes, 2.4),
    ];
    for variant in variants {
        match variant {
            Ok(r) => {
                t.row(vec![
                    r.label.clone(),
                    r.servers.to_string(),
                    fmt_f64(r.mean_players, 1),
                    fmt_f64(r.pps_per_player, 1),
                    fmt_f64(r.r_squared, 4),
                    r.hurst
                        .map(|h| fmt_f64(h, 3))
                        .unwrap_or_else(|| "-".to_string()),
                    r.dropped_bins.to_string(),
                ]);
            }
            Err(e) => {
                t.row(vec![
                    format!("error: {e}"),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_rate_is_linear_in_players() {
        let r = run_fleet("test", 61, 3, 50, 1.05).unwrap();
        assert_eq!(r.servers, 3);
        assert!(r.mean_players > 30.0, "fleet of busy servers");
        // Per-player packet rate: ~24 in + ~20 out ≈ 45 pps.
        assert!(
            (35.0..55.0).contains(&r.pps_per_player),
            "pps/player {}",
            r.pps_per_player
        );
        assert!(r.r_squared > 0.99, "linearity r^2 {}", r.r_squared);
    }

    #[test]
    fn heavy_tails_raise_aggregate_variability() {
        let fixed = run_fleet("fixed", 62, 3, 60, 1.05).unwrap();
        let heavy = run_fleet("heavy", 63, 3, 60, 2.4).unwrap();
        // Both estimate an H; the heavy-tailed population's aggregate should
        // not be smoother than the fixed one's.
        let hf = fixed.hurst.expect("fixed H");
        let hh = heavy.hurst.expect("heavy H");
        assert!(hh + 0.1 >= hf, "heavy {hh} vs fixed {hf}");
    }

    #[test]
    fn zero_servers_is_an_error_not_a_panic() {
        let err = run_fleet("none", 1, 0, 5, 1.05).err();
        assert_eq!(err, Some(FleetError::NoServers));
    }

    #[test]
    fn table_renders() {
        let t = aggregate_servers(64, 30);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("pps/player"));
        assert!(t.render().contains("dropped bins"));
    }
}
