//! Multi-server aggregation — Section IV-B's "good news":
//! "the traffic from an aggregation of all on-line Counter-Strike players is
//! effectively linear to the number of active players", while
//! "self-similarity in aggregate game traffic ... will be directly
//! dependent on the self-similarity of user populations".
//!
//! We run a small fleet of independent servers (parallel, different seeds),
//! merge their traffic, and measure both claims: the per-minute aggregate
//! packet rate regressed on the aggregate player count (linearity), and the
//! rescaled-range Hurst exponent of the aggregate rate (population-driven
//! long-range dependence).

use crate::pipeline::MainRun;
use csprov_analysis::report::{fmt_f64, TextTable};
use csprov_analysis::{fit_line, rs_hurst};
use csprov_game::ScenarioConfig;
use csprov_sim::SimDuration;

/// One fleet variant's measurements.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    /// Variant label.
    pub label: String,
    /// Servers in the fleet.
    pub servers: usize,
    /// Mean aggregate player count.
    pub mean_players: f64,
    /// Per-player packet rate from the minute-level regression.
    pub pps_per_player: f64,
    /// Fit quality of the linearity claim.
    pub r_squared: f64,
    /// R/S Hurst exponent of the aggregate per-minute rate.
    pub hurst: Option<f64>,
}

/// Runs `servers` independent servers for `minutes` with the session-
/// duration shape `sigma`, merges their traffic, and measures linearity
/// and aggregate Hurst.
pub fn run_fleet(
    label: &str,
    seed: u64,
    servers: usize,
    minutes: u64,
    sigma: f64,
) -> AggregateResult {
    let scenarios: Vec<ScenarioConfig> = (0..servers)
        .map(|i| {
            let mut cfg = ScenarioConfig::new(seed + i as u64, SimDuration::from_mins(minutes));
            cfg.workload.session_sigma = sigma;
            cfg.workload.session_range.1 = SimDuration::from_hours(12);
            cfg
        })
        .collect();

    // Fan the fleet across threads; each run is independently deterministic.
    let runs: Vec<MainRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = scenarios
            .into_iter()
            .map(|cfg| scope.spawn(move || MainRun::execute(cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    });

    // Merge per-minute packet rates and player counts across the fleet.
    let bins = runs
        .iter()
        .map(|r| r.analysis.per_minute.bins().len())
        .min()
        .unwrap_or(0);
    let mut agg_pps = vec![0.0f64; bins];
    let mut agg_players = vec![0.0f64; bins];
    for run in &runs {
        let pps = run.analysis.per_minute.pps();
        for (i, agg) in agg_pps.iter_mut().enumerate() {
            *agg += pps[i];
        }
        for (i, agg) in agg_players.iter_mut().enumerate() {
            *agg += run.outcome.players_per_minute.get(i).copied().unwrap_or(0) as f64;
        }
    }

    // Linearity across fleet size: the aggregate of the first k servers vs
    // their combined player count (the paper's "effectively linear to the
    // number of active players"). Within-trace minute wiggles are dominated
    // by churn noise; the scaling law is the cross-fleet slope.
    let mut points = Vec::new();
    let mut cum_pps = 0.0;
    let mut cum_players = 0.0;
    for run in &runs {
        let secs = run.config.duration.as_secs_f64();
        cum_pps += run.analysis.counts.total_packets() as f64 / secs;
        cum_players += run.outcome.mean_players;
        points.push((cum_players, cum_pps));
    }
    let fit = fit_line(&points).expect("fleet produced data");
    let mean_players = agg_players.iter().sum::<f64>() / bins.max(1) as f64;
    let hurst = rs_hurst(&agg_pps, 8).map(|(h, _)| h);

    AggregateResult {
        label: label.to_string(),
        servers,
        mean_players,
        pps_per_player: fit.slope,
        r_squared: fit.r_squared,
        hurst,
    }
}

/// The rendered aggregation experiment.
pub fn aggregate_servers(seed: u64, minutes: u64) -> TextTable {
    let mut t =
        TextTable::new("Aggregation: fleet traffic vs players (Section IV-B)").header(vec![
            "population",
            "servers",
            "mean players",
            "pps/player",
            "linearity r^2",
            "aggregate H (R/S)",
        ]);
    for r in [
        run_fleet("fixed-ish (default)", seed, 4, minutes, 1.05),
        run_fleet("heavy-tail sessions", seed + 100, 4, minutes, 2.4),
    ] {
        t.row(vec![
            r.label.clone(),
            r.servers.to_string(),
            fmt_f64(r.mean_players, 1),
            fmt_f64(r.pps_per_player, 1),
            fmt_f64(r.r_squared, 4),
            r.hurst.map(|h| fmt_f64(h, 3)).unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_rate_is_linear_in_players() {
        let r = run_fleet("test", 61, 3, 50, 1.05);
        assert_eq!(r.servers, 3);
        assert!(r.mean_players > 30.0, "fleet of busy servers");
        // Per-player packet rate: ~24 in + ~20 out ≈ 45 pps.
        assert!(
            (35.0..55.0).contains(&r.pps_per_player),
            "pps/player {}",
            r.pps_per_player
        );
        assert!(r.r_squared > 0.99, "linearity r^2 {}", r.r_squared);
    }

    #[test]
    fn heavy_tails_raise_aggregate_variability() {
        let fixed = run_fleet("fixed", 62, 3, 60, 1.05);
        let heavy = run_fleet("heavy", 63, 3, 60, 2.4);
        // Both estimate an H; the heavy-tailed population's aggregate should
        // not be smoother than the fixed one's.
        let hf = fixed.hurst.expect("fixed H");
        let hh = heavy.hurst.expect("heavy H");
        assert!(hh + 0.1 >= hf, "heavy {hh} vs fixed {hf}");
    }

    #[test]
    fn table_renders() {
        let t = aggregate_servers(64, 30);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("pps/player"));
    }
}
