//! Renderers for the paper's four tables, with paper-vs-measured columns.

use crate::experiments::nat::NatRun;
use crate::pipeline::MainRun;
use csprov_analysis::report::{fmt_count, fmt_delta, fmt_f64, TextTable};
use csprov_analysis::{application_usage, gib, network_usage, summarize_sessions};

/// Paper values for Table I.
pub mod paper {
    /// Trace length in seconds.
    pub const TRACE_SECS: f64 = 626_477.0;
    /// Maps played.
    pub const MAPS: f64 = 339.0;
    /// Established connections.
    pub const ESTABLISHED: f64 = 16_030.0;
    /// Unique clients establishing.
    pub const UNIQUE_EST: f64 = 5_886.0;
    /// Attempted connections.
    pub const ATTEMPTED: f64 = 24_004.0;
    /// Unique clients attempting.
    pub const UNIQUE_ATT: f64 = 8_207.0;
    /// Total packets.
    pub const PACKETS: f64 = 500_000_000.0;
    /// Packets in / out.
    pub const PACKETS_IN: f64 = 273_846_081.0;
    /// Packets out.
    pub const PACKETS_OUT: f64 = 226_153_919.0;
    /// Total bytes (GiB).
    pub const GIB_TOTAL: f64 = 64.42;
    /// Bytes in (GiB).
    pub const GIB_IN: f64 = 24.92;
    /// Bytes out (GiB).
    pub const GIB_OUT: f64 = 39.49;
    /// Mean packet load (pps): total, in, out.
    pub const PPS: [f64; 3] = [798.11, 437.12, 360.99];
    /// Mean bandwidth (kbps): total, in, out.
    pub const KBPS: [f64; 3] = [883.0, 341.0, 542.0];
    /// Application bytes (GiB): total, in, out.
    pub const APP_GIB: [f64; 3] = [37.41, 10.13, 27.28];
    /// Mean application packet size (B): total, in, out.
    pub const APP_SIZE: [f64; 3] = [80.33, 39.72, 129.51];
    /// Table IV: NAT experiment.
    pub const NAT_SERVER_TO_NAT: f64 = 677_278.0;
    /// NAT → clients packets.
    pub const NAT_TO_CLIENTS: f64 = 674_157.0;
    /// Outgoing loss rate.
    pub const NAT_OUT_LOSS: f64 = 0.00046;
    /// Clients → NAT packets.
    pub const CLIENTS_TO_NAT: f64 = 853_035.0;
    /// NAT → server packets.
    pub const NAT_TO_SERVER: f64 = 841_960.0;
    /// Incoming loss rate.
    pub const NAT_IN_LOSS: f64 = 0.013;
}

/// Table I: general trace information.
pub fn table1(run: &MainRun) -> TextTable {
    let s = summarize_sessions(&run.outcome.sessions);
    let k = run.week_scale();
    let mut t = TextTable::new("Table I: general trace information").header(vec![
        "metric",
        "measured",
        "scaled to week",
        "paper",
        "delta",
    ]);
    let mut row = |name: &str, measured: f64, paper: f64| {
        let scaled = measured * k;
        t.row(vec![
            name.to_string(),
            fmt_count(measured as u64),
            fmt_count(scaled as u64),
            fmt_count(paper as u64),
            fmt_delta(scaled, paper),
        ]);
    };
    row(
        "trace seconds",
        run.config.duration.as_secs_f64(),
        paper::TRACE_SECS,
    );
    row(
        "maps played",
        f64::from(run.outcome.maps_played),
        paper::MAPS,
    );
    row(
        "established connections",
        s.established as f64,
        paper::ESTABLISHED,
    );
    row(
        "attempted connections",
        s.attempted as f64,
        paper::ATTEMPTED,
    );
    // Unique-client counts grow sublinearly (regulars recur), so the
    // linear week-scaling overstates them on short runs; they are shown
    // unscaled against the paper only on full-week runs.
    t.row(vec![
        "unique clients establishing".to_string(),
        fmt_count(s.unique_establishing),
        "(sublinear)".to_string(),
        fmt_count(paper::UNIQUE_EST as u64),
        fmt_delta(s.unique_establishing as f64, paper::UNIQUE_EST),
    ]);
    t.row(vec![
        "unique clients attempting".to_string(),
        fmt_count(s.unique_attempting),
        "(sublinear)".to_string(),
        fmt_count(paper::UNIQUE_ATT as u64),
        fmt_delta(s.unique_attempting as f64, paper::UNIQUE_ATT),
    ]);
    t.row(vec![
        "mean session (s)".to_string(),
        fmt_f64(s.mean_session.as_secs_f64(), 0),
        "-".to_string(),
        "~900".to_string(),
        fmt_delta(s.mean_session.as_secs_f64(), 900.0),
    ]);
    t.row(vec![
        "mean players".to_string(),
        fmt_f64(run.outcome.mean_players, 1),
        "-".to_string(),
        "~18".to_string(),
        fmt_delta(run.outcome.mean_players, 18.0),
    ]);
    t
}

/// Table II: network usage information.
pub fn table2(run: &MainRun) -> TextTable {
    let u = network_usage(&run.analysis.counts, run.config.duration);
    let k = run.week_scale();
    let mut t = TextTable::new("Table II: network usage").header(vec![
        "metric",
        "measured",
        "scaled to week",
        "paper",
        "delta",
    ]);
    let mut count_row = |name: &str, measured: u64, paper: f64| {
        let scaled = measured as f64 * k;
        t.row(vec![
            name.to_string(),
            fmt_count(measured),
            fmt_count(scaled as u64),
            fmt_count(paper as u64),
            fmt_delta(scaled, paper),
        ]);
    };
    count_row("total packets", u.total_packets, paper::PACKETS);
    count_row("packets in", u.packets[0], paper::PACKETS_IN);
    count_row("packets out", u.packets[1], paper::PACKETS_OUT);
    let gib_row = |t: &mut TextTable, name: &str, bytes: u64, paper: f64| {
        let scaled = gib(bytes) * k;
        t.row(vec![
            name.to_string(),
            format!("{} GiB", fmt_f64(gib(bytes), 2)),
            format!("{} GiB", fmt_f64(scaled, 2)),
            format!("{paper} GiB"),
            fmt_delta(scaled, paper),
        ]);
    };
    gib_row(&mut t, "total bytes", u.total_bytes, paper::GIB_TOTAL);
    gib_row(&mut t, "bytes in", u.bytes[0], paper::GIB_IN);
    gib_row(&mut t, "bytes out", u.bytes[1], paper::GIB_OUT);
    let labels = ["total", "in", "out"];
    for (i, label) in labels.iter().enumerate() {
        t.row(vec![
            format!("mean packet load {label} (pps)"),
            fmt_f64(u.mean_pps[i], 2),
            "-".to_string(),
            fmt_f64(paper::PPS[i], 2),
            fmt_delta(u.mean_pps[i], paper::PPS[i]),
        ]);
    }
    for (i, label) in labels.iter().enumerate() {
        t.row(vec![
            format!("mean bandwidth {label} (kbps)"),
            fmt_f64(u.mean_kbps[i], 0),
            "-".to_string(),
            fmt_f64(paper::KBPS[i], 0),
            fmt_delta(u.mean_kbps[i], paper::KBPS[i]),
        ]);
    }
    t
}

/// Table III: application-level information.
pub fn table3(run: &MainRun) -> TextTable {
    let a = application_usage(&run.analysis.counts);
    let k = run.week_scale();
    let mut t = TextTable::new("Table III: application information").header(vec![
        "metric",
        "measured",
        "scaled to week",
        "paper",
        "delta",
    ]);
    let bytes = [a.total_bytes, a.bytes[0], a.bytes[1]];
    let labels = ["total", "in", "out"];
    for (i, label) in labels.iter().enumerate() {
        let scaled = gib(bytes[i]) * k;
        t.row(vec![
            format!("app bytes {label} (GiB)"),
            fmt_f64(gib(bytes[i]), 2),
            fmt_f64(scaled, 2),
            fmt_f64(paper::APP_GIB[i], 2),
            fmt_delta(scaled, paper::APP_GIB[i]),
        ]);
    }
    for (i, label) in labels.iter().enumerate() {
        t.row(vec![
            format!("mean packet size {label} (B)"),
            fmt_f64(a.mean_size[i], 2),
            "-".to_string(),
            fmt_f64(paper::APP_SIZE[i], 2),
            fmt_delta(a.mean_size[i], paper::APP_SIZE[i]),
        ]);
    }
    t
}

/// Table IV: NAT experiment loss accounting.
pub fn table4(run: &NatRun) -> TextTable {
    let s = &run.stats;
    let (in_loss, out_loss) = run.loss_rates();
    let mut t = TextTable::new("Table IV: NAT experiment")
        .header(vec!["metric", "measured", "paper", "delta"]);
    let rows: [(&str, f64, f64); 6] = [
        (
            "outgoing: server -> NAT packets",
            s.offered[1].get() as f64,
            paper::NAT_SERVER_TO_NAT,
        ),
        (
            "outgoing: NAT -> clients packets",
            s.forwarded[1].get() as f64,
            paper::NAT_TO_CLIENTS,
        ),
        (
            "outgoing loss rate (%)",
            out_loss * 100.0,
            paper::NAT_OUT_LOSS * 100.0,
        ),
        (
            "incoming: clients -> NAT packets",
            s.offered[0].get() as f64,
            paper::CLIENTS_TO_NAT,
        ),
        (
            "incoming: NAT -> server packets",
            s.forwarded[0].get() as f64,
            paper::NAT_TO_SERVER,
        ),
        (
            "incoming loss rate (%)",
            in_loss * 100.0,
            paper::NAT_IN_LOSS * 100.0,
        ),
    ];
    for (name, measured, paper) in rows {
        let shown = if name.contains('%') {
            (fmt_f64(measured, 3), fmt_f64(paper, 3))
        } else {
            (fmt_count(measured as u64), fmt_count(paper as u64))
        };
        t.row(vec![
            name.to_string(),
            shown.0,
            shown.1,
            fmt_delta(measured, paper),
        ]);
    }
    // The paper reports loss only; the delay side of its warning is shown
    // as supplementary rows (no paper column).
    for (name, d) in [
        ("incoming sojourn mean/max (ms)", &s.delay[0]),
        ("outgoing sojourn mean/max (ms)", &s.delay[1]),
    ] {
        t.row(vec![
            name.to_string(),
            format!(
                "{} / {}",
                fmt_f64(d.mean().as_secs_f64() * 1000.0, 2),
                fmt_f64(d.max().as_secs_f64() * 1000.0, 1)
            ),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_game::ScenarioConfig;
    use csprov_sim::SimDuration;

    fn quick_main() -> MainRun {
        MainRun::execute(ScenarioConfig::new(21, SimDuration::from_mins(12)))
    }

    #[test]
    fn tables_render_nonempty() {
        let run = quick_main();
        let t1 = table1(&run);
        let t2 = table2(&run);
        let t3 = table3(&run);
        assert!(t1.len() >= 8);
        assert_eq!(t2.len(), 12);
        assert_eq!(t3.len(), 6);
        for t in [&t1, &t2, &t3] {
            let s = t.render();
            assert!(s.contains("paper"));
            assert!(s.contains('%') || s.contains("n/a"));
        }
    }

    #[test]
    fn table2_pps_close_to_paper() {
        // Even a 12-minute slice should land within ~15% of the paper's
        // steady-state packet rates once the server is busy.
        let run = quick_main();
        let u = network_usage(&run.analysis.counts, run.config.duration);
        let rel = (u.mean_pps[0] - paper::PPS[0]).abs() / paper::PPS[0];
        assert!(rel < 0.2, "pps {} vs {}", u.mean_pps[0], paper::PPS[0]);
    }

    #[test]
    fn table3_sizes_close_to_paper() {
        let run = quick_main();
        let a = application_usage(&run.analysis.counts);
        assert!((a.mean_size[1] - paper::APP_SIZE[1]).abs() < 3.0);
        assert!((a.mean_size[2] - paper::APP_SIZE[2]).abs() < 12.0);
    }
}
