//! The Section IV-A contrast, measured: offer the same NAT device game
//! traffic and bulk TCP traffic, and show that the device's limit is
//! packets (route lookups), not bits.

use crate::experiments::nat::run_nat_experiment;
use csprov_analysis::report::{fmt_f64, TextTable};
use csprov_net::{CountingSink, Direction, TraceSink};
use csprov_router::{EngineConfig, NatDevice, NatTaps};
use csprov_sim::SimDuration;
use csprov_web::{run_web_workload, TcpConfig, WebConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct WorkloadRow {
    /// Label.
    pub name: String,
    /// Offered bandwidth (wire bits, both directions), kbps.
    pub kbps: f64,
    /// Offered packet rate, pps.
    pub pps: f64,
    /// Mean application payload size, bytes.
    pub mean_size: f64,
    /// Loss through the device, inbound (client→server side).
    pub in_loss: f64,
    /// Loss through the device, outbound.
    pub out_loss: f64,
}

fn web_row(name: &str, seed: u64, cfg: WebConfig, minutes: u64) -> WorkloadRow {
    let device = Rc::new(NatDevice::new(EngineConfig::default(), NatTaps::default()));
    let sink = Rc::new(RefCell::new(CountingSink::new()));
    let sink_dyn: Rc<RefCell<dyn TraceSink>> = sink.clone();
    run_web_workload(
        cfg,
        SimDuration::from_mins(minutes),
        seed,
        sink_dyn,
        Some(device.clone()),
    );
    let secs = minutes as f64 * 60.0;
    let c = sink.borrow();
    let stats = device.stats();
    WorkloadRow {
        name: name.to_string(),
        kbps: c.total_wire_bytes() as f64 * 8.0 / secs / 1000.0,
        pps: c.total_packets() as f64 / secs,
        mean_size: (c.app_bytes_in(Direction::Inbound) + c.app_bytes_in(Direction::Outbound))
            as f64
            / c.total_packets().max(1) as f64,
        in_loss: stats.loss_rate(Direction::Inbound),
        out_loss: stats.loss_rate(Direction::Outbound),
    }
}

/// Builds the comparison rows: the game server vs. bulk TCP at matched and
/// at several-times-higher bit-rates, all through the identical device.
pub fn web_vs_game_rows(seed: u64) -> Vec<WorkloadRow> {
    // Game through the NAT (the Table IV experiment).
    let game = run_nat_experiment(seed, EngineConfig::default());
    let secs = game.outcome.duration.as_secs_f64();
    let pre_in: u64 = game.clients_to_nat.bins().iter().map(|b| b.packets).sum();
    let pre_out: u64 = game.server_to_nat.bins().iter().map(|b| b.packets).sum();
    let bytes: u64 = game
        .clients_to_nat
        .bins()
        .iter()
        .chain(game.server_to_nat.bins())
        .map(|b| b.wire_bytes)
        .sum();
    let (gi, go) = game.loss_rates();
    let game_row = WorkloadRow {
        name: "game server (22 slots)".into(),
        kbps: bytes as f64 * 8.0 / secs / 1000.0,
        pps: (pre_in + pre_out) as f64 / secs,
        // Taps carry wire bytes; subtract the per-packet overhead.
        mean_size: bytes as f64 / (pre_in + pre_out).max(1) as f64
            - f64::from(csprov_net::WIRE_OVERHEAD_BYTES),
        in_loss: gi,
        out_loss: go,
    };

    // Web at roughly the game's bit-rate: one flow window-clamped to
    // ~8 segments per 100 ms RTT ≈ 0.96 Mbps.
    let matched = WebConfig {
        flow_rate: 0.0,
        persistent_flows: 1,
        rtt: (SimDuration::from_millis(100), SimDuration::from_millis(100)),
        tcp: TcpConfig {
            max_cwnd: 8.0,
            init_ssthresh: 8.0,
            ..TcpConfig::default()
        },
        ..WebConfig::default()
    };
    // Web with an open window: TCP probes until the device queue clips it
    // (AIMD sawtooth against the 22-packet LAN queue) — the "as fast as
    // this device allows" row.
    let heavy = WebConfig {
        flow_rate: 0.0,
        persistent_flows: 1,
        rtt: (SimDuration::from_millis(100), SimDuration::from_millis(100)),
        tcp: TcpConfig {
            max_cwnd: 40.0,
            init_ssthresh: 40.0,
            ..TcpConfig::default()
        },
        ..WebConfig::default()
    };
    vec![
        game_row,
        web_row("bulk TCP, matched kbps", seed, matched, 30),
        web_row("bulk TCP, open window", seed, heavy, 30),
    ]
}

/// Renders the comparison table.
pub fn web_vs_game(seed: u64) -> TextTable {
    let mut t = TextTable::new("Same NAT device, game vs bulk TCP: the limit is packets, not bits")
        .header(vec![
            "workload",
            "kbps",
            "pps",
            "mean pkt (B)",
            "in loss %",
            "out loss %",
        ]);
    for r in web_vs_game_rows(seed) {
        t.row(vec![
            r.name.clone(),
            fmt_f64(r.kbps, 0),
            fmt_f64(r.pps, 0),
            fmt_f64(r.mean_size, 1),
            fmt_f64(r.in_loss * 100.0, 3),
            fmt_f64(r.out_loss * 100.0, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn game_melts_device_web_does_not() {
        let rows = web_vs_game_rows(17);
        assert_eq!(rows.len(), 3);
        let game = &rows[0];
        let matched = &rows[1];
        let heavy = &rows[2];
        // The paper's claim, quantified: the game's loss at ~900 kbps far
        // exceeds TCP's at matched — and even at several times — the rate.
        assert!(game.in_loss > 0.003, "game loss {}", game.in_loss);
        assert!(
            matched.in_loss + matched.out_loss < game.in_loss / 5.0,
            "matched web loss {} vs game {}",
            matched.in_loss + matched.out_loss,
            game.in_loss
        );
        // TCP self-clamps to the device queue (AIMD sawtooth), but still
        // pushes well past the game's bit-rate with modest drop rates it
        // absorbs via retransmission.
        assert!(
            heavy.kbps > game.kbps * 1.8,
            "open-window web carries more bits: {} vs {}",
            heavy.kbps,
            game.kbps
        );
        // The mechanism: packet size. Bulk TCP's mean dwarfs the game's.
        assert!(matched.mean_size > 400.0);
        assert!(game.pps > matched.pps * 3.0, "game sends far more packets");
    }

    #[test]
    fn table_renders() {
        let t = web_vs_game(18);
        let s = t.render();
        assert!(s.contains("bulk TCP"));
        assert!(s.contains("game server"));
    }
}
