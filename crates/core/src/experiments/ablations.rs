//! Ablations and extensions: the design-choice experiments DESIGN.md calls
//! out, plus the paper's §IV-B future-work directions (route caching,
//! source models).

use crate::experiments::nat::run_nat_experiment;
use crate::pipeline::MainRun;
use csprov_analysis::report::{fmt_f64, TextTable};
use csprov_game::{ScenarioConfig, WorkloadConfig};
use csprov_model::SourceModelFit;
use csprov_net::{CountingSink, Direction, TraceSink};
use csprov_router::{CachePolicy, EngineConfig, NextHop, RouteTable};
use csprov_sim::{RngStream, SimDuration};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

fn peak_to_mean(pps: &[f64]) -> f64 {
    let mean = pps.iter().sum::<f64>() / pps.len().max(1) as f64;
    let peak = pps.iter().cloned().fold(0.0, f64::max);
    if mean > 0.0 {
        peak / mean
    } else {
        0.0
    }
}

/// How the server tick period shapes burst structure and sub-tick
/// smoothing. The paper attributes the entire 10 ms burst signature to the
/// 50 ms tick; halving or doubling it should move the burst spacing and the
/// variance-time knee accordingly.
pub fn ablate_tick(seed: u64, minutes: u64) -> TextTable {
    let mut t = TextTable::new("Ablation: server tick period").header(vec![
        "tick (ms)",
        "out pps",
        "out peak/mean @10ms",
        "H (m < tick)",
        "mean snapshot (B)",
    ]);
    for tick_ms in [25u64, 50, 100] {
        let mut cfg = ScenarioConfig::new(seed, SimDuration::from_mins(minutes));
        cfg.server.tick = SimDuration::from_millis(tick_ms);
        let run = MainRun::execute(cfg);
        let out_pps = run.analysis.counts.packets_in(Direction::Outbound) as f64
            / run.config.duration.as_secs_f64();
        let burst = peak_to_mean(&run.analysis.ms10_out.pps());
        // Blocks below one tick (tick_ms / 10 ms bins).
        let blocks = (tick_ms / 10).max(2);
        let h = run
            .analysis
            .variance_time
            .hurst(1, blocks)
            .map(|(h, _)| fmt_f64(h, 3))
            .unwrap_or_else(|| "-".into());
        let mean_out = run.analysis.sizes.mean(Direction::Outbound);
        t.row(vec![
            tick_ms.to_string(),
            fmt_f64(out_pps, 1),
            fmt_f64(burst, 2),
            h,
            fmt_f64(mean_out, 1),
        ]);
    }
    t
}

/// Fixed vs. heavy-tailed populations: the paper predicts a fixed player
/// population keeps aggregate traffic short-range dependent, while
/// heavy-tailed session/population dynamics (Henderson's results) push the
/// Hurst parameter up at coarse time scales.
pub fn ablate_population(seed: u64, minutes: u64) -> TextTable {
    let mut t = TextTable::new("Ablation: population dynamics").header(vec![
        "population",
        "mean players",
        "player std/min",
        "H (10s..30min)",
    ]);
    let variants: [(&str, f64, f64); 3] = [
        // (label, session sigma, arrival multiplier)
        ("fixed-ish (sigma 1.05)", 1.05, 1.0),
        ("heavy-tail (sigma 2.2)", 2.2, 1.0),
        ("sparse heavy-tail", 2.6, 0.35),
    ];
    for (label, sigma, arr_mult) in variants {
        let mut cfg = ScenarioConfig::new(seed, SimDuration::from_mins(minutes));
        cfg.workload.session_sigma = sigma;
        cfg.workload.arrival_rate *= arr_mult;
        cfg.workload.session_range.1 = SimDuration::from_hours(12);
        let run = MainRun::execute(cfg);
        let players: Vec<f64> = run
            .outcome
            .players_per_minute
            .iter()
            .map(|&p| f64::from(p))
            .collect();
        let mean = players.iter().sum::<f64>() / players.len().max(1) as f64;
        let var = players.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>()
            / players.len().max(1) as f64;
        let h = run
            .analysis
            .variance_time
            .hurst(1_000, 180_000)
            .map(|(h, _)| fmt_f64(h, 3))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            label.to_string(),
            fmt_f64(mean, 1),
            fmt_f64(var.sqrt(), 2),
            h,
        ]);
    }
    t
}

/// The narrowest-last-mile mechanism behind Figure 11: replace the access
/// link mix and watch the per-flow bandwidth histogram move. With the 2002
/// modem-heavy mix the mode pins at ~45 kbps; an all-broadband population
/// with the same game settings spreads higher — the ceiling is the game's
/// configured rates, not the wire.
pub fn ablate_link_mix(seed: u64, minutes: u64) -> TextTable {
    use csprov_net::LinkClass;
    let mut t = TextTable::new("Ablation: access-link mix vs per-flow bandwidth").header(vec![
        "link mix",
        "flows >30s",
        "mode (kbps)",
        "share <56k %",
        "share >56k %",
    ]);
    type Mix = (&'static str, Vec<(LinkClass, f64)>, f64);
    let mixes: [Mix; 3] = [
        (
            "2002 modem-heavy (default)",
            WorkloadConfig::default().link_mix,
            0.02,
        ),
        ("all 56k modem", vec![(LinkClass::Modem56k, 1.0)], 0.0),
        (
            "all broadband",
            vec![
                (LinkClass::Dsl, 0.5),
                (LinkClass::Cable, 0.3),
                (LinkClass::Lan, 0.2),
            ],
            0.10,
        ),
    ];
    for (label, mix, l337) in mixes {
        let mut cfg = ScenarioConfig::new(seed, SimDuration::from_mins(minutes));
        cfg.workload.link_mix = mix;
        cfg.workload.l337_fraction = l337;
        let run = MainRun::execute(cfg);
        let h = run
            .analysis
            .flows
            .bandwidth_histogram(SimDuration::from_secs(30), 150_000.0, 30);
        let total = h.total().max(1);
        let below: u64 = h
            .bins()
            .filter(|&(edge, _)| edge < 55_000.0)
            .map(|(_, c)| c)
            .sum();
        let mode = h.mode_bin().unwrap_or(0.0);
        t.row(vec![
            label.to_string(),
            total.to_string(),
            fmt_f64(mode / 1000.0, 0),
            fmt_f64(below as f64 / total as f64 * 100.0, 1),
            fmt_f64((total - below) as f64 / total as f64 * 100.0, 1),
        ]);
    }
    t
}

/// Loss vs. router lookup capacity: sweeps the engine's per-packet lookup
/// time through and past the SMC's rated band.
pub fn ablate_nat_capacity(seed: u64) -> TextTable {
    let mut t = TextTable::new("Ablation: NAT lookup capacity vs loss").header(vec![
        "capacity (pps)",
        "in loss %",
        "out loss %",
    ]);
    for lookup_us in [400u64, 550, 700, 900, 1100] {
        let engine = EngineConfig {
            lookup_time: SimDuration::from_micros(lookup_us),
            ..EngineConfig::default()
        };
        let run = run_nat_experiment(seed, engine.clone());
        let (li, lo) = run.loss_rates();
        t.row(vec![
            fmt_f64(engine.capacity_pps(), 0),
            fmt_f64(li * 100.0, 3),
            fmt_f64(lo * 100.0, 3),
        ]);
    }
    t
}

/// Buffering vs. delay: the paper argues buffers cannot save the device
/// because queueing the 50 ms spikes consumes "more than a quarter of the
/// maximum tolerable latency". Sweeping the WAN queue shows loss falling as
/// worst-case queueing delay blows through the interactivity budget.
pub fn ablate_nat_buffer(seed: u64) -> TextTable {
    let mut t = TextTable::new("Ablation: NAT buffering vs delay").header(vec![
        "wan queue (pkts)",
        "in loss %",
        "worst-case queue delay (ms)",
        "within 50ms budget?",
    ]);
    for wan in [4usize, 10, 20, 50, 150] {
        let engine = EngineConfig {
            wan_queue: wan,
            ..EngineConfig::default()
        };
        let run = run_nat_experiment(seed, engine.clone());
        let (li, _) = run.loss_rates();
        // Worst case: a full WAN queue plus a full LAN tick burst ahead.
        let delay_ms = (wan + engine.lan_queue) as f64 * engine.lookup_time.as_secs_f64() * 1000.0;
        t.row(vec![
            wan.to_string(),
            fmt_f64(li * 100.0, 3),
            fmt_f64(delay_ms, 1),
            if delay_ms <= 12.5 {
                "yes"
            } else {
                "no (>1/4 of budget)"
            }
            .to_string(),
        ]);
    }
    t
}

/// §IV-B: preferential route caching. Replays a synthetic mixed workload
/// (game flows + web-scan cross traffic) through every cache policy.
pub fn route_cache_experiment(seed: u64) -> TextTable {
    route_cache_experiment_journaled(seed, None)
}

/// [`route_cache_experiment`] with an optional trace journal receiving
/// sampled `router.cache.*` events (one in every 1024 accesses, plus all
/// evictions). Journaling is write-only: the table is identical either way.
pub fn route_cache_experiment_journaled(
    seed: u64,
    journal: Option<&csprov_obs::Journal>,
) -> TextTable {
    let mut table = RouteTable::new();
    table.insert(Ipv4Addr::new(0, 0, 0, 0), 0, NextHop(0));
    // A routing table with some depth so misses cost real work.
    for a in 1..=60u8 {
        table.insert(Ipv4Addr::new(a, 0, 0, 0), 8, NextHop(u32::from(a)));
        table.insert(Ipv4Addr::new(a, 10, 0, 0), 16, NextHop(1000 + u32::from(a)));
        table.insert(
            Ipv4Addr::new(a, 10, 20, 0),
            24,
            NextHop(2000 + u32::from(a)),
        );
    }

    // Workload: 20 game clients at 40 B dominating the packet count, plus
    // Zipf-popular bulk-transfer destinations (web popularity is Zipf; the
    // skew is what gives LRU a fighting chance at all).
    let stream = |n: u32, seed: u64| {
        let mut rng = RngStream::new(seed);
        let zipf = csprov_sim::dist::zipf_table(3000, 0.9);
        (0..n).map(move |i| {
            if i % 5 != 0 {
                let c = (rng.next_below(20) + 1) as u8;
                (Ipv4Addr::new(10, 10, 20, c), 40u32)
            } else {
                let x = zipf.sample(&mut rng) as u32;
                (
                    Ipv4Addr::new((1 + x % 60) as u8, (x / 60) as u8, 1, 1),
                    1200u32,
                )
            }
        })
    };

    let mut t = TextTable::new("Route caching policies on game + web mix (cache = 24 slots)")
        .header(vec!["policy", "hit rate %", "mean lookup cost", "speedup"]);
    for policy in CachePolicy::ALL {
        let r = csprov_router::simulate_cache_journaled(
            &table,
            policy,
            24,
            stream(200_000, seed),
            journal.map(|j| (j.clone(), 1024)),
        );
        t.row(vec![
            format!("{policy:?}"),
            fmt_f64(r.hit_rate * 100.0, 2),
            fmt_f64(r.mean_cost, 2),
            format!("{}x", fmt_f64(r.speedup, 2)),
        ]);
    }
    t
}

/// §IV-B: source models. Fits a renewal model to a simulated trace and
/// regenerates traffic, comparing the headline statistics.
pub fn source_model_experiment(seed: u64, minutes: u64) -> TextTable {
    let cfg = ScenarioConfig::new(seed, SimDuration::from_mins(minutes));
    let duration = cfg.duration;
    let fit = Rc::new(RefCell::new(Fitter {
        fit: SourceModelFit::new(),
        counts: CountingSink::new(),
    }));
    let outcome = csprov_game::World::run(cfg, fit.clone());
    let Fitter { fit, counts } = Rc::try_unwrap(fit).map_err(|_| ()).unwrap().into_inner();
    let mut model = fit.finish();

    let mut regen = CountingSink::new();
    let mut rng = RngStream::new(seed ^ 0xdead_beef);
    model.generate(duration, &mut rng, &mut regen);

    let secs = duration.as_secs_f64();
    let mut t = TextTable::new("Source model: original vs regenerated").header(vec![
        "metric",
        "original",
        "regenerated",
    ]);
    let stat = |c: &CountingSink, d: Direction| {
        (
            c.packets_in(d) as f64 / secs,
            c.app_bytes_in(d) as f64 / c.packets_in(d).max(1) as f64,
        )
    };
    for (label, dir) in [("in", Direction::Inbound), ("out", Direction::Outbound)] {
        let (pps_a, size_a) = stat(&counts, dir);
        let (pps_b, size_b) = stat(&regen, dir);
        t.row(vec![
            format!("pps {label}"),
            fmt_f64(pps_a, 1),
            fmt_f64(pps_b, 1),
        ]);
        t.row(vec![
            format!("mean size {label} (B)"),
            fmt_f64(size_a, 2),
            fmt_f64(size_b, 2),
        ]);
    }
    t.row(vec![
        "players (original run)".to_string(),
        fmt_f64(outcome.mean_players, 1),
        "-".to_string(),
    ]);
    t
}

struct Fitter {
    fit: SourceModelFit,
    counts: CountingSink,
}

impl TraceSink for Fitter {
    fn on_packet(&mut self, rec: &csprov_net::TraceRecord) {
        self.fit.on_packet(rec);
        self.counts.on_packet(rec);
    }
    fn on_end(&mut self, end: csprov_sim::SimTime) {
        self.fit.on_end(end);
        self.counts.on_end(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_ablation_shows_burst_scaling() {
        let t = ablate_tick(41, 3);
        assert_eq!(t.len(), 3);
        let s = t.render();
        assert!(s.contains("25") && s.contains("100"));
    }

    #[test]
    fn nat_capacity_sweep_is_monotone() {
        let t = ablate_nat_capacity(43);
        assert_eq!(t.len(), 5);
        // Render sanity; monotonicity asserted in integration tests where
        // the runs are longer.
        assert!(t.render().contains("capacity"));
    }

    #[test]
    fn buffer_sweep_renders() {
        let t = ablate_nat_buffer(44);
        assert_eq!(t.len(), 5);
        assert!(t.render().contains("budget"));
    }

    #[test]
    fn route_cache_experiment_prefers_small_packets() {
        let t = route_cache_experiment(45);
        assert_eq!(t.len(), 4);
        let s = t.render();
        assert!(s.contains("SmallPacketPreferential"));
    }

    #[test]
    fn source_model_roundtrip_renders() {
        let t = source_model_experiment(46, 4);
        assert!(t.len() >= 4);
        assert!(t.render().contains("regenerated"));
    }

    #[test]
    fn link_mix_ablation_shows_modem_peg() {
        let t = ablate_link_mix(48, 12);
        assert_eq!(t.len(), 3);
        let s = t.render();
        assert!(s.contains("all 56k modem"));
    }

    #[test]
    fn population_ablation_renders() {
        let t = ablate_population(47, 30);
        assert_eq!(t.len(), 3);
    }
}
