//! Every paper artifact (and ablation) as a typed, runnable experiment.
//!
//! The per-experiment index in `DESIGN.md` maps each id here to the paper
//! table/figure it regenerates; `csprov-bench`'s `repro` binary dispatches
//! on [`ExperimentId`].

pub mod ablations;
pub mod aggregate;
pub mod figures;
pub mod nat;
pub mod tables;
pub mod web;

use std::fmt;
use std::str::FromStr;

/// Identifier of a reproducible artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table I: general trace information.
    Table1,
    /// Table II: network usage.
    Table2,
    /// Table III: application information.
    Table3,
    /// Table IV: NAT experiment.
    Table4,
    /// Figures 1–13 of the main trace; `Fig(n)` with n in 1..=13.
    Fig(u8),
    /// Figure 14: NAT incoming packet load.
    Fig14,
    /// Figure 15: NAT outgoing packet load.
    Fig15,
    /// Ablation: server tick period.
    AblateTick,
    /// Ablation: population dynamics vs Hurst.
    AblatePopulation,
    /// Ablation: NAT capacity sweep.
    AblateNatCapacity,
    /// Ablation: NAT buffering vs delay.
    AblateNatBuffer,
    /// §IV-B route-cache policy comparison.
    RouteCache,
    /// §IV-B source-model fit/regenerate.
    SourceModel,
    /// §IV-A contrast: game vs bulk TCP through the same device.
    WebVsGame,
    /// Ablation: access-link mix vs the Figure 11 histogram.
    AblateLinkMix,
    /// §IV-B aggregation: fleet linearity and population-driven H.
    AggregateServers,
}

impl ExperimentId {
    /// Every artifact, in paper order.
    pub fn all() -> Vec<ExperimentId> {
        let mut v = vec![
            ExperimentId::Table1,
            ExperimentId::Table2,
            ExperimentId::Table3,
        ];
        v.extend((1..=13).map(ExperimentId::Fig));
        v.extend([
            ExperimentId::Table4,
            ExperimentId::Fig14,
            ExperimentId::Fig15,
            ExperimentId::AblateTick,
            ExperimentId::AblatePopulation,
            ExperimentId::AblateNatCapacity,
            ExperimentId::AblateNatBuffer,
            ExperimentId::RouteCache,
            ExperimentId::SourceModel,
            ExperimentId::WebVsGame,
            ExperimentId::AblateLinkMix,
            ExperimentId::AggregateServers,
        ]);
        v
    }

    /// True if this artifact is computed from the main trace run.
    pub fn needs_main_run(self) -> bool {
        matches!(
            self,
            ExperimentId::Table1
                | ExperimentId::Table2
                | ExperimentId::Table3
                | ExperimentId::Fig(_)
        )
    }

    /// True if this artifact is computed from the NAT experiment run.
    pub fn needs_nat_run(self) -> bool {
        matches!(
            self,
            ExperimentId::Table4 | ExperimentId::Fig14 | ExperimentId::Fig15
        )
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentId::Table1 => write!(f, "table1"),
            ExperimentId::Table2 => write!(f, "table2"),
            ExperimentId::Table3 => write!(f, "table3"),
            ExperimentId::Table4 => write!(f, "table4"),
            ExperimentId::Fig(n) => write!(f, "fig{n}"),
            ExperimentId::Fig14 => write!(f, "fig14"),
            ExperimentId::Fig15 => write!(f, "fig15"),
            ExperimentId::AblateTick => write!(f, "ablate-tick"),
            ExperimentId::AblatePopulation => write!(f, "ablate-population"),
            ExperimentId::AblateNatCapacity => write!(f, "ablate-nat-capacity"),
            ExperimentId::AblateNatBuffer => write!(f, "ablate-nat-buffer"),
            ExperimentId::RouteCache => write!(f, "route-cache"),
            ExperimentId::SourceModel => write!(f, "source-model"),
            ExperimentId::WebVsGame => write!(f, "web-vs-game"),
            ExperimentId::AblateLinkMix => write!(f, "ablate-link-mix"),
            ExperimentId::AggregateServers => write!(f, "aggregate-servers"),
        }
    }
}

impl FromStr for ExperimentId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "table1" => Ok(ExperimentId::Table1),
            "table2" => Ok(ExperimentId::Table2),
            "table3" => Ok(ExperimentId::Table3),
            "table4" => Ok(ExperimentId::Table4),
            "fig14" => Ok(ExperimentId::Fig14),
            "fig15" => Ok(ExperimentId::Fig15),
            "ablate-tick" => Ok(ExperimentId::AblateTick),
            "ablate-population" => Ok(ExperimentId::AblatePopulation),
            "ablate-nat-capacity" => Ok(ExperimentId::AblateNatCapacity),
            "ablate-nat-buffer" => Ok(ExperimentId::AblateNatBuffer),
            "route-cache" => Ok(ExperimentId::RouteCache),
            "source-model" => Ok(ExperimentId::SourceModel),
            "web-vs-game" => Ok(ExperimentId::WebVsGame),
            "ablate-link-mix" => Ok(ExperimentId::AblateLinkMix),
            "aggregate-servers" => Ok(ExperimentId::AggregateServers),
            other => {
                if let Some(n) = other.strip_prefix("fig") {
                    let n: u8 = n.parse().map_err(|_| format!("unknown artifact {other}"))?;
                    if (1..=13).contains(&n) {
                        return Ok(ExperimentId::Fig(n));
                    }
                }
                Err(format!("unknown artifact {other}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_strings() {
        for id in ExperimentId::all() {
            let s = id.to_string();
            assert_eq!(s.parse::<ExperimentId>().unwrap(), id, "{s}");
        }
    }

    #[test]
    fn all_covers_every_paper_artifact() {
        let all = ExperimentId::all();
        assert_eq!(all.len(), 3 + 13 + 3 + 9);
        assert!(all.contains(&ExperimentId::Fig(5)));
        assert!(all.contains(&ExperimentId::Table4));
    }

    #[test]
    fn unknown_ids_rejected() {
        assert!("fig0".parse::<ExperimentId>().is_err());
        assert!("fig16".parse::<ExperimentId>().is_err());
        assert!("nonsense".parse::<ExperimentId>().is_err());
    }

    #[test]
    fn run_classification() {
        assert!(ExperimentId::Fig(5).needs_main_run());
        assert!(!ExperimentId::Fig(5).needs_nat_run());
        assert!(ExperimentId::Fig14.needs_nat_run());
        assert!(!ExperimentId::RouteCache.needs_main_run());
    }
}
