//! Renderers for the paper's fifteen figures (ASCII charts + data access).

use crate::experiments::nat::NatRun;
use crate::pipeline::MainRun;
use csprov_analysis::plot::{bar_chart, line_chart};
use csprov_analysis::report::fmt_f64;
use csprov_analysis::{LineFit, VtPoint};
use csprov_net::Direction;
use csprov_sim::SimDuration;
use std::fmt::Write as _;

const CHART_W: usize = 72;
const CHART_H: usize = 12;

/// Figure 1: per-minute bandwidth of the server for the entire trace.
pub fn fig1(run: &MainRun) -> String {
    line_chart(
        "Figure 1: per-minute bandwidth (kbps)",
        &run.analysis.per_minute.kbps(),
        CHART_W,
        CHART_H,
    )
}

/// Figure 2: per-minute packet load for the entire trace.
pub fn fig2(run: &MainRun) -> String {
    line_chart(
        "Figure 2: per-minute packet load (pps)",
        &run.analysis.per_minute.pps(),
        CHART_W,
        CHART_H,
    )
}

/// Figure 3: per-minute number of players.
pub fn fig3(run: &MainRun) -> String {
    let players: Vec<f64> = run
        .outcome
        .players_per_minute
        .iter()
        .map(|&p| f64::from(p))
        .collect();
    let mut s = line_chart(
        "Figure 3: players seen per minute",
        &players,
        CHART_W,
        CHART_H,
    );
    let over = players.iter().filter(|&&p| p > 22.0).count();
    writeln!(
        s,
        "mean players {:.1}; minutes exceeding the 22-slot cap (churn): {over}",
        run.outcome.mean_players
    )
    .unwrap();
    s
}

/// Figure 4: per-minute incoming/outgoing bandwidth and packet load.
pub fn fig4(run: &MainRun) -> String {
    let a = &run.analysis;
    let mut s = String::new();
    s += &line_chart(
        "Figure 4a: incoming bandwidth (kbps)",
        &a.per_minute_in.kbps(),
        CHART_W,
        CHART_H,
    );
    s += &line_chart(
        "Figure 4b: outgoing bandwidth (kbps)",
        &a.per_minute_out.kbps(),
        CHART_W,
        CHART_H,
    );
    s += &line_chart(
        "Figure 4c: incoming packet load (pps)",
        &a.per_minute_in.pps(),
        CHART_W,
        CHART_H,
    );
    s += &line_chart(
        "Figure 4d: outgoing packet load (pps)",
        &a.per_minute_out.pps(),
        CHART_W,
        CHART_H,
    );
    s
}

/// The three regions the paper reads off Figure 5, in 10 ms blocks.
pub struct HurstSummary {
    /// All variance-time points.
    pub points: Vec<VtPoint>,
    /// H and fit for m < 50 ms.
    pub sub_tick: Option<(f64, LineFit)>,
    /// H and fit for 50 ms ≤ m ≤ 30 min.
    pub mid: Option<(f64, LineFit)>,
    /// H and fit for m > 30 min (needs a long trace).
    pub long: Option<(f64, LineFit)>,
}

/// Computes the Figure 5 variance-time summary.
pub fn fig5_data(run: &MainRun) -> HurstSummary {
    let vt = &run.analysis.variance_time;
    HurstSummary {
        points: vt.points(),
        sub_tick: vt.hurst(1, 5),
        mid: vt.hurst(5, 180_000),
        long: vt.hurst(180_000, u64::MAX),
    }
}

/// Figure 5: the variance-time plot and the Hurst estimates per region.
pub fn fig5(run: &MainRun) -> String {
    let h = fig5_data(run);
    let mut s = String::new();
    writeln!(s, "Figure 5: variance-time plot (base m = 10 ms)").unwrap();
    writeln!(
        s,
        "{:>12} {:>12} {:>16} {:>10}",
        "blocks", "interval", "log10(norm var)", "blocks#"
    )
    .unwrap();
    for p in &h.points {
        writeln!(
            s,
            "{:>12} {:>12} {:>16.4} {:>10}",
            p.block,
            p.interval.to_string(),
            p.log_variance(),
            p.blocks_seen
        )
        .unwrap();
    }
    let region = |name: &str, r: &Option<(f64, LineFit)>| -> String {
        match r {
            Some((h, fit)) => format!(
                "{name}: H = {} (slope {}, r^2 {})",
                fmt_f64(*h, 3),
                fmt_f64(fit.slope, 3),
                fmt_f64(fit.r_squared, 3)
            ),
            None => format!("{name}: (not enough data at this scale)"),
        }
    };
    writeln!(s, "{}", region("m < 50ms          ", &h.sub_tick)).unwrap();
    writeln!(s, "{}", region("50ms <= m <= 30min", &h.mid)).unwrap();
    writeln!(s, "{}", region("m > 30min         ", &h.long)).unwrap();
    // Cross-check with the classic rescaled-range estimator on the
    // per-minute count series (coarse scales).
    let per_min = run.analysis.per_minute.pps();
    match csprov_analysis::rs_hurst(&per_min, 8) {
        Some((h, fit)) => writeln!(
            s,
            "cross-check (R/S on per-minute counts): H = {} (r^2 {})",
            fmt_f64(h, 3),
            fmt_f64(fit.r_squared, 3)
        )
        .unwrap(),
        None => writeln!(s, "cross-check (R/S): trace too short").unwrap(),
    }
    writeln!(
        s,
        "paper: H < 1/2 below 50ms; high variability 50ms-30min; H ~= 1/2 beyond 30min"
    )
    .unwrap();
    s
}

/// Figure 6: total packet load, first 200 bins at m = 10 ms.
pub fn fig6(run: &MainRun) -> String {
    line_chart(
        "Figure 6: total packet load, m = 10 ms (first 200 intervals, pps)",
        &run.analysis.ms10_total.pps(),
        CHART_W,
        CHART_H,
    )
}

/// Figure 7: incoming and outgoing packet load at m = 10 ms.
pub fn fig7(run: &MainRun) -> String {
    let mut s = line_chart(
        "Figure 7a: incoming packet load, m = 10 ms (pps)",
        &run.analysis.ms10_in.pps(),
        CHART_W,
        CHART_H,
    );
    s += &line_chart(
        "Figure 7b: outgoing packet load, m = 10 ms (pps)",
        &run.analysis.ms10_out.pps(),
        CHART_W,
        CHART_H,
    );
    let burst = burstiness(&run.analysis.ms10_out.pps());
    let smooth = burstiness(&run.analysis.ms10_in.pps());
    writeln!(
        s,
        "peak-to-mean: outgoing {:.1}x, incoming {:.1}x (server tick bursts vs diverse client paths)",
        burst, smooth
    )
    .unwrap();
    let tick_bins = run.config.server.tick.as_millis() / 10;
    match csprov_analysis::dominant_period(&run.analysis.ms10_out.pps(), 40) {
        Some(p) => writeln!(
            s,
            "dominant outgoing period: {p} x 10 ms (server tick = {} x 10 ms)",
            tick_bins
        )
        .unwrap(),
        None => writeln!(s, "no dominant outgoing period detected").unwrap(),
    }
    s
}

fn burstiness(pps: &[f64]) -> f64 {
    let mean = pps.iter().sum::<f64>() / pps.len().max(1) as f64;
    let peak = pps.iter().cloned().fold(0.0, f64::max);
    if mean > 0.0 {
        peak / mean
    } else {
        0.0
    }
}

/// Figure 8: total packet load at m = 50 ms.
pub fn fig8(run: &MainRun) -> String {
    line_chart(
        "Figure 8: total packet load, m = 50 ms (first 200 intervals, pps)",
        &run.analysis.ms50_total.pps(),
        CHART_W,
        CHART_H,
    )
}

/// Figure 9: total packet load at m = 1 s (map-change dips every 1800 s).
pub fn fig9(run: &MainRun) -> String {
    let mut s = line_chart(
        "Figure 9: total packet load, m = 1 s (pps)",
        &run.analysis.sec1_total.pps(),
        CHART_W,
        CHART_H,
    );
    let dips = map_change_dips(run);
    writeln!(
        s,
        "map-change dips detected at (s): {:?} (every {} s by config)",
        dips,
        run.config.server.map_time.as_secs()
    )
    .unwrap();
    s
}

/// Seconds where the per-second load fell below 25% of the trace mean —
/// the Figure 9 map-change signature.
pub fn map_change_dips(run: &MainRun) -> Vec<usize> {
    let pps = run.analysis.sec1_total.pps();
    let mean = pps.iter().sum::<f64>() / pps.len().max(1) as f64;
    let mut dips = Vec::new();
    let mut in_dip = false;
    for (i, &v) in pps.iter().enumerate() {
        if v < mean * 0.25 {
            if !in_dip {
                dips.push(i);
                in_dip = true;
            }
        } else {
            in_dip = false;
        }
    }
    dips
}

/// Figure 10: total packet load at m = 30 min.
pub fn fig10(run: &MainRun) -> String {
    line_chart(
        "Figure 10: total packet load, m = 30 min (pps)",
        &run.analysis.min30_total.pps(),
        CHART_W,
        CHART_H,
    )
}

/// Figure 11: client bandwidth histogram (sessions longer than 30 s).
pub fn fig11(run: &MainRun) -> String {
    let h = run
        .analysis
        .flows
        .bandwidth_histogram(SimDuration::from_secs(30), 150_000.0, 30);
    let bars: Vec<(String, u64)> = h
        .bins()
        .map(|(edge, count)| (format!("{:>3.0}k", edge / 1000.0), count))
        .collect();
    let mut s = bar_chart(
        "Figure 11: client bandwidth histogram (bps, 5 kbps bins)",
        &bars,
        48,
    );
    let over56k: u64 = h
        .bins()
        .filter(|&(edge, _)| edge >= 56_000.0)
        .map(|(_, c)| c)
        .sum::<u64>()
        + h.overflow();
    writeln!(
        s,
        "flows above the 56k barrier: {over56k} of {} ('l337' players on fast links)",
        h.total()
    )
    .unwrap();
    s
}

/// Figure 12: packet-size PDFs (total, and inbound vs outbound).
pub fn fig12(run: &MainRun) -> String {
    let sizes = &run.analysis.sizes;
    let mut s = line_chart(
        "Figure 12a: packet size PDF, all packets (0..500 B)",
        &sizes.pdf_total(),
        CHART_W,
        CHART_H,
    );
    s += &line_chart(
        "Figure 12b-in: packet size PDF, inbound",
        &sizes.pdf(Direction::Inbound),
        CHART_W,
        CHART_H,
    );
    s += &line_chart(
        "Figure 12b-out: packet size PDF, outbound",
        &sizes.pdf(Direction::Outbound),
        CHART_W,
        CHART_H,
    );
    writeln!(
        s,
        "mean sizes: in {:.2} B (narrow), out {:.2} B (wide); paper: 39.72 / 129.51",
        sizes.mean(Direction::Inbound),
        sizes.mean(Direction::Outbound)
    )
    .unwrap();
    s
}

/// Figure 13: packet-size CDFs with the paper's headline quantiles.
pub fn fig13(run: &MainRun) -> String {
    let sizes = &run.analysis.sizes;
    let mut s = line_chart(
        "Figure 13: packet size CDFs (total)",
        &sizes.cdf_total(),
        CHART_W,
        CHART_H,
    );
    let in_under_60 = sizes.cdf(Direction::Inbound)[60];
    let out_under_300 = sizes.cdf(Direction::Outbound)[300];
    writeln!(
        s,
        "inbound P(size < 60 B) = {:.3} (paper: 'almost all'); outbound P(size < 300 B) = {:.3}",
        in_under_60, out_under_300
    )
    .unwrap();
    writeln!(
        s,
        "quantiles (B): in p50 {} p99 {}; out p50 {} p99 {}",
        sizes.quantile(Direction::Inbound, 0.5),
        sizes.quantile(Direction::Inbound, 0.99),
        sizes.quantile(Direction::Outbound, 0.5),
        sizes.quantile(Direction::Outbound, 0.99),
    )
    .unwrap();
    s
}

/// Figure 14: per-second incoming packet load around the NAT.
pub fn fig14(run: &NatRun) -> String {
    let mut s = line_chart(
        "Figure 14a: packet load, clients -> NAT (pps)",
        &run.clients_to_nat.pps(),
        CHART_W,
        CHART_H,
    );
    s += &line_chart(
        "Figure 14b: packet load, NAT -> server (pps)",
        &run.nat_to_server.pps(),
        CHART_W,
        CHART_H,
    );
    let (in_loss, _) = run.loss_rates();
    writeln!(
        s,
        "incoming loss through device: {:.3}% (paper 1.3%)",
        in_loss * 100.0
    )
    .unwrap();
    s
}

/// Figure 15: per-second outgoing packet load around the NAT.
pub fn fig15(run: &NatRun) -> String {
    let mut s = line_chart(
        "Figure 15a: packet load, server -> NAT (pps)",
        &run.server_to_nat.pps(),
        CHART_W,
        CHART_H,
    );
    s += &line_chart(
        "Figure 15b: packet load, NAT -> clients (pps)",
        &run.nat_to_clients.pps(),
        CHART_W,
        CHART_H,
    );
    let (_, out_loss) = run.loss_rates();
    writeln!(
        s,
        "outgoing loss through device: {:.3}% (paper 0.046%)",
        out_loss * 100.0
    )
    .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_game::ScenarioConfig;

    fn run() -> MainRun {
        MainRun::execute(ScenarioConfig::new(31, SimDuration::from_mins(10)))
    }

    #[test]
    fn all_main_figures_render() {
        let r = run();
        for (i, s) in [
            fig1(&r),
            fig2(&r),
            fig3(&r),
            fig4(&r),
            fig5(&r),
            fig6(&r),
            fig7(&r),
            fig8(&r),
            fig9(&r),
            fig10(&r),
            fig11(&r),
            fig12(&r),
            fig13(&r),
        ]
        .iter()
        .enumerate()
        {
            assert!(s.contains("Figure"), "figure {} must be labelled", i + 1);
            assert!(s.len() > 100, "figure {} suspiciously small", i + 1);
        }
    }

    #[test]
    fn fig7_outgoing_burstier_than_incoming() {
        let r = run();
        let out_burst = burstiness(&r.analysis.ms10_out.pps());
        let in_burst = burstiness(&r.analysis.ms10_in.pps());
        assert!(
            out_burst > in_burst * 1.5,
            "tick bursts: out {out_burst} vs in {in_burst}"
        );
    }

    #[test]
    fn fig5_regions_match_paper_shape() {
        // 10 minutes gives enough 10 ms bins for the first two regions.
        let r = run();
        let h = fig5_data(&r);
        let (h_sub, _) = h.sub_tick.expect("sub-tick region");
        assert!(
            h_sub < 0.5,
            "aggressive smoothing below the tick: H = {h_sub}"
        );
        let (h_mid, _) = h.mid.expect("mid region");
        assert!(h_mid > h_sub, "mid region retains more variability");
    }

    #[test]
    fn fig9_dips_align_with_map_time() {
        // Need > 30 min to see a dip.
        let r = MainRun::execute(ScenarioConfig::new(33, SimDuration::from_mins(65)));
        let dips = map_change_dips(&r);
        assert!(
            dips.iter().any(|&d| (1795..1830).contains(&d)),
            "expected a dip near 1800 s, got {dips:?}"
        );
        assert!(
            dips.iter().any(|&d| (3595..3630).contains(&d)),
            "expected a dip near 3600 s, got {dips:?}"
        );
    }

    #[test]
    fn fig11_mode_at_modem_rates() {
        let r = MainRun::execute(ScenarioConfig::new(35, SimDuration::from_mins(20)));
        let h = r
            .analysis
            .flows
            .bandwidth_histogram(SimDuration::from_secs(30), 150_000.0, 30);
        let mode = h.mode_bin().expect("flows recorded");
        assert!(
            (20_000.0..60_000.0).contains(&mode),
            "mode bin {mode} should sit at modem rates"
        );
    }
}
