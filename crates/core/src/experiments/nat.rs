//! The Section IV NAT experiment: one 30-minute map traced at the four
//! measurement points around a commodity NAT device (Table IV,
//! Figures 14 and 15).

use crate::chaos::{self, ChaosReport, ChaosSpec};
use csprov_analysis::RateSeries;
use csprov_game::{Middlebox, ScenarioConfig, TraceOutcome, World, WorldInstruments};
use csprov_net::{Direction, NullSink, TraceSink};
use csprov_obs::MetricsRegistry;
use csprov_router::{EngineConfig, EngineStats, NatDevice, NatTaps, RouterMetrics};
use csprov_sim::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

/// Results of the NAT experiment.
pub struct NatRun {
    /// Per-second packet load, clients → NAT (Figure 14a).
    pub clients_to_nat: RateSeries,
    /// Per-second packet load, NAT → server (Figure 14b).
    pub nat_to_server: RateSeries,
    /// Per-second packet load, server → NAT (Figure 15a).
    pub server_to_nat: RateSeries,
    /// Per-second packet load, NAT → clients (Figure 15b).
    pub nat_to_clients: RateSeries,
    /// Engine counters (Table IV).
    pub stats: EngineStats,
    /// World outcome (player counts etc.).
    pub outcome: TraceOutcome,
    /// The engine configuration used.
    pub engine: EngineConfig,
}

impl NatRun {
    /// Table IV's loss rates: `(incoming, outgoing)`, as fractions.
    pub fn loss_rates(&self) -> (f64, f64) {
        (
            self.stats.loss_rate(Direction::Inbound),
            self.stats.loss_rate(Direction::Outbound),
        )
    }
}

/// Runs the NAT experiment: a busy server behind the device for one
/// 30-minute map (plus a 5-minute warm-up, matching the paper's "after a
/// brief warm-up period").
pub fn run_nat_experiment(seed: u64, engine: EngineConfig) -> NatRun {
    run_nat_experiment_instrumented(seed, engine, WorldInstruments::default(), None)
}

/// [`run_nat_experiment`] with observability attached: world/sim
/// instruments ride along, the NAT device reports `router.*` metrics, and
/// the four measurement-point taps export their accepted totals as
/// `pipeline.records.*` counters.
pub fn run_nat_experiment_instrumented(
    seed: u64,
    engine: EngineConfig,
    instruments: WorldInstruments,
    registry: Option<&MetricsRegistry>,
) -> NatRun {
    // One 30-minute map, exactly the paper's window. The warm-up happened
    // before the trace: the scenario starts with the player count the
    // paper's Table IV packet totals imply (853k inbound packets over
    // 1800 s ≈ 474 pps ≈ 19 players' command streams).
    let cfg = paper_nat_config(seed); // churn holds occupancy near 19

    let second = SimDuration::from_secs(1);
    let mk = || Rc::new(RefCell::new(RateSeries::new(second)));
    let (a, b, c, d) = (mk(), mk(), mk(), mk());
    let taps = NatTaps {
        clients_to_nat: Some(a.clone()),
        nat_to_server: Some(b.clone()),
        server_to_nat: Some(c.clone()),
        nat_to_clients: Some(d.clone()),
    };
    let device = Rc::new(NatDevice::new(engine.clone(), taps));
    if let Some(registry) = registry {
        device.attach_metrics(RouterMetrics::register(registry));
    }
    if let Some(journal) = &instruments.journal {
        device.attach_journal(journal.clone());
    }
    let sink = Rc::new(RefCell::new(NullSink));
    let duration = cfg.duration;
    let outcome = World::run_instrumented(cfg, sink, Some(device.clone()), instruments);
    // Close the tap series so their final partial bins are flushed.
    for tap in [&a, &b, &c, &d] {
        tap.borrow_mut()
            .on_end(csprov_sim::SimTime::ZERO + duration);
    }
    if let Some(registry) = registry {
        let total = |s: &Rc<RefCell<RateSeries>>| -> u64 {
            s.borrow().bins().iter().map(|b| b.packets).sum()
        };
        for (name, tap) in [
            ("pipeline.records.clients_to_nat", &a),
            ("pipeline.records.nat_to_server", &b),
            ("pipeline.records.server_to_nat", &c),
            ("pipeline.records.nat_to_clients", &d),
        ] {
            registry.counter(name).add(total(tap));
        }
    }

    let unwrap = |s: Rc<RefCell<RateSeries>>| {
        Rc::try_unwrap(s)
            .map_err(|_| ())
            .expect("taps released after run")
            .into_inner()
    };
    let stats = device.stats();
    drop(device);
    NatRun {
        clients_to_nat: unwrap(a),
        nat_to_server: unwrap(b),
        server_to_nat: unwrap(c),
        nat_to_clients: unwrap(d),
        stats,
        outcome,
        engine,
    }
}

/// The paper's NAT scenario: 30 minutes, 19 players held by churn.
fn paper_nat_config(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, SimDuration::from_mins(30));
    cfg.initial_players = 19;
    cfg.workload.arrival_rate = 0.035;
    cfg
}

/// [`run_nat_experiment`] under a chaos profile: the NAT device (built with
/// the spec's table override when one is present) sits inside an
/// [`csprov_router::ImpairedPath`], so link impairments compose with the
/// device's own queueing loss and table pressure.
pub fn run_nat_experiment_chaos(
    seed: u64,
    engine: EngineConfig,
    spec: &ChaosSpec,
    chaos_seed: u64,
    instruments: WorldInstruments,
    registry: Option<&MetricsRegistry>,
) -> (NatRun, ChaosReport) {
    run_nat_campaign(
        paper_nat_config(seed),
        engine,
        spec,
        chaos_seed,
        instruments,
        registry,
    )
}

/// [`run_nat_experiment_chaos`] with an explicit scenario — the campaign
/// core, also used by shorter test horizons.
pub fn run_nat_campaign(
    cfg: ScenarioConfig,
    engine: EngineConfig,
    spec: &ChaosSpec,
    chaos_seed: u64,
    instruments: WorldInstruments,
    registry: Option<&MetricsRegistry>,
) -> (NatRun, ChaosReport) {
    let second = SimDuration::from_secs(1);
    let mk = || Rc::new(RefCell::new(RateSeries::new(second)));
    let (a, b, c, d) = (mk(), mk(), mk(), mk());
    let taps = NatTaps {
        clients_to_nat: Some(a.clone()),
        nat_to_server: Some(b.clone()),
        server_to_nat: Some(c.clone()),
        nat_to_clients: Some(d.clone()),
    };
    let device = Rc::new(match spec.nat_table {
        Some(table) => NatDevice::with_table(engine.clone(), table, taps),
        None => NatDevice::new(engine.clone(), taps),
    });
    if let Some(registry) = registry {
        device.attach_metrics(RouterMetrics::register(registry));
    }
    if let Some(journal) = &instruments.journal {
        device.attach_journal(journal.clone());
    }
    let path = chaos::build_path_around(
        spec,
        chaos_seed,
        Some(device.clone() as Rc<dyn Middlebox>),
        registry,
    );
    if let Some(journal) = &instruments.journal {
        path.attach_journal(journal.clone());
    }
    let sink = Rc::new(RefCell::new(NullSink));
    let duration = cfg.duration;
    let outcome = World::run_instrumented(cfg, sink, Some(path.clone()), instruments);
    for tap in [&a, &b, &c, &d] {
        tap.borrow_mut()
            .on_end(csprov_sim::SimTime::ZERO + duration);
    }

    let stats = device.stats();
    let report = ChaosReport {
        profile: spec.name.to_string(),
        chaos_seed,
        stats: path.stats(),
        nat: Some(device.nat_stats()),
    };
    // The impaired path owns the device edge; drop both before the taps
    // can be unwrapped.
    drop(path);
    drop(device);
    let unwrap = |s: Rc<RefCell<RateSeries>>| {
        Rc::try_unwrap(s)
            .map_err(|_| ())
            .expect("taps released after run")
            .into_inner()
    };
    let run = NatRun {
        clients_to_nat: unwrap(a),
        nat_to_server: unwrap(b),
        server_to_nat: unwrap(c),
        nat_to_clients: unwrap(d),
        stats,
        outcome,
        engine,
    };
    (run, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_run() -> NatRun {
        // A shorter horizon keeps the test fast; loss emerges within
        // minutes once the server is busy.
        let mut cfg = ScenarioConfig::new(11, SimDuration::from_mins(8));
        cfg.workload.arrival_rate = 0.2;
        let second = SimDuration::from_secs(1);
        let mk = || Rc::new(RefCell::new(RateSeries::new(second)));
        let (a, b, c, d) = (mk(), mk(), mk(), mk());
        let device = Rc::new(NatDevice::new(
            EngineConfig::default(),
            NatTaps {
                clients_to_nat: Some(a.clone()),
                nat_to_server: Some(b.clone()),
                server_to_nat: Some(c.clone()),
                nat_to_clients: Some(d.clone()),
            },
        ));
        let duration = cfg.duration;
        let outcome =
            World::run_with_middlebox(cfg, Rc::new(RefCell::new(NullSink)), Some(device.clone()));
        for tap in [&a, &b, &c, &d] {
            tap.borrow_mut()
                .on_end(csprov_sim::SimTime::ZERO + duration);
        }
        let unwrap =
            |s: Rc<RefCell<RateSeries>>| Rc::try_unwrap(s).map_err(|_| ()).unwrap().into_inner();
        let stats = device.stats();
        drop(device);
        NatRun {
            clients_to_nat: unwrap(a),
            nat_to_server: unwrap(b),
            server_to_nat: unwrap(c),
            nat_to_clients: unwrap(d),
            stats,
            outcome,
            engine: EngineConfig::default(),
        }
    }

    #[test]
    fn loss_asymmetry_matches_paper() {
        let run = quick_run();
        let (in_loss, out_loss) = run.loss_rates();
        // Table IV: 1.3% in, 0.046% out. The shape: inbound loss is real
        // (order 1%) and far exceeds outbound.
        assert!(
            (0.002..0.05).contains(&in_loss),
            "inbound loss {in_loss} out of band"
        );
        assert!(
            out_loss < in_loss / 5.0,
            "outbound {out_loss} vs inbound {in_loss}"
        );
    }

    #[test]
    fn taps_are_conservation_consistent() {
        let run = quick_run();
        // Packets after the NAT = packets before − drops − those still in
        // the device when the horizon cut the run (at most a queue's worth).
        let pre_in: u64 = run.clients_to_nat.bins().iter().map(|b| b.packets).sum();
        let post_in: u64 = run.nat_to_server.bins().iter().map(|b| b.packets).sum();
        let in_flight_in = pre_in - run.stats.dropped[0].get() - post_in;
        assert!(
            (in_flight_in as usize) <= run.engine.wan_queue + 1,
            "inbound imbalance {in_flight_in}"
        );
        let pre_out: u64 = run.server_to_nat.bins().iter().map(|b| b.packets).sum();
        let post_out: u64 = run.nat_to_clients.bins().iter().map(|b| b.packets).sum();
        let in_flight_out = pre_out - run.stats.dropped[1].get() - post_out;
        assert!(
            (in_flight_out as usize) <= run.engine.lan_queue + 1,
            "outbound imbalance {in_flight_out}"
        );
        assert!(pre_in > 0 && pre_out > 0);
    }

    #[test]
    fn nat_exhaust_campaign_refuses_and_recovers() {
        let spec = chaos::by_name("nat-exhaust").expect("built-in profile");
        let mut cfg = ScenarioConfig::new(11, SimDuration::from_mins(8));
        cfg.initial_players = 19;
        cfg.workload.arrival_rate = 0.2;
        let (run, report) = run_nat_campaign(
            cfg,
            EngineConfig::default(),
            &spec,
            11,
            WorldInstruments::default(),
            None,
        );
        let nat = report.nat.as_ref().expect("NAT campaign reports NAT stats");
        // 19 players on a 16-entry table: mappings are refused while the
        // table is hot, and new sessions only map via idle reclamation.
        assert!(nat.table_drops_total() > 0, "table pressure must refuse");
        assert!(
            nat.table_drops[0].get() >= nat.table_drops[1].get(),
            "refusals hit unmapped inbound flows first"
        );
        // The zero-impairment link layer passes everything it sees.
        assert!(report.stats.conservation_holds());
        assert_eq!(report.stats.offered.get(), report.stats.passed.get());
        assert!(run.stats.offered[0].get() > 0);
    }

    #[test]
    fn inbound_offered_exceeds_outbound() {
        // The paper's Table IV: more packets from clients than from server.
        let run = quick_run();
        assert!(run.stats.offered[0].get() > run.stats.offered[1].get());
    }
}
