//! The single-pass analysis pipeline.
//!
//! One simulation run feeds every analyzer the paper's figures and tables
//! need; [`FullAnalysis`] is the composite [`TraceSink`] wired to the
//! server tap. Everything is streaming, so the full-week 5×10⁸-packet run
//! stays within a few hundred MB (dominated by the explicitly-bounded
//! stored series).

use csprov_analysis::{FlowTable, RateSeries, SizeHistogram, VarianceTime};
use csprov_game::{Middlebox, ScenarioConfig, TraceOutcome, World, WorldInstruments};
use csprov_net::{CountingSink, Direction, PacketBatch, TraceRecord, TraceSink};
use csprov_obs::{MetricsRegistry, Profile};
use csprov_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Number of bins Figures 6–8 display.
pub const SHORT_SERIES_BINS: usize = 200;
/// Warm-up skipped before the Figures 6–8 windows (in seconds).
pub const SHORT_SERIES_SKIP_SECS: u64 = 60;
/// Number of 1 s bins Figure 9 displays.
pub const FIG9_BINS: usize = 18_000;

/// Every streaming analyzer the paper's artifacts need, in one sink.
pub struct FullAnalysis {
    /// Packet/byte totals (Tables II, III).
    pub counts: CountingSink,
    /// Per-minute totals (Figures 1, 2).
    pub per_minute: RateSeries,
    /// Per-minute inbound (Figure 4 a/c).
    pub per_minute_in: RateSeries,
    /// Per-minute outbound (Figure 4 b/d).
    pub per_minute_out: RateSeries,
    /// First 200 bins at 10 ms, total (Figure 6).
    pub ms10_total: RateSeries,
    /// First 200 bins at 10 ms, inbound (Figure 7a).
    pub ms10_in: RateSeries,
    /// First 200 bins at 10 ms, outbound (Figure 7b).
    pub ms10_out: RateSeries,
    /// First 200 bins at 50 ms (Figure 8).
    pub ms50_total: RateSeries,
    /// First 18,000 bins at 1 s (Figure 9).
    pub sec1_total: RateSeries,
    /// 30-minute bins, first 200 (Figure 10).
    pub min30_total: RateSeries,
    /// Variance-time accumulators, m = 10 ms base (Figure 5).
    pub variance_time: VarianceTime,
    /// Packet-size distributions (Figures 12, 13, Table III cross-check).
    pub sizes: SizeHistogram,
    /// Per-flow accounting (Figure 11).
    pub flows: FlowTable,
    /// Reusable column scratch the burst is transposed into; cleared (not
    /// reallocated) every `on_batch`.
    batch: PacketBatch,
    /// When set, `on_batch` forwards record slices to every analyzer's
    /// per-record path instead of transposing to columns. Both paths must
    /// leave byte-identical analyzer state; the toggle exists so tests and
    /// the repro CLI can prove it.
    per_record: bool,
}

/// Environment variable selecting the ingest delivery path; the value
/// `per-record` disables the columnar fast path (any other value, or unset,
/// selects columnar).
pub const INGEST_PATH_ENV: &str = "CSPROV_INGEST_PATH";

impl FullAnalysis {
    /// Creates the composite for a trace of the given expected duration.
    /// The ingest path honors [`INGEST_PATH_ENV`].
    pub fn new(duration: SimDuration) -> Self {
        let per_record = std::env::var(INGEST_PATH_ENV).is_ok_and(|v| v == "per-record");
        Self::with_ingest(duration, per_record)
    }

    /// [`FullAnalysis::new`] with the ingest path chosen explicitly instead
    /// of from the environment.
    pub fn with_ingest(duration: SimDuration, per_record: bool) -> Self {
        let minute = SimDuration::from_secs(60);
        let ms10 = SimDuration::from_millis(10);
        // Block ladder up to 1/8 of the trace (beyond that too few blocks
        // contribute a meaningful variance).
        let max_block = (duration.as_nanos() / ms10.as_nanos() / 8).max(10);
        FullAnalysis {
            counts: CountingSink::new(),
            per_minute: RateSeries::new(minute),
            per_minute_in: RateSeries::with_options(minute, Some(Direction::Inbound), None),
            per_minute_out: RateSeries::with_options(minute, Some(Direction::Outbound), None),
            ms10_total: RateSeries::with_window(
                ms10,
                None,
                SHORT_SERIES_SKIP_SECS * 100,
                Some(SHORT_SERIES_BINS),
            ),
            ms10_in: RateSeries::with_window(
                ms10,
                Some(Direction::Inbound),
                SHORT_SERIES_SKIP_SECS * 100,
                Some(SHORT_SERIES_BINS),
            ),
            ms10_out: RateSeries::with_window(
                ms10,
                Some(Direction::Outbound),
                SHORT_SERIES_SKIP_SECS * 100,
                Some(SHORT_SERIES_BINS),
            ),
            ms50_total: RateSeries::with_window(
                SimDuration::from_millis(50),
                None,
                SHORT_SERIES_SKIP_SECS * 20,
                Some(SHORT_SERIES_BINS),
            ),
            sec1_total: RateSeries::with_options(SimDuration::from_secs(1), None, Some(FIG9_BINS)),
            min30_total: RateSeries::with_options(
                SimDuration::from_mins(30),
                None,
                Some(SHORT_SERIES_BINS),
            ),
            variance_time: VarianceTime::new(ms10, max_block, 8),
            sizes: SizeHistogram::new(500),
            flows: FlowTable::new(),
            batch: PacketBatch::new(),
            per_record,
        }
    }

    /// Exports per-analyzer ingestion totals as `pipeline.records.*`
    /// counters (plus `pipeline.flows.tracked`).
    ///
    /// Runs once after the trace finishes, off the packet hot path, and
    /// reads only each analyzer's own accepted totals — so the numbers are
    /// exact and the export can never perturb the analysis itself.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        let series_total = |s: &RateSeries| -> u64 { s.bins().iter().map(|b| b.packets).sum() };
        registry
            .counter("pipeline.records.counts")
            .add(self.counts.total_packets());
        registry
            .counter("pipeline.records.per_minute")
            .add(series_total(&self.per_minute));
        registry
            .counter("pipeline.records.per_minute_in")
            .add(series_total(&self.per_minute_in));
        registry
            .counter("pipeline.records.per_minute_out")
            .add(series_total(&self.per_minute_out));
        registry
            .counter("pipeline.records.ms10_total")
            .add(series_total(&self.ms10_total));
        registry
            .counter("pipeline.records.ms10_in")
            .add(series_total(&self.ms10_in));
        registry
            .counter("pipeline.records.ms10_out")
            .add(series_total(&self.ms10_out));
        registry
            .counter("pipeline.records.ms50_total")
            .add(series_total(&self.ms50_total));
        registry
            .counter("pipeline.records.sec1_total")
            .add(series_total(&self.sec1_total));
        registry
            .counter("pipeline.records.min30_total")
            .add(series_total(&self.min30_total));
        registry
            .counter("pipeline.records.variance_time")
            .add(self.variance_time.bins_seen());
        registry
            .counter("pipeline.records.sizes")
            .add(self.sizes.grand_total());
        registry
            .gauge("pipeline.flows.tracked")
            .set(self.flows.len() as i64);
    }
}

impl FullAnalysis {
    /// Columnar delivery of a batch whose rows all share timestamp `t`: the
    /// per-direction lane totals feed each series once. Only the flow table
    /// and size histogram still need the per-row columns.
    fn on_uniform_burst(&mut self, t: SimTime, batch: &PacketBatch) {
        let mut packets = [0u64; 2];
        let mut app = [0u64; 2];
        for (tag, len) in batch.tags().iter().zip(batch.app_lens()) {
            let d = usize::from(tag >> 7);
            packets[d] += 1;
            app[d] += u64::from(*len);
        }
        let overhead = u64::from(csprov_net::WIRE_OVERHEAD_BYTES);
        let wire = [
            app[0] + packets[0] * overhead,
            app[1] + packets[1] * overhead,
        ];
        let total_packets = packets[0] + packets[1];
        let total_wire = wire[0] + wire[1];
        self.counts.add_counts(packets, app);
        self.per_minute.add_run(t, total_packets, total_wire);
        self.per_minute_in.add_run(t, packets[0], wire[0]);
        self.per_minute_out.add_run(t, packets[1], wire[1]);
        self.ms10_total.add_run(t, total_packets, total_wire);
        self.ms10_in.add_run(t, packets[0], wire[0]);
        self.ms10_out.add_run(t, packets[1], wire[1]);
        self.ms50_total.add_run(t, total_packets, total_wire);
        self.sec1_total.add_run(t, total_packets, total_wire);
        self.min30_total.add_run(t, total_packets, total_wire);
        self.variance_time.add_run(t, total_packets);
        self.sizes.on_columns(batch);
        self.flows.on_columns(batch);
    }
}

impl TraceSink for FullAnalysis {
    fn on_packet(&mut self, rec: &TraceRecord) {
        self.counts.on_packet(rec);
        self.per_minute.on_packet(rec);
        self.per_minute_in.on_packet(rec);
        self.per_minute_out.on_packet(rec);
        self.ms10_total.on_packet(rec);
        self.ms10_in.on_packet(rec);
        self.ms10_out.on_packet(rec);
        self.ms50_total.on_packet(rec);
        self.sec1_total.on_packet(rec);
        self.min30_total.on_packet(rec);
        self.variance_time.on_packet(rec);
        self.sizes.on_packet(rec);
        self.flows.on_packet(rec);
    }

    fn on_batch(&mut self, recs: &[TraceRecord]) {
        if self.per_record {
            self.counts.on_batch(recs);
            self.per_minute.on_batch(recs);
            self.per_minute_in.on_batch(recs);
            self.per_minute_out.on_batch(recs);
            self.ms10_total.on_batch(recs);
            self.ms10_in.on_batch(recs);
            self.ms10_out.on_batch(recs);
            self.ms50_total.on_batch(recs);
            self.sec1_total.on_batch(recs);
            self.min30_total.on_batch(recs);
            self.variance_time.on_batch(recs);
            self.sizes.on_batch(recs);
            self.flows.on_batch(recs);
            return;
        }
        // Transpose once into the reusable scratch, then fan the columns out
        // to every analyzer. Taking the batch out of `self` lets the columnar
        // delivery borrow `self` mutably; only the Vec headers move.
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        batch.extend_from_records(recs);
        self.on_columns(&batch);
        self.batch = batch;
    }

    fn on_columns(&mut self, batch: &PacketBatch) {
        // A server tick burst shares a single timestamp. When the whole
        // batch does, one pass over the tag and size columns produces
        // per-direction lane totals, and every bin series folds its lane in
        // with a single `add_run` — instead of ten separate column scans.
        // Bin contents are integer sums and a zero-lane run touches nothing
        // (like a run of filtered-out records), so state stays byte-identical
        // to the general path.
        let times = batch.times_ns();
        if let (Some(&first), Some(&last)) = (times.first(), times.last()) {
            if first == last {
                self.on_uniform_burst(SimTime::from_nanos(first), batch);
                return;
            }
        }
        self.counts.on_columns(batch);
        self.per_minute.on_columns(batch);
        self.per_minute_in.on_columns(batch);
        self.per_minute_out.on_columns(batch);
        self.ms10_total.on_columns(batch);
        self.ms10_in.on_columns(batch);
        self.ms10_out.on_columns(batch);
        self.ms50_total.on_columns(batch);
        self.sec1_total.on_columns(batch);
        self.min30_total.on_columns(batch);
        self.variance_time.on_columns(batch);
        self.sizes.on_columns(batch);
        self.flows.on_columns(batch);
    }

    fn on_end(&mut self, end: SimTime) {
        self.counts.on_end(end);
        self.per_minute.on_end(end);
        self.per_minute_in.on_end(end);
        self.per_minute_out.on_end(end);
        self.ms10_total.on_end(end);
        self.ms10_in.on_end(end);
        self.ms10_out.on_end(end);
        self.ms50_total.on_end(end);
        self.sec1_total.on_end(end);
        self.min30_total.on_end(end);
        self.variance_time.on_end(end);
        self.sizes.on_end(end);
        self.flows.on_end(end);
    }
}

/// Observe-only tap shim that frames every sink delivery in a wall-time
/// profiler before forwarding to the wrapped analysis. It exists only for
/// the duration of the run, so [`FullAnalysis`] (and [`MainRun`]) stay
/// `Send` even though [`Profile`] is thread-local.
struct ProfiledTap {
    inner: Rc<RefCell<FullAnalysis>>,
    profile: Profile,
}

impl TraceSink for ProfiledTap {
    fn on_packet(&mut self, rec: &TraceRecord) {
        self.inner.borrow_mut().on_packet(rec);
    }

    fn on_batch(&mut self, recs: &[TraceRecord]) {
        let mut scope = self.profile.enter("pipeline.ingest");
        scope.add_items(recs.len() as u64);
        self.inner.borrow_mut().on_batch(recs);
    }

    fn on_columns(&mut self, batch: &PacketBatch) {
        let mut scope = self.profile.enter("pipeline.ingest");
        scope.add_items(batch.len() as u64);
        self.inner.borrow_mut().on_columns(batch);
    }

    fn on_end(&mut self, end: SimTime) {
        let _scope = self.profile.enter("pipeline.fold");
        self.inner.borrow_mut().on_end(end);
    }
}

/// A finished main-trace run: the analyzers plus the world outcome.
pub struct MainRun {
    /// The scenario that produced it.
    pub config: ScenarioConfig,
    /// All analyzer state after the run.
    pub analysis: FullAnalysis,
    /// Session log, player series and counters from the world.
    pub outcome: TraceOutcome,
}

impl MainRun {
    /// Runs the scenario and collects the full analysis.
    pub fn execute(config: ScenarioConfig) -> MainRun {
        Self::execute_instrumented(config, WorldInstruments::default(), None)
    }

    /// [`MainRun::execute`] with observability attached: world/sim
    /// instruments ride along, and if a registry is given the pipeline's
    /// per-analyzer ingestion totals are exported into it after the run.
    pub fn execute_instrumented(
        config: ScenarioConfig,
        instruments: WorldInstruments,
        registry: Option<&MetricsRegistry>,
    ) -> MainRun {
        Self::execute_with_middlebox(config, None, instruments, registry)
    }

    /// [`MainRun::execute_instrumented`] with a middlebox installed on the
    /// server's uplink — the hook chaos campaigns use to impair traffic
    /// before it reaches the tap. `None` is exactly
    /// [`MainRun::execute_instrumented`].
    pub fn execute_with_middlebox(
        config: ScenarioConfig,
        middlebox: Option<Rc<dyn Middlebox>>,
        instruments: WorldInstruments,
        registry: Option<&MetricsRegistry>,
    ) -> MainRun {
        let analysis = Rc::new(RefCell::new(FullAnalysis::new(config.duration)));
        let sink: Rc<RefCell<dyn TraceSink>> = match instruments.profile.clone() {
            Some(profile) => Rc::new(RefCell::new(ProfiledTap {
                inner: analysis.clone(),
                profile,
            })),
            None => analysis.clone(),
        };
        let outcome = World::run_instrumented(config.clone(), sink, middlebox, instruments);
        let analysis = match Rc::try_unwrap(analysis) {
            Ok(cell) => cell.into_inner(),
            // The world releases its sink handle when the run returns, so
            // this arm is unreachable; swapping an empty analysis into the
            // shared cell keeps the path panic-free regardless.
            Err(shared) => shared.replace(FullAnalysis::new(config.duration)),
        };
        if let Some(registry) = registry {
            analysis.export_metrics(registry);
        }
        MainRun {
            config,
            analysis,
            outcome,
        }
    }

    /// Ratio scaling a counted quantity to the paper's full trace length
    /// (1.0 for a full-week run).
    pub fn week_scale(&self) -> f64 {
        csprov_game::PAPER_TRACE_SECS as f64 / self.config.duration.as_secs_f64()
    }

    /// Reduces this run to the compact mergeable state the fleet engine
    /// retains per shard, consuming (and thereby dropping) the rest of the
    /// analysis.
    pub fn into_fleet_shard(self, shard: usize) -> crate::fleet::ShardState {
        crate::fleet::ShardState::from_run(shard, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_game::ScenarioConfig;

    #[test]
    fn short_run_populates_every_analyzer() {
        let cfg = ScenarioConfig::new(3, SimDuration::from_mins(10));
        let run = MainRun::execute(cfg);
        let a = &run.analysis;
        assert!(a.counts.total_packets() > 100_000, "10 min of busy server");
        assert_eq!(a.per_minute.bins().len(), 10);
        assert_eq!(a.ms10_total.bins().len(), SHORT_SERIES_BINS);
        assert_eq!(a.ms50_total.bins().len(), SHORT_SERIES_BINS);
        assert_eq!(a.sec1_total.bins().len(), 600);
        assert_eq!(a.min30_total.bins().len(), 1);
        assert!(a.variance_time.bins_seen() >= 60_000);
        assert!(a.sizes.grand_total() > 0);
        assert!(!a.flows.is_empty());
        assert!(!run.outcome.sessions.is_empty());
        assert!((run.week_scale() - 626_477.0 / 600.0).abs() < 1e-6);
    }

    #[test]
    fn directional_series_sum_to_total() {
        let cfg = ScenarioConfig::new(4, SimDuration::from_mins(3));
        let run = MainRun::execute(cfg);
        let a = &run.analysis;
        for i in 0..a.per_minute.bins().len() {
            assert_eq!(
                a.per_minute.bins()[i].packets,
                a.per_minute_in.bins()[i].packets + a.per_minute_out.bins()[i].packets
            );
        }
    }

    #[test]
    fn profiled_run_matches_unprofiled_and_frames_the_ingest() {
        let plain = MainRun::execute(ScenarioConfig::new(11, SimDuration::from_mins(2)));
        let profile = Profile::new();
        let instruments = WorldInstruments {
            profile: Some(profile.clone()),
            ..Default::default()
        };
        let profiled = MainRun::execute_instrumented(
            ScenarioConfig::new(11, SimDuration::from_mins(2)),
            instruments,
            None,
        );
        assert_eq!(
            plain.analysis.counts.total_packets(),
            profiled.analysis.counts.total_packets(),
            "profiling must not perturb the analysis"
        );
        assert_eq!(
            plain.analysis.counts.total_wire_bytes(),
            profiled.analysis.counts.total_wire_bytes()
        );
        assert_eq!(
            plain.outcome.sessions.len(),
            profiled.outcome.sessions.len()
        );
        let snap = profile.snapshot();
        let ingest = snap
            .entries()
            .iter()
            .find(|e| e.path.last().is_some_and(|f| f == "pipeline.ingest"))
            .expect("ingest frames recorded");
        assert!(
            ingest.items > 0 && ingest.items <= profiled.analysis.counts.total_packets(),
            "ingest frame items count batched records (got {} of {})",
            ingest.items,
            profiled.analysis.counts.total_packets()
        );
        assert!(
            snap.entries()
                .iter()
                .any(|e| e.path.last().is_some_and(|f| f == "pipeline.fold")),
            "analyzer finalization is framed"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run1 = MainRun::execute(ScenarioConfig::new(7, SimDuration::from_mins(2)));
        let run2 = MainRun::execute(ScenarioConfig::new(7, SimDuration::from_mins(2)));
        assert_eq!(
            run1.analysis.counts.total_packets(),
            run2.analysis.counts.total_packets()
        );
        assert_eq!(
            run1.analysis.counts.total_wire_bytes(),
            run2.analysis.counts.total_wire_bytes()
        );
        assert_eq!(run1.outcome.sessions.len(), run2.outcome.sessions.len());
        let run3 = MainRun::execute(ScenarioConfig::new(8, SimDuration::from_mins(2)));
        assert_ne!(
            run1.analysis.counts.total_packets(),
            run3.analysis.counts.total_packets(),
            "different seeds must differ"
        );
    }
}
