//! Facility-scale fleet simulation with mergeable analysis state.
//!
//! Section IV-B's provisioning argument is about an *aggregation* of
//! servers: aggregate game traffic is effectively linear in active players,
//! so a hosting facility can be sized by extrapolation from one busy
//! server. This module runs that extrapolation forward: it shards hundreds
//! of independent simulated servers across the work-stealing pool
//! ([`crate::sweep::work_steal`]), reduces each run to a compact
//! [`ShardState`] *inside the worker* (the full per-run analysis — 18,000
//! stored 1 s bins, variance-time ladders, flow tables — is dropped before
//! the next shard starts), and folds the shard states into one
//! [`FacilityAnalysis`] with the typed merge operations from
//! `csprov_analysis`. Memory is O(shards), not O(shards × trace).
//!
//! Determinism contract:
//! - shard seeds are derived per index ([`csprov_sim::RngStream::derive_seed`]),
//!   so each shard's traffic is independent of fleet size and thread count;
//! - shard states are folded in canonical shard-index order, and the
//!   per-bin merge is integer superposition, so any permutation of the same
//!   shard set produces a byte-identical facility aggregate;
//! - dropped tail bins (shards whose run emitted more minute bins than the
//!   shortest shard) are counted up front across the whole fleet — a
//!   pairwise running total would depend on fold order — and surfaced in
//!   the report instead of silently truncated.
//!
//! On top of the merged state, [`ProvisioningReport`] answers the paper's
//! provisioning questions: aggregate packet rate and bandwidth (mean,
//! p95/p99), the per-player slope and its fit quality, the aggregate Hurst
//! exponent, and an uplink-sizing line in the spirit of the paper's OC-3
//! discussion.

use crate::pipeline::MainRun;
use crate::sweep::work_steal;
use csprov_analysis::report::{fmt_f64, TextTable};
use csprov_analysis::{
    fit_line, rs_hurst, summarize_sessions, MergeError, RateSeries, SizeHistogram,
};
use csprov_game::{ScenarioConfig, WorldInstruments};
use csprov_net::CountingSink;
use csprov_obs::{Journal, MetricsRegistry};
use csprov_sim::{Pacer, RngStream, SimDuration, Speed};
use std::fmt;

/// What a fleet run should simulate.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Variant label for reports.
    pub label: String,
    /// Facility-level seed; per-shard seeds are derived from it.
    pub seed: u64,
    /// Number of independent servers.
    pub servers: usize,
    /// Simulated minutes per server.
    pub minutes: u64,
    /// Session-duration shape (log-normal sigma) for every shard.
    pub session_sigma: f64,
    /// Replay speed per shard. [`Speed::Max`] (the default) runs as fast
    /// as the hardware allows; a paced speed wall-clocks every shard,
    /// which changes nothing about what a shard computes — pacing only
    /// sleeps — so the aggregate stays byte-identical.
    pub speed: Speed,
}

impl FleetConfig {
    /// A fleet with the default session-duration shape.
    pub fn new(label: &str, seed: u64, servers: usize, minutes: u64) -> Self {
        FleetConfig {
            label: label.to_string(),
            seed,
            servers,
            minutes,
            session_sigma: 1.05,
            speed: Speed::Max,
        }
    }

    /// The scenario shard `shard` runs. Per-shard seeds are derived by
    /// label+index rather than taken consecutively, so shard traffic stays
    /// decorrelated however large the facility grows, and shard `k` of a
    /// 4-server fleet is identical to shard `k` of a 400-server fleet.
    pub fn scenario(&self, shard: usize) -> ScenarioConfig {
        let root = RngStream::new(self.seed);
        let mut cfg = ScenarioConfig::new(
            root.derive_seed("fleet.shard", shard as u64),
            SimDuration::from_mins(self.minutes),
        );
        cfg.workload.session_sigma = self.session_sigma;
        cfg.workload.session_range.1 = SimDuration::from_hours(12);
        cfg
    }
}

/// Why a fleet run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// `servers == 0`: there is nothing to aggregate.
    NoServers,
    /// A shard's worker panicked; the panic was contained and converted.
    ShardFailed {
        /// Index of the failing shard.
        shard: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// Shard states could not be folded (incompatible analyzer shapes).
    Merge(MergeError),
    /// The merged aggregate cannot support the report (e.g. no players).
    Degenerate(&'static str),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoServers => write!(f, "fleet has no servers to aggregate"),
            FleetError::ShardFailed { shard, message } => {
                write!(f, "shard {shard} failed: {message}")
            }
            FleetError::Merge(e) => write!(f, "shard merge failed: {e}"),
            FleetError::Degenerate(what) => write!(f, "degenerate aggregate: {what}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<MergeError> for FleetError {
    fn from(e: MergeError) -> Self {
        FleetError::Merge(e)
    }
}

/// The mergeable reduction of one shard's [`MainRun`].
///
/// Everything here is either a merge-capable analyzer or a scalar, so a
/// fleet retains O(shards) state. The heavyweight per-run analyzers
/// (10 ms/1 s stored series, variance-time ladders, flow tables) die with
/// the `MainRun` inside the worker.
#[derive(Clone)]
pub struct ShardState {
    /// Shard index within the fleet (also the canonical merge order).
    pub shard: usize,
    /// The derived seed the shard ran with.
    pub seed: u64,
    /// Configured run length.
    pub duration: SimDuration,
    /// Packet/byte totals.
    pub counts: CountingSink,
    /// Per-minute totals.
    pub per_minute: RateSeries,
    /// Per-minute inbound.
    pub per_minute_in: RateSeries,
    /// Per-minute outbound.
    pub per_minute_out: RateSeries,
    /// Packet-size distribution.
    pub sizes: SizeHistogram,
    /// Active players sampled each minute.
    pub players_per_minute: Vec<u32>,
    /// Time-averaged player count.
    pub mean_players: f64,
    /// Established / attempted connections.
    pub sessions: (u64, u64),
}

impl ShardState {
    /// Reduces a finished run to its mergeable state, dropping the rest.
    pub fn from_run(shard: usize, run: MainRun) -> ShardState {
        let s = summarize_sessions(&run.outcome.sessions);
        ShardState {
            shard,
            seed: run.config.seed,
            duration: run.config.duration,
            counts: run.analysis.counts,
            per_minute: run.analysis.per_minute,
            per_minute_in: run.analysis.per_minute_in,
            per_minute_out: run.analysis.per_minute_out,
            sizes: run.analysis.sizes,
            players_per_minute: run.outcome.players_per_minute,
            mean_players: run.outcome.mean_players,
            sessions: (s.established, s.attempted),
        }
    }

    /// Mean packet rate over the shard's configured duration.
    pub fn mean_pps(&self) -> f64 {
        self.counts.total_packets() as f64 / self.duration.as_secs_f64()
    }
}

/// One compact reporting row per shard (kept alongside the aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// The derived seed the shard ran with.
    pub seed: u64,
    /// Time-averaged player count.
    pub mean_players: f64,
    /// Mean packet rate.
    pub mean_pps: f64,
    /// Stored minute bins before truncation.
    pub minute_bins: usize,
}

/// The facility aggregate: every shard's traffic superposed.
pub struct FacilityAnalysis {
    /// Shards folded in.
    pub shards: usize,
    /// Aggregate packet/byte totals.
    pub counts: CountingSink,
    /// Aggregate per-minute totals (bins are element-wise sums).
    pub per_minute: RateSeries,
    /// Aggregate per-minute inbound.
    pub per_minute_in: RateSeries,
    /// Aggregate per-minute outbound.
    pub per_minute_out: RateSeries,
    /// Aggregate packet-size distribution.
    pub sizes: SizeHistogram,
    /// Aggregate active players per minute (summed over shards, truncated
    /// to the common bin prefix).
    pub players_per_minute: Vec<u64>,
    /// Tail minute bins dropped by truncating every shard to the shortest
    /// shard's bin count (counted on the total per-minute series; the
    /// directional series truncate identically).
    pub dropped_bins: u64,
    /// Established / attempted connections across the fleet.
    pub sessions: (u64, u64),
}

impl FacilityAnalysis {
    /// Folds shard states into one aggregate.
    ///
    /// States are first sorted by shard index, so the fold order — and
    /// therefore the result, byte-for-byte — is independent of the order
    /// the shards finished (or the order the caller passes them in). The
    /// dropped-bin count is computed up front across the whole fleet
    /// because a pairwise running total would depend on fold order.
    pub fn merge(mut states: Vec<ShardState>) -> Result<FacilityAnalysis, FleetError> {
        if states.is_empty() {
            return Err(FleetError::NoServers);
        }
        states.sort_by_key(|s| s.shard);

        let min_bins = states
            .iter()
            .map(|s| s.per_minute.bins().len())
            .min()
            .unwrap_or(0);
        let dropped_bins: u64 = states
            .iter()
            .map(|s| (s.per_minute.bins().len() - min_bins) as u64)
            .sum();

        // The player sampler emits one fewer entry than the rate series
        // (no sample at the closing boundary), so its common prefix is
        // computed on its own lengths — padding to `min_bins` would invent
        // phantom zero-player minutes and drag the facility mean down.
        let player_bins = states
            .iter()
            .map(|s| s.players_per_minute.len())
            .min()
            .unwrap_or(0);
        let mut players_per_minute = vec![0u64; player_bins];
        for s in &states {
            for (i, agg) in players_per_minute.iter_mut().enumerate() {
                *agg += u64::from(s.players_per_minute.get(i).copied().unwrap_or(0));
            }
        }

        let mut iter = states.iter();
        let Some(first) = iter.next() else {
            return Err(FleetError::NoServers);
        };
        // Seed the accumulator from the first shard (clone), then superpose
        // the rest. A fleet of one is therefore a bit-for-bit copy of its
        // single shard's analysis.
        let mut counts = first.counts.clone();
        let mut per_minute = first.per_minute.clone();
        let mut per_minute_in = first.per_minute_in.clone();
        let mut per_minute_out = first.per_minute_out.clone();
        let mut sizes = first.sizes.clone();
        let mut sessions = first.sessions;
        for s in iter {
            counts.merge(&s.counts);
            // Pairwise dropped counts are discarded in favor of the
            // order-canonical up-front total.
            per_minute.merge_superpose(&s.per_minute)?;
            per_minute_in.merge_superpose(&s.per_minute_in)?;
            per_minute_out.merge_superpose(&s.per_minute_out)?;
            sizes.merge(&s.sizes)?;
            sessions.0 += s.sessions.0;
            sessions.1 += s.sessions.1;
        }

        Ok(FacilityAnalysis {
            shards: states.len(),
            counts,
            per_minute,
            per_minute_in,
            per_minute_out,
            sizes,
            players_per_minute,
            dropped_bins,
            sessions,
        })
    }

    /// Mean aggregate player count over the common bin prefix.
    pub fn mean_players(&self) -> f64 {
        if self.players_per_minute.is_empty() {
            return 0.0;
        }
        self.players_per_minute.iter().sum::<u64>() as f64 / self.players_per_minute.len() as f64
    }
}

/// The uplink ladder the sizing line chooses from (name, Mbps).
pub const UPLINK_LADDER: [(&str, f64); 6] = [
    ("T-1", 1.544),
    ("10BaseT", 10.0),
    ("T-3/DS-3", 44.736),
    ("OC-3", 155.52),
    ("OC-12", 622.08),
    ("GigE", 1000.0),
];

/// OC-3 payload capacity in kbps, for the paper-style players-per-OC-3 line.
pub const OC3_KBPS: f64 = 155_520.0;

/// The provisioning answers computed from a merged facility aggregate.
#[derive(Debug, Clone)]
pub struct ProvisioningReport {
    /// Variant label.
    pub label: String,
    /// Servers aggregated.
    pub servers: usize,
    /// Simulated minutes per server.
    pub minutes: u64,
    /// Mean aggregate player count.
    pub mean_players: f64,
    /// Mean aggregate packet rate (packets per second).
    pub mean_pps: f64,
    /// 95th-percentile minute-bin packet rate.
    pub p95_pps: f64,
    /// 99th-percentile minute-bin packet rate.
    pub p99_pps: f64,
    /// Mean aggregate bandwidth (Mbps, wire bytes).
    pub mean_mbps: f64,
    /// 95th-percentile minute-bin bandwidth (Mbps).
    pub p95_mbps: f64,
    /// 99th-percentile minute-bin bandwidth (Mbps).
    pub p99_mbps: f64,
    /// Per-player packet rate: the cross-shard regression slope (ratio
    /// `mean_pps / mean_players` for a single-shard fleet).
    pub pps_per_player: f64,
    /// Fit quality of the linearity claim (1.0 for the ratio fallback).
    pub r_squared: f64,
    /// R/S Hurst exponent of the aggregate per-minute rate, when the run
    /// is long enough to estimate one.
    pub hurst: Option<f64>,
    /// Tail minute bins dropped by common-prefix truncation.
    pub dropped_bins: u64,
    /// Mean per-player bandwidth (kbps).
    pub per_player_kbps: f64,
    /// Chosen uplink name.
    pub uplink: &'static str,
    /// Chosen uplink capacity (Mbps, per link).
    pub uplink_mbps: f64,
    /// Parallel links needed (1 unless even the ladder top is exceeded).
    pub uplink_count: u32,
    /// Mean utilization of the chosen uplink(s).
    pub uplink_utilization: f64,
    /// Players one OC-3 sustains at the measured per-player bandwidth.
    pub players_per_oc3: f64,
}

/// Deterministic nearest-rank quantile of an unsorted sample.
fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl ProvisioningReport {
    fn build(
        config: &FleetConfig,
        facility: &FacilityAnalysis,
        shards: &[ShardStats],
    ) -> Result<ProvisioningReport, FleetError> {
        let pps = facility.per_minute.pps();
        let kbps = facility.per_minute.kbps();
        if pps.is_empty() {
            return Err(FleetError::Degenerate("no aggregate minute bins"));
        }
        // Runs shorter than two minutes have no per-minute player samples;
        // fall back to the sum of the shards' time-averaged counts.
        let mean_players = if facility.players_per_minute.is_empty() {
            shards.iter().map(|s| s.mean_players).sum()
        } else {
            facility.mean_players()
        };
        if mean_players <= 0.0 {
            return Err(FleetError::Degenerate("aggregate has no players"));
        }
        let mean_pps = pps.iter().sum::<f64>() / pps.len() as f64;
        let mean_kbps = kbps.iter().sum::<f64>() / kbps.len() as f64;
        let mbps: Vec<f64> = kbps.iter().map(|k| k / 1000.0).collect();
        let mean_mbps = mean_kbps / 1000.0;

        // Linearity: aggregate rate of the first k shards against their
        // combined player count — the paper's "effectively linear to the
        // number of active players". One shard has no slope; fall back to
        // the ratio through the origin.
        let mut points = Vec::with_capacity(shards.len());
        let mut cum_players = 0.0;
        let mut cum_pps = 0.0;
        for s in shards {
            cum_players += s.mean_players;
            cum_pps += s.mean_pps;
            points.push((cum_players, cum_pps));
        }
        let (pps_per_player, r_squared) = match fit_line(&points) {
            Some(fit) => (fit.slope, fit.r_squared),
            None => (mean_pps / mean_players, 1.0),
        };

        let hurst = rs_hurst(&pps, 8).map(|(h, _)| h);

        let per_player_kbps = mean_kbps / mean_players;
        let p99_mbps = quantile(&mbps, 0.99);
        let (uplink, uplink_mbps, uplink_count) =
            match UPLINK_LADDER.iter().find(|(_, cap)| *cap >= p99_mbps) {
                Some(&(name, cap)) => (name, cap, 1),
                None => {
                    let (name, cap) = UPLINK_LADDER[UPLINK_LADDER.len() - 1];
                    (name, cap, (p99_mbps / cap).ceil() as u32)
                }
            };
        let uplink_utilization = mean_mbps / (uplink_mbps * f64::from(uplink_count));

        Ok(ProvisioningReport {
            label: config.label.clone(),
            servers: config.servers,
            minutes: config.minutes,
            mean_players,
            mean_pps,
            p95_pps: quantile(&pps, 0.95),
            p99_pps: quantile(&pps, 0.99),
            mean_mbps,
            p95_mbps: quantile(&mbps, 0.95),
            p99_mbps,
            pps_per_player,
            r_squared,
            hurst,
            dropped_bins: facility.dropped_bins,
            per_player_kbps,
            uplink,
            uplink_mbps,
            uplink_count,
            uplink_utilization,
            players_per_oc3: OC3_KBPS / per_player_kbps,
        })
    }

    /// The one-line uplink answer, in the spirit of the paper's observation
    /// that its single busy server consumed a steady fraction of a T-1.
    pub fn sizing_line(&self) -> String {
        let link = if self.uplink_count > 1 {
            format!("{}x {}", self.uplink_count, self.uplink)
        } else {
            self.uplink.to_string()
        };
        format!(
            "uplink: {} servers ({:.0} players) need {} ({} Mbps) at {:.1}% mean utilization; one OC-3 sustains ~{:.0} players at {} kbps/player",
            self.servers,
            self.mean_players,
            link,
            fmt_f64(self.uplink_mbps * f64::from(self.uplink_count), 1),
            self.uplink_utilization * 100.0,
            self.players_per_oc3,
            fmt_f64(self.per_player_kbps, 2),
        )
    }

    /// Renders the report as a metric/value table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(&format!(
            "Provisioning report: {} ({} servers x {} min)",
            self.label, self.servers, self.minutes
        ))
        .header(vec!["metric", "value"]);
        t.row(vec![
            "mean players".to_string(),
            fmt_f64(self.mean_players, 1),
        ]);
        t.row(vec!["mean pps".to_string(), fmt_f64(self.mean_pps, 1)]);
        t.row(vec!["p95 pps".to_string(), fmt_f64(self.p95_pps, 1)]);
        t.row(vec!["p99 pps".to_string(), fmt_f64(self.p99_pps, 1)]);
        t.row(vec!["mean Mbps".to_string(), fmt_f64(self.mean_mbps, 3)]);
        t.row(vec!["p95 Mbps".to_string(), fmt_f64(self.p95_mbps, 3)]);
        t.row(vec!["p99 Mbps".to_string(), fmt_f64(self.p99_mbps, 3)]);
        t.row(vec![
            "pps per player".to_string(),
            fmt_f64(self.pps_per_player, 2),
        ]);
        t.row(vec![
            "linearity r^2".to_string(),
            fmt_f64(self.r_squared, 4),
        ]);
        t.row(vec![
            "aggregate H (R/S)".to_string(),
            self.hurst
                .map(|h| fmt_f64(h, 3))
                .unwrap_or_else(|| "-".to_string()),
        ]);
        t.row(vec![
            "dropped tail bins".to_string(),
            self.dropped_bins.to_string(),
        ]);
        t.row(vec![
            "kbps per player".to_string(),
            fmt_f64(self.per_player_kbps, 2),
        ]);
        let link = if self.uplink_count > 1 {
            format!("{}x {}", self.uplink_count, self.uplink)
        } else {
            self.uplink.to_string()
        };
        t.row(vec![
            "uplink".to_string(),
            format!("{link} ({} Mbps)", fmt_f64(self.uplink_mbps, 1)),
        ]);
        t.row(vec![
            "uplink utilization".to_string(),
            format!("{:.1}%", self.uplink_utilization * 100.0),
        ]);
        t.row(vec![
            "players per OC-3".to_string(),
            fmt_f64(self.players_per_oc3, 0),
        ]);
        t
    }
}

/// A finished fleet run: the merged aggregate, per-shard rows, and the
/// provisioning answers.
pub struct FleetRun {
    /// The facility aggregate.
    pub facility: FacilityAnalysis,
    /// One row per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// The provisioning report over the aggregate.
    pub report: ProvisioningReport,
}

impl FleetRun {
    /// Exports fleet aggregates as `fleet.*` metrics.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        registry
            .counter("fleet.shards")
            .add(self.facility.shards as u64);
        registry
            .counter("fleet.packets")
            .add(self.facility.counts.total_packets());
        registry
            .counter("fleet.wire_bytes")
            .add(self.facility.counts.total_wire_bytes());
        registry
            .counter("fleet.dropped_bins")
            .add(self.facility.dropped_bins);
        registry
            .gauge("fleet.mean_players")
            .set(self.report.mean_players as i64);
        registry
            .gauge("fleet.mean_pps")
            .set(self.report.mean_pps as i64);
        registry
            .gauge("fleet.p99_pps")
            .set(self.report.p99_pps as i64);
    }

    /// Emits one journal event per shard plus fleet-level summary events.
    ///
    /// The fleet has no single simulation clock (every shard has its own),
    /// so — like the route-cache events, which use the access ordinal —
    /// these events use the shard ordinal as their time axis. Emission
    /// happens on the coordinating thread after the merge; workers never
    /// touch the journal.
    pub fn emit_journal(&self, journal: &Journal) {
        for s in &self.shards {
            let ordinal = s.shard as u64;
            journal.emit(ordinal, "fleet.shard.pps", ordinal, s.mean_pps as u64);
            journal.emit(
                ordinal,
                "fleet.shard.players",
                ordinal,
                s.mean_players as u64,
            );
        }
        let end = self.facility.shards as u64;
        journal.emit(end, "fleet.mean_pps", 0, self.report.mean_pps as u64);
        journal.emit(end, "fleet.dropped_bins", 0, self.facility.dropped_bins);
    }
}

/// Runs a fleet: shards across the work-stealing pool, reduces each run to
/// its [`ShardState`] in the worker, folds the states in canonical order,
/// and computes the provisioning report.
///
/// Typed failure modes instead of panics: zero servers, a contained worker
/// panic (lowest shard index wins), incompatible merge shapes, or a
/// degenerate aggregate.
pub fn run_fleet(config: &FleetConfig) -> Result<FleetRun, FleetError> {
    run_fleet_observed(config, None)
}

/// [`run_fleet`] with a shard-completion observer for live serving.
///
/// `on_shard` is invoked from the worker thread that finished the shard,
/// immediately after its reduction — the hook the serving plane uses to
/// re-merge an interim facility aggregate while other shards still run.
/// The observer is read-only with respect to the fleet: its return is
/// `()`, shard states are handed to it by reference, and the canonical
/// merge happens afterwards from the untouched result vector, so the
/// final aggregate cannot depend on observer behavior or timing.
pub fn run_fleet_observed(
    config: &FleetConfig,
    on_shard: Option<&(dyn Fn(&ShardState) + Sync)>,
) -> Result<FleetRun, FleetError> {
    if config.servers == 0 {
        return Err(FleetError::NoServers);
    }
    let scenarios: Vec<ScenarioConfig> = (0..config.servers).map(|i| config.scenario(i)).collect();
    let speed = config.speed;
    let states = work_steal(&scenarios, |i, cfg| {
        let instruments = WorldInstruments {
            pacer: speed.is_paced().then(|| Pacer::new(speed)),
            ..WorldInstruments::default()
        };
        let state =
            MainRun::execute_instrumented(cfg.clone(), instruments, None).into_fleet_shard(i);
        if let Some(observe) = on_shard {
            observe(&state);
        }
        state
    })
    .map_err(|p| FleetError::ShardFailed {
        shard: p.index,
        message: p.message,
    })?;

    let shards = shard_stats(&states);
    let facility = FacilityAnalysis::merge(states)?;
    let report = ProvisioningReport::build(config, &facility, &shards)?;
    Ok(FleetRun {
        facility,
        shards,
        report,
    })
}

/// A provisioning report over a *partial* fleet: the shards completed so
/// far. The serving plane re-renders this on every shard completion; the
/// report is labelled with the number of shards actually folded, not the
/// configured fleet size.
pub fn interim_report(
    config: &FleetConfig,
    states: &[ShardState],
) -> Result<ProvisioningReport, FleetError> {
    let shards = shard_stats(states);
    let facility = FacilityAnalysis::merge(states.to_vec())?;
    let mut partial = config.clone();
    partial.servers = facility.shards;
    ProvisioningReport::build(&partial, &facility, &shards)
}

/// Per-shard reporting rows in canonical shard order.
fn shard_stats(states: &[ShardState]) -> Vec<ShardStats> {
    let mut shards: Vec<ShardStats> = states
        .iter()
        .map(|s| ShardStats {
            shard: s.shard,
            seed: s.seed,
            mean_players: s.mean_players,
            mean_pps: s.mean_pps(),
            minute_bins: s.per_minute.bins().len(),
        })
        .collect();
    shards.sort_by_key(|s| s.shard);
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_servers_is_a_typed_error() {
        let cfg = FleetConfig::new("empty", 1, 0, 5);
        assert_eq!(run_fleet(&cfg).err(), Some(FleetError::NoServers));
        assert_eq!(
            FacilityAnalysis::merge(Vec::new()).err(),
            Some(FleetError::NoServers)
        );
    }

    #[test]
    fn shard_seeds_are_stable_across_fleet_sizes() {
        let small = FleetConfig::new("a", 42, 4, 5);
        let large = FleetConfig::new("b", 42, 400, 5);
        for k in 0..4 {
            assert_eq!(small.scenario(k).seed, large.scenario(k).seed);
        }
        assert_ne!(small.scenario(0).seed, small.scenario(1).seed);
    }

    #[test]
    fn fleet_of_one_is_bitwise_its_monolithic_run() {
        let cfg = FleetConfig::new("one", 11, 1, 5);
        let fleet = run_fleet(&cfg).unwrap();
        let reference = MainRun::execute(cfg.scenario(0));
        let f = &fleet.facility;
        let r = &reference.analysis;
        assert_eq!(f.counts.packets, r.counts.packets);
        assert_eq!(f.counts.wire_bytes, r.counts.wire_bytes);
        assert_eq!(f.per_minute.bins(), r.per_minute.bins());
        assert_eq!(f.per_minute_in.bins(), r.per_minute_in.bins());
        assert_eq!(f.per_minute_out.bins(), r.per_minute_out.bins());
        assert_eq!(
            f.per_minute.bin_stats().mean().to_bits(),
            r.per_minute.bin_stats().mean().to_bits()
        );
        assert_eq!(f.sizes.grand_total(), r.sizes.grand_total());
        assert_eq!(f.dropped_bins, 0);
    }

    #[test]
    fn merge_order_does_not_change_the_aggregate() {
        let cfg = FleetConfig::new("perm", 21, 3, 4);
        let states: Vec<ShardState> = (0..3)
            .map(|i| ShardState::from_run(i, MainRun::execute(cfg.scenario(i))))
            .collect();
        let forward = FacilityAnalysis::merge(states.clone()).unwrap();
        let mut shuffled = states;
        shuffled.rotate_left(1);
        shuffled.swap(0, 1);
        let permuted = FacilityAnalysis::merge(shuffled).unwrap();
        assert_eq!(forward.per_minute.bins(), permuted.per_minute.bins());
        assert_eq!(forward.counts.packets, permuted.counts.packets);
        assert_eq!(
            forward.per_minute.bin_stats().variance().to_bits(),
            permuted.per_minute.bin_stats().variance().to_bits()
        );
        assert_eq!(forward.players_per_minute, permuted.players_per_minute);
        assert_eq!(forward.dropped_bins, permuted.dropped_bins);
    }

    #[test]
    fn report_renders_and_sizes_an_uplink() {
        let cfg = FleetConfig::new("render", 31, 2, 4);
        let fleet = run_fleet(&cfg).unwrap();
        let rep = &fleet.report;
        assert!(rep.mean_pps > 0.0);
        assert!(rep.p99_pps >= rep.p95_pps && rep.p95_pps >= 0.0);
        assert!(rep.uplink_count >= 1);
        assert!(rep.players_per_oc3 > 0.0);
        let rendered = rep.render().render();
        assert!(rendered.contains("pps per player"));
        assert!(rendered.contains("uplink"));
        assert!(rep.sizing_line().contains("OC-3"));
    }

    #[test]
    fn observer_sees_every_shard_and_interim_reports_converge() {
        use std::sync::Mutex;
        let cfg = FleetConfig::new("observed", 17, 3, 4);
        let seen: Mutex<Vec<ShardState>> = Mutex::new(Vec::new());
        let observed = run_fleet_observed(
            &cfg,
            Some(&|state: &ShardState| {
                let mut partial = seen.lock().unwrap();
                partial.push(state.clone());
                // An interim report over any non-empty prefix is valid.
                let interim = interim_report(&cfg, &partial).unwrap();
                assert_eq!(interim.servers, partial.len());
                assert!(interim.mean_pps > 0.0);
            }),
        )
        .unwrap();
        let states = seen.into_inner().unwrap();
        assert_eq!(states.len(), 3);
        // The interim report over ALL shards is the final report.
        let full = interim_report(&cfg, &states).unwrap();
        assert_eq!(full.render().render(), observed.report.render().render());
        // And observation changed nothing vs the plain path.
        let plain = run_fleet(&cfg).unwrap();
        assert_eq!(
            plain.report.render().render(),
            observed.report.render().render()
        );
        assert_eq!(
            plain.facility.per_minute.bins(),
            observed.facility.per_minute.bins()
        );
    }

    #[test]
    fn paced_fleet_matches_max_speed_fleet() {
        // A very fast pace (minimal sleeping) on a tiny fleet: the
        // aggregate must be byte-identical to the unpaced run.
        let mut paced_cfg = FleetConfig::new("paced", 23, 2, 1);
        paced_cfg.speed = Speed::Times(100_000.0);
        let mut max_cfg = paced_cfg.clone();
        max_cfg.speed = Speed::Max;
        let paced = run_fleet(&paced_cfg).unwrap();
        let unpaced = run_fleet(&max_cfg).unwrap();
        assert_eq!(
            paced.facility.per_minute.bins(),
            unpaced.facility.per_minute.bins()
        );
        assert_eq!(
            paced.facility.counts.packets,
            unpaced.facility.counts.packets
        );
        assert_eq!(
            paced.report.render().render(),
            unpaced.report.render().render()
        );
    }

    #[test]
    fn quantile_is_nearest_rank() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
