//! # csprov — "Provisioning On-line Games", reproduced
//!
//! A full reproduction of *Provisioning On-line Games: A Traffic Analysis
//! of a Busy Counter-Strike Server* (Feng, Chang, Feng, Walpole — OGI
//! CSE-02-005 / IMC 2002) as a Rust workspace. The original 500-million
//! packet trace is long gone, so this crate regenerates an equivalent one:
//! a deterministic discrete-event simulation of the studied server (22
//! slots, 50 ms tick, 30-minute map rotation, a worldwide population of
//! mostly-modem clients) feeds the same streaming analyses the paper ran,
//! and every table and figure is reproduced with paper-vs-measured
//! comparisons.
//!
//! ## Quickstart
//!
//! ```
//! use csprov::pipeline::MainRun;
//! use csprov::experiments::tables;
//! use csprov_game::ScenarioConfig;
//! use csprov_sim::SimDuration;
//!
//! // Simulate 5 minutes of the busy server and print Table II.
//! let run = MainRun::execute(ScenarioConfig::new(42, SimDuration::from_mins(5)));
//! println!("{}", tables::table2(&run).render());
//! assert!(run.analysis.counts.total_packets() > 50_000);
//! ```
//!
//! ## Layers
//!
//! - [`csprov_sim`] — deterministic discrete-event kernel.
//! - [`csprov_net`] — wire formats, links, trace capture, pcap.
//! - [`csprov_game`] — the Counter-Strike workload model.
//! - [`csprov_router`] — NAT device, route tables, route caches.
//! - [`csprov_analysis`] — the measurement toolkit.
//! - [`csprov_model`] — fitted source models.
//! - [`pipeline`] / [`experiments`] (this crate) — one-pass analysis and
//!   every paper artifact as a typed experiment.

pub mod chaos;
pub mod experiments;
pub mod fleet;
pub mod pipeline;
pub mod sweep;

pub use chaos::{ChaosReport, ChaosSpec};
pub use experiments::ExperimentId;
pub use fleet::{
    run_fleet, run_fleet_full, FailSpec, FleetConfig, FleetCoverage, FleetError, FleetEvent,
    FleetMerger, FleetPersistence, FleetRun, PersistSummary, ProvisioningReport, RetryPolicy,
};
pub use pipeline::{FullAnalysis, MainRun, INGEST_PATH_ENV};
pub use sweep::{run_parallel, work_steal, RunSummary, WorkerPanic, WorkerPanics};

// Re-export the component crates under one roof for downstream users.
pub use csprov_analysis as analysis;
pub use csprov_game as game;
pub use csprov_model as model;
pub use csprov_net as net;
pub use csprov_router as router;
pub use csprov_sim as sim;
pub use csprov_web as web;
