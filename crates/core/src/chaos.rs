//! Named chaos profiles and replayable fault-injection campaigns.
//!
//! A campaign wraps a normal run — the main trace or the Section IV NAT
//! experiment — in an [`ImpairedPath`] built from a [`ChaosSpec`], driven
//! by its own seed so the impairment schedule is independent of the
//! workload seed and bit-for-bit replayable. The `none` profile installs a
//! zero-impairment path, which is a provable no-op: a disabled injector
//! consumes no RNG draws and delivers synchronously, so the event schedule
//! (and every artifact) is byte-identical to an un-wrapped run.

use crate::pipeline::MainRun;
use csprov_game::{Middlebox, ScenarioConfig, WorldInstruments};
use csprov_net::{
    BurstLoss, DuplicateConfig, FaultConfig, FaultMetrics, FaultStats, ReorderConfig,
};
use csprov_obs::MetricsRegistry;
use csprov_router::{NatStats, NatTableConfig};
use csprov_sim::{RngStream, SimDuration};
use std::rc::Rc;

/// One fault-injection campaign: per-direction impairments plus an
/// optional NAT-table override for the Section IV experiment.
#[derive(Debug, Clone, Default)]
pub struct ChaosSpec {
    /// Profile name, as accepted by [`by_name`].
    pub name: &'static str,
    /// Impairments applied to client → server traffic.
    pub inbound: FaultConfig,
    /// Impairments applied to server → client traffic.
    pub outbound: FaultConfig,
    /// NAT-table override (capacity / idle timeout) for NAT campaigns.
    pub nat_table: Option<NatTableConfig>,
}

impl ChaosSpec {
    /// True when the spec impairs nothing and overrides nothing.
    pub fn is_noop(&self) -> bool {
        self.inbound.is_noop() && self.outbound.is_noop() && self.nat_table.is_none()
    }
}

/// Names of every built-in profile, in presentation order.
pub fn names() -> &'static [&'static str] {
    &[
        "none",
        "modem-burst",
        "reorder-dup",
        "last-mile-loss",
        "nat-exhaust",
    ]
}

/// Looks up a built-in chaos profile.
///
/// - `none` — zero impairment; byte-identical to the un-wrapped run.
/// - `modem-burst` — Gilbert–Elliott bursty loss on the inbound path
///   (modem retrains), a trickle of uniform loss outbound.
/// - `reorder-dup` — reordering and duplication both ways, no loss.
/// - `last-mile-loss` — uniform random loss plus corruption both ways.
/// - `nat-exhaust` — no link impairment, but a NAT table far too small
///   for the player population (Table IV's device under pressure).
pub fn by_name(name: &str) -> Option<ChaosSpec> {
    let spec = match name {
        "none" => ChaosSpec {
            name: "none",
            ..ChaosSpec::default()
        },
        "modem-burst" => ChaosSpec {
            name: "modem-burst",
            inbound: FaultConfig {
                burst_loss: Some(BurstLoss {
                    p_enter: 0.01,
                    p_exit: 0.2,
                    loss_good: 0.0005,
                    loss_bad: 0.35,
                }),
                ..FaultConfig::default()
            },
            outbound: FaultConfig {
                drop_chance: 0.001,
                ..FaultConfig::default()
            },
            nat_table: None,
        },
        "reorder-dup" => {
            let both = FaultConfig {
                reorder: Some(ReorderConfig {
                    chance: 0.02,
                    delay_min: SimDuration::from_millis(2),
                    delay_max: SimDuration::from_millis(25),
                }),
                duplicate: Some(DuplicateConfig {
                    chance: 0.005,
                    delay_min: SimDuration::from_millis(1),
                    delay_max: SimDuration::from_millis(10),
                }),
                ..FaultConfig::default()
            };
            ChaosSpec {
                name: "reorder-dup",
                inbound: both.clone(),
                outbound: both,
                nat_table: None,
            }
        }
        "last-mile-loss" => ChaosSpec {
            name: "last-mile-loss",
            inbound: FaultConfig {
                drop_chance: 0.01,
                corrupt_chance: 0.002,
                ..FaultConfig::default()
            },
            outbound: FaultConfig {
                drop_chance: 0.005,
                corrupt_chance: 0.001,
                ..FaultConfig::default()
            },
            nat_table: None,
        },
        "nat-exhaust" => ChaosSpec {
            name: "nat-exhaust",
            inbound: FaultConfig::default(),
            outbound: FaultConfig::default(),
            // 16 mappings for a 19-player server: the table is exhausted
            // within the warm-up, and only idle-entry reclamation lets new
            // sessions map at all.
            nat_table: Some(NatTableConfig {
                capacity: 16,
                idle_timeout: SimDuration::from_secs(60),
            }),
        },
        _ => return None,
    };
    Some(spec)
}

/// Counters collected from one chaos campaign, rendered deterministically.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The profile that ran.
    pub profile: String,
    /// The impairment seed (independent of the workload seed).
    pub chaos_seed: u64,
    /// Fate counters shared by both directions' injectors.
    pub stats: FaultStats,
    /// NAT degradation counters, present for NAT campaigns.
    pub nat: Option<NatStats>,
}

impl ChaosReport {
    /// Renders the campaign summary as deterministic fixed-precision text.
    pub fn render(&self) -> String {
        let s = &self.stats;
        let offered = s.offered.get();
        let pct = |n: u64| -> f64 {
            if offered == 0 {
                0.0
            } else {
                100.0 * n as f64 / offered as f64
            }
        };
        let mut out = String::new();
        out.push_str(&format!(
            "chaos campaign: {} (chaos-seed {})\n",
            self.profile, self.chaos_seed
        ));
        out.push_str(&format!("  offered          {offered}\n"));
        out.push_str(&format!(
            "  passed           {} ({:.4}%)\n",
            s.passed.get(),
            pct(s.passed.get())
        ));
        out.push_str(&format!("  reordered        {}\n", s.reordered.get()));
        out.push_str(&format!("  duplicated       {}\n", s.duplicated.get()));
        out.push_str(&format!("  dropped.random   {}\n", s.dropped.get()));
        out.push_str(&format!("  dropped.burst    {}\n", s.dropped_burst.get()));
        out.push_str(&format!("  dropped.corrupt  {}\n", s.corrupted.get()));
        out.push_str(&format!("  dropped.shaped   {}\n", s.shaped.get()));
        out.push_str(&format!(
            "  dropped total    {} ({:.4}%)\n",
            s.dropped_total(),
            pct(s.dropped_total())
        ));
        out.push_str(&format!(
            "  conservation     {}\n",
            if s.conservation_holds() {
                "ok"
            } else {
                "VIOLATED"
            }
        ));
        if let Some(nat) = &self.nat {
            out.push_str(&format!(
                "  nat.table_drops  in {} / out {}\n",
                nat.table_drops[0].get(),
                nat.table_drops[1].get()
            ));
            out.push_str(&format!("  nat.evictions    {}\n", nat.evictions.get()));
            out.push_str(&format!("  nat.recoveries   {}\n", nat.recoveries.get()));
        }
        out
    }
}

/// Builds the impairment middlebox for a spec (no inner device).
///
/// The injector RNG is derived from `chaos_seed` alone, so the same spec
/// and seed produce the same impairment schedule regardless of workload.
pub fn build_path(
    spec: &ChaosSpec,
    chaos_seed: u64,
    registry: Option<&MetricsRegistry>,
) -> Rc<csprov_router::ImpairedPath> {
    build_path_around(spec, chaos_seed, None, registry)
}

/// [`build_path`], wrapping an inner middlebox (e.g. a NAT device).
pub fn build_path_around(
    spec: &ChaosSpec,
    chaos_seed: u64,
    inner: Option<Rc<dyn Middlebox>>,
    registry: Option<&MetricsRegistry>,
) -> Rc<csprov_router::ImpairedPath> {
    let rng = RngStream::new(chaos_seed).derive("chaos");
    let path = Rc::new(csprov_router::ImpairedPath::with_directions(
        spec.inbound.clone(),
        spec.outbound.clone(),
        rng,
        inner,
    ));
    if let Some(registry) = registry {
        path.attach_metrics(FaultMetrics::register(registry));
    }
    path
}

/// Runs the main trace under a chaos profile and reports the campaign.
pub fn run_chaos_main(
    spec: &ChaosSpec,
    config: ScenarioConfig,
    chaos_seed: u64,
    instruments: WorldInstruments,
    registry: Option<&MetricsRegistry>,
) -> (MainRun, ChaosReport) {
    let path = build_path(spec, chaos_seed, registry);
    if let Some(journal) = &instruments.journal {
        path.attach_journal(journal.clone());
    }
    let run = MainRun::execute_with_middlebox(
        config,
        Some(path.clone() as Rc<dyn Middlebox>),
        instruments,
        registry,
    );
    let report = ChaosReport {
        profile: spec.name.to_string(),
        chaos_seed,
        stats: path.stats(),
        nat: None,
    };
    (run, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_profile_resolves() {
        for name in names() {
            let spec = by_name(name).expect("listed profile must resolve");
            assert_eq!(&spec.name, name);
        }
        assert!(by_name("no-such-profile").is_none());
    }

    #[test]
    fn none_profile_is_noop() {
        assert!(by_name("none").unwrap().is_noop());
        for name in names().iter().filter(|n| **n != "none") {
            assert!(!by_name(name).unwrap().is_noop(), "{name} must impair");
        }
    }

    #[test]
    fn report_renders_deterministically() {
        let spec = by_name("last-mile-loss").unwrap();
        let cfg = ScenarioConfig::new(5, SimDuration::from_mins(1));
        let (_, r1) = run_chaos_main(&spec, cfg.clone(), 9, WorldInstruments::default(), None);
        let (_, r2) = run_chaos_main(&spec, cfg, 9, WorldInstruments::default(), None);
        assert_eq!(r1.render(), r2.render());
        assert!(r1.stats.conservation_holds());
        assert!(r1.stats.dropped.get() > 0, "1% loss over a minute");
    }

    #[test]
    fn chaos_seed_changes_schedule_but_not_offered_load() {
        // Different chaos seeds must impair different packets, while the
        // campaign stays conservation-consistent either way.
        let spec = by_name("modem-burst").unwrap();
        let cfg = ScenarioConfig::new(5, SimDuration::from_mins(1));
        let (_, r1) = run_chaos_main(&spec, cfg.clone(), 1, WorldInstruments::default(), None);
        let (_, r2) = run_chaos_main(&spec, cfg, 2, WorldInstruments::default(), None);
        assert!(r1.stats.conservation_holds() && r2.stats.conservation_holds());
        assert_ne!(
            (r1.stats.dropped_burst.get(), r1.stats.passed.get()),
            (r2.stats.dropped_burst.get(), r2.stats.passed.get()),
            "different chaos seeds must impair differently"
        );
    }
}
