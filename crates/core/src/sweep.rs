//! Parallel parameter sweeps.
//!
//! A single simulation run is strictly single-threaded (determinism), but
//! independent runs are embarrassingly parallel. [`run_parallel`] fans a set
//! of scenarios out across OS threads and collects a compact [`RunSummary`]
//! per run — the tool behind multi-seed confidence intervals and the
//! provisioning sweeps.

use crate::pipeline::MainRun;
use csprov_analysis::{summarize_sessions, Welford};
use csprov_game::ScenarioConfig;
use csprov_net::Direction;

/// Compact, `Send` summary of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// The seed that produced it.
    pub seed: u64,
    /// Total packets observed.
    pub total_packets: u64,
    /// Mean packet rate, packets per second (total, in, out).
    pub mean_pps: [f64; 3],
    /// Mean bandwidth, kilobits per second (total, in, out).
    pub mean_kbps: [f64; 3],
    /// Mean application payload size (in, out).
    pub mean_size: [f64; 2],
    /// Time-averaged player count.
    pub mean_players: f64,
    /// Established / attempted connections.
    pub sessions: (u64, u64),
}

impl RunSummary {
    /// Reduces a finished run.
    pub fn from_run(run: &MainRun) -> RunSummary {
        let secs = run.config.duration.as_secs_f64();
        let c = &run.analysis.counts;
        let p_in = c.packets_in(Direction::Inbound);
        let p_out = c.packets_in(Direction::Outbound);
        let b_in = c.wire_bytes_in(Direction::Inbound);
        let b_out = c.wire_bytes_in(Direction::Outbound);
        let s = summarize_sessions(&run.outcome.sessions);
        let mean = |b: u64, p: u64| if p > 0 { b as f64 / p as f64 } else { 0.0 };
        RunSummary {
            seed: run.config.seed,
            total_packets: p_in + p_out,
            mean_pps: [
                (p_in + p_out) as f64 / secs,
                p_in as f64 / secs,
                p_out as f64 / secs,
            ],
            mean_kbps: [
                (b_in + b_out) as f64 * 8.0 / secs / 1000.0,
                b_in as f64 * 8.0 / secs / 1000.0,
                b_out as f64 * 8.0 / secs / 1000.0,
            ],
            mean_size: [
                mean(c.app_bytes_in(Direction::Inbound), p_in),
                mean(c.app_bytes_in(Direction::Outbound), p_out),
            ],
            mean_players: run.outcome.mean_players,
            sessions: (s.established, s.attempted),
        }
    }
}

/// Runs every scenario across a fixed pool of worker threads and returns
/// summaries in input order.
///
/// Workers claim scenarios from a shared atomic cursor, so a thread that
/// finishes a short run immediately starts the next one instead of idling
/// at a wave barrier until the slowest run of its cohort completes. Each
/// run is still strictly single-threaded, so every summary is bit-identical
/// to a serial `RunSummary::from_run(&MainRun::execute(cfg))`.
pub fn run_parallel(scenarios: Vec<ScenarioConfig>) -> Vec<RunSummary> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    if scenarios.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(scenarios.len());
    let cursor = AtomicUsize::new(0);
    let scenarios = &scenarios[..];
    let mut results: Vec<(usize, RunSummary)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(cfg) = scenarios.get(idx) else { break };
                        mine.push((idx, RunSummary::from_run(&MainRun::execute(cfg.clone()))));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(idx, _)| idx);
    results.into_iter().map(|(_, summary)| summary).collect()
}

/// Multi-seed statistics for one scenario shape: runs `seeds` copies in
/// parallel and returns per-metric Welford accumulators
/// `(pps_total, kbps_total, mean_players)`.
pub fn seed_spread(
    base: &ScenarioConfig,
    seeds: impl IntoIterator<Item = u64>,
) -> (Welford, Welford, Welford) {
    let scenarios: Vec<ScenarioConfig> = seeds
        .into_iter()
        .map(|seed| {
            let mut cfg = base.clone();
            cfg.seed = seed;
            cfg
        })
        .collect();
    let mut pps = Welford::new();
    let mut kbps = Welford::new();
    let mut players = Welford::new();
    for s in run_parallel(scenarios) {
        pps.push(s.mean_pps[0]);
        kbps.push(s.mean_kbps[0]);
        players.push(s.mean_players);
    }
    (pps, kbps, players)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_sim::SimDuration;

    #[test]
    fn parallel_matches_serial() {
        let cfg = ScenarioConfig::new(5, SimDuration::from_mins(3));
        let serial = RunSummary::from_run(&MainRun::execute(cfg.clone()));
        let parallel = run_parallel(vec![cfg.clone(), cfg]);
        assert_eq!(parallel[0], serial, "determinism must survive threading");
        assert_eq!(parallel[1], serial);
    }

    #[test]
    fn work_stealing_matches_serial_element_for_element() {
        // Mixed durations so workers drift out of lockstep: the claim order
        // under work-stealing differs from input order, but every summary
        // must still equal its serial counterpart, in input order.
        let cfgs: Vec<ScenarioConfig> = (0..5)
            .map(|i| ScenarioConfig::new(40 + i, SimDuration::from_secs(30 + 45 * (i % 3))))
            .collect();
        let serial: Vec<RunSummary> = cfgs
            .iter()
            .map(|cfg| RunSummary::from_run(&MainRun::execute(cfg.clone())))
            .collect();
        let parallel = run_parallel(cfgs);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_sweep_returns_empty() {
        assert!(run_parallel(Vec::new()).is_empty());
    }

    #[test]
    fn results_in_input_order() {
        let cfgs: Vec<ScenarioConfig> = (0..6)
            .map(|i| ScenarioConfig::new(100 + i, SimDuration::from_mins(1)))
            .collect();
        let out = run_parallel(cfgs);
        let seeds: Vec<u64> = out.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![100, 101, 102, 103, 104, 105]);
    }

    #[test]
    fn seed_spread_is_tight_at_steady_state() {
        let base = ScenarioConfig::new(0, SimDuration::from_mins(10));
        let (pps, _kbps, players) = seed_spread(&base, 1..=4);
        assert_eq!(pps.count(), 4);
        // Different seeds, same physics: total pps varies by a few percent.
        let cv = pps.std_dev() / pps.mean();
        assert!(cv < 0.15, "cross-seed cv = {cv}");
        assert!((10.0..22.0).contains(&players.mean()));
    }
}
