//! Parallel parameter sweeps.
//!
//! A single simulation run is strictly single-threaded (determinism), but
//! independent runs are embarrassingly parallel. [`run_parallel`] fans a set
//! of scenarios out across OS threads and collects a compact [`RunSummary`]
//! per run — the tool behind multi-seed confidence intervals and the
//! provisioning sweeps.

use crate::pipeline::MainRun;
use csprov_analysis::{summarize_sessions, Welford};
use csprov_game::ScenarioConfig;
use csprov_net::Direction;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A worker thread panicked while processing one work item.
///
/// The panic is contained to the item: [`work_steal`] catches it, keeps
/// draining the queue, and reports every failure instead of aborting the
/// process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item whose worker panicked.
    pub index: usize,
    /// Rendered panic payload (or a placeholder for non-string payloads).
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Every contained panic from one [`work_steal`] call, sorted by item
/// index. Guaranteed non-empty when returned as an error, so a multi-item
/// fault (say, three shards of a fleet dying for different reasons) is
/// diagnosable from a single run instead of one-failure-per-rerun.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanics {
    failures: Vec<WorkerPanic>,
}

impl WorkerPanics {
    fn new(mut failures: Vec<WorkerPanic>) -> WorkerPanics {
        failures.sort_by_key(|a| a.index);
        WorkerPanics { failures }
    }

    /// The lowest-indexed failure (the one legacy callers reported).
    pub fn first(&self) -> &WorkerPanic {
        // Construction guarantees non-emptiness; an empty failure set is
        // returned as Ok, never as WorkerPanics.
        &self.failures[0]
    }

    /// Number of failed items.
    pub fn count(&self) -> usize {
        self.failures.len()
    }

    /// Failed item indices, ascending.
    pub fn indices(&self) -> Vec<usize> {
        self.failures.iter().map(|p| p.index).collect()
    }

    /// Every contained failure, sorted by item index.
    pub fn failures(&self) -> &[WorkerPanic] {
        &self.failures
    }
}

impl fmt::Display for WorkerPanics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let indices: Vec<String> = self.failures.iter().map(|p| p.index.to_string()).collect();
        write!(
            f,
            "{} worker panic(s) on items [{}]; first: {}",
            self.failures.len(),
            indices.join(", "),
            self.first()
        )
    }
}

impl std::error::Error for WorkerPanics {}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f` over every item across a fixed pool of worker threads and
/// returns the outputs in input order.
///
/// Workers claim items from a shared atomic cursor (work-stealing): a thread
/// that finishes a short item immediately starts the next instead of idling
/// at a wave barrier. Each `f` call runs on exactly one item, so outputs are
/// independent of thread count and claim order.
///
/// A panicking `f` does not abort the process: the panic is caught, the
/// worker moves on to the next item, and the call returns every failure
/// (sorted by item index) as one [`WorkerPanics`] error, so a run with
/// several independent faults is diagnosable in a single pass.
pub fn work_steal<I, T, F>(items: &[I], f: F) -> Result<Vec<T>, WorkerPanics>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let mut failures: Vec<WorkerPanic> = Vec::new();
    let mut results: Vec<(usize, T)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut failed = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(idx) else { break };
                        match catch_unwind(AssertUnwindSafe(|| f(idx, item))) {
                            Ok(out) => mine.push((idx, out)),
                            Err(payload) => failed.push(WorkerPanic {
                                index: idx,
                                message: panic_message(payload),
                            }),
                        }
                    }
                    (mine, failed)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok((mine, failed)) => {
                    results.extend(mine);
                    failures.extend(failed);
                }
                // Unreachable in practice (worker bodies catch panics), but
                // joining consumes the payload so the scope cannot re-panic.
                Err(payload) => failures.push(WorkerPanic {
                    index: usize::MAX,
                    message: panic_message(payload),
                }),
            }
        }
    });
    if !failures.is_empty() {
        return Err(WorkerPanics::new(failures));
    }
    results.sort_by_key(|&(idx, _)| idx);
    Ok(results.into_iter().map(|(_, out)| out).collect())
}

/// Compact, `Send` summary of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// The seed that produced it.
    pub seed: u64,
    /// Total packets observed.
    pub total_packets: u64,
    /// Mean packet rate, packets per second (total, in, out).
    pub mean_pps: [f64; 3],
    /// Mean bandwidth, kilobits per second (total, in, out).
    pub mean_kbps: [f64; 3],
    /// Mean application payload size (in, out).
    pub mean_size: [f64; 2],
    /// Time-averaged player count.
    pub mean_players: f64,
    /// Established / attempted connections.
    pub sessions: (u64, u64),
}

impl RunSummary {
    /// Reduces a finished run.
    pub fn from_run(run: &MainRun) -> RunSummary {
        let secs = run.config.duration.as_secs_f64();
        let c = &run.analysis.counts;
        let p_in = c.packets_in(Direction::Inbound);
        let p_out = c.packets_in(Direction::Outbound);
        let b_in = c.wire_bytes_in(Direction::Inbound);
        let b_out = c.wire_bytes_in(Direction::Outbound);
        let s = summarize_sessions(&run.outcome.sessions);
        let mean = |b: u64, p: u64| if p > 0 { b as f64 / p as f64 } else { 0.0 };
        RunSummary {
            seed: run.config.seed,
            total_packets: p_in + p_out,
            mean_pps: [
                (p_in + p_out) as f64 / secs,
                p_in as f64 / secs,
                p_out as f64 / secs,
            ],
            mean_kbps: [
                (b_in + b_out) as f64 * 8.0 / secs / 1000.0,
                b_in as f64 * 8.0 / secs / 1000.0,
                b_out as f64 * 8.0 / secs / 1000.0,
            ],
            mean_size: [
                mean(c.app_bytes_in(Direction::Inbound), p_in),
                mean(c.app_bytes_in(Direction::Outbound), p_out),
            ],
            mean_players: run.outcome.mean_players,
            sessions: (s.established, s.attempted),
        }
    }
}

/// Runs every scenario across a fixed pool of worker threads and returns
/// summaries in input order.
///
/// Workers claim scenarios from a shared atomic cursor, so a thread that
/// finishes a short run immediately starts the next one instead of idling
/// at a wave barrier until the slowest run of its cohort completes. Each
/// run is still strictly single-threaded, so every summary is bit-identical
/// to a serial `RunSummary::from_run(&MainRun::execute(cfg))`.
pub fn run_parallel(scenarios: Vec<ScenarioConfig>) -> Vec<RunSummary> {
    work_steal(&scenarios, |_, cfg| {
        RunSummary::from_run(&MainRun::execute(cfg.clone()))
    })
    .unwrap_or_else(|p| panic!("sweep worker panicked: {p}"))
}

/// Multi-seed statistics for one scenario shape: runs `seeds` copies in
/// parallel and returns per-metric Welford accumulators
/// `(pps_total, kbps_total, mean_players)`.
pub fn seed_spread(
    base: &ScenarioConfig,
    seeds: impl IntoIterator<Item = u64>,
) -> (Welford, Welford, Welford) {
    let scenarios: Vec<ScenarioConfig> = seeds
        .into_iter()
        .map(|seed| {
            let mut cfg = base.clone();
            cfg.seed = seed;
            cfg
        })
        .collect();
    let mut pps = Welford::new();
    let mut kbps = Welford::new();
    let mut players = Welford::new();
    for s in run_parallel(scenarios) {
        pps.push(s.mean_pps[0]);
        kbps.push(s.mean_kbps[0]);
        players.push(s.mean_players);
    }
    (pps, kbps, players)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_sim::SimDuration;

    #[test]
    fn parallel_matches_serial() {
        let cfg = ScenarioConfig::new(5, SimDuration::from_mins(3));
        let serial = RunSummary::from_run(&MainRun::execute(cfg.clone()));
        let parallel = run_parallel(vec![cfg.clone(), cfg]);
        assert_eq!(parallel[0], serial, "determinism must survive threading");
        assert_eq!(parallel[1], serial);
    }

    #[test]
    fn work_stealing_matches_serial_element_for_element() {
        // Mixed durations so workers drift out of lockstep: the claim order
        // under work-stealing differs from input order, but every summary
        // must still equal its serial counterpart, in input order.
        let cfgs: Vec<ScenarioConfig> = (0..5)
            .map(|i| ScenarioConfig::new(40 + i, SimDuration::from_secs(30 + 45 * (i % 3))))
            .collect();
        let serial: Vec<RunSummary> = cfgs
            .iter()
            .map(|cfg| RunSummary::from_run(&MainRun::execute(cfg.clone())))
            .collect();
        let parallel = run_parallel(cfgs);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_sweep_returns_empty() {
        assert!(run_parallel(Vec::new()).is_empty());
    }

    #[test]
    fn work_steal_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = work_steal(&items, |i, &x| (i as u64, x * 2)).unwrap();
        for (i, &(idx, doubled)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(doubled, items[i] * 2);
        }
    }

    #[test]
    fn work_steal_contains_worker_panics() {
        // Panicking items must surface as one typed error retaining every
        // failure, not abort the process or poison the scope.
        let items: Vec<u32> = (0..32).collect();
        let err = work_steal(&items, |_, &x| {
            assert!(x != 7 && x != 20, "bad item {x}");
            x
        })
        .unwrap_err();
        assert_eq!(err.count(), 2, "both failures must be retained");
        assert_eq!(err.indices(), vec![7, 20]);
        assert_eq!(err.first().index, 7, "lowest index leads");
        assert!(
            err.first().message.contains("bad item 7"),
            "message: {}",
            err.first().message
        );
        assert!(
            err.failures()[1].message.contains("bad item 20"),
            "message: {}",
            err.failures()[1].message
        );
        let rendered = err.to_string();
        assert!(rendered.contains("2 worker panic(s)"), "{rendered}");
        assert!(rendered.contains("[7, 20]"), "{rendered}");

        // And a clean pass over the same items still works afterwards.
        let ok = work_steal(&items, |_, &x| x).unwrap();
        assert_eq!(ok, items);
    }

    #[test]
    fn results_in_input_order() {
        let cfgs: Vec<ScenarioConfig> = (0..6)
            .map(|i| ScenarioConfig::new(100 + i, SimDuration::from_mins(1)))
            .collect();
        let out = run_parallel(cfgs);
        let seeds: Vec<u64> = out.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![100, 101, 102, 103, 104, 105]);
    }

    #[test]
    fn seed_spread_is_tight_at_steady_state() {
        let base = ScenarioConfig::new(0, SimDuration::from_mins(10));
        let (pps, _kbps, players) = seed_spread(&base, 1..=4);
        assert_eq!(pps.count(), 4);
        // Different seeds, same physics: total pps varies by a few percent.
        let cv = pps.std_dev() / pps.mean();
        assert!(cv < 0.15, "cross-seed cv = {cv}");
        assert!((10.0..22.0).contains(&players.mean()));
    }
}
