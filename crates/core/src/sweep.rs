//! Parallel parameter sweeps.
//!
//! A single simulation run is strictly single-threaded (determinism), but
//! independent runs are embarrassingly parallel. [`run_parallel`] fans a set
//! of scenarios out across OS threads and collects a compact [`RunSummary`]
//! per run — the tool behind multi-seed confidence intervals and the
//! provisioning sweeps.

use crate::pipeline::MainRun;
use csprov_analysis::{summarize_sessions, Welford};
use csprov_game::ScenarioConfig;
use csprov_net::Direction;

/// Compact, `Send` summary of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// The seed that produced it.
    pub seed: u64,
    /// Total packets observed.
    pub total_packets: u64,
    /// Mean packet rate, packets per second (total, in, out).
    pub mean_pps: [f64; 3],
    /// Mean bandwidth, kilobits per second (total, in, out).
    pub mean_kbps: [f64; 3],
    /// Mean application payload size (in, out).
    pub mean_size: [f64; 2],
    /// Time-averaged player count.
    pub mean_players: f64,
    /// Established / attempted connections.
    pub sessions: (u64, u64),
}

impl RunSummary {
    /// Reduces a finished run.
    pub fn from_run(run: &MainRun) -> RunSummary {
        let secs = run.config.duration.as_secs_f64();
        let c = &run.analysis.counts;
        let p_in = c.packets_in(Direction::Inbound);
        let p_out = c.packets_in(Direction::Outbound);
        let b_in = c.wire_bytes_in(Direction::Inbound);
        let b_out = c.wire_bytes_in(Direction::Outbound);
        let s = summarize_sessions(&run.outcome.sessions);
        let mean = |b: u64, p: u64| if p > 0 { b as f64 / p as f64 } else { 0.0 };
        RunSummary {
            seed: run.config.seed,
            total_packets: p_in + p_out,
            mean_pps: [
                (p_in + p_out) as f64 / secs,
                p_in as f64 / secs,
                p_out as f64 / secs,
            ],
            mean_kbps: [
                (b_in + b_out) as f64 * 8.0 / secs / 1000.0,
                b_in as f64 * 8.0 / secs / 1000.0,
                b_out as f64 * 8.0 / secs / 1000.0,
            ],
            mean_size: [
                mean(c.app_bytes_in(Direction::Inbound), p_in),
                mean(c.app_bytes_in(Direction::Outbound), p_out),
            ],
            mean_players: run.outcome.mean_players,
            sessions: (s.established, s.attempted),
        }
    }
}

/// Runs every scenario on its own OS thread (up to the machine's
/// parallelism, in waves) and returns summaries in input order.
pub fn run_parallel(scenarios: Vec<ScenarioConfig>) -> Vec<RunSummary> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut out: Vec<Option<RunSummary>> = vec![None; scenarios.len()];
    let mut queue: Vec<(usize, ScenarioConfig)> = scenarios.into_iter().enumerate().collect();
    while !queue.is_empty() {
        let wave: Vec<(usize, ScenarioConfig)> = queue.drain(..queue.len().min(workers)).collect();
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = wave
                .into_iter()
                .map(|(idx, cfg)| {
                    scope.spawn(move || (idx, RunSummary::from_run(&MainRun::execute(cfg))))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect::<Vec<_>>()
        });
        for (idx, summary) in results {
            out[idx] = Some(summary);
        }
    }
    out.into_iter().map(Option::unwrap).collect()
}

/// Multi-seed statistics for one scenario shape: runs `seeds` copies in
/// parallel and returns per-metric Welford accumulators
/// `(pps_total, kbps_total, mean_players)`.
pub fn seed_spread(
    base: &ScenarioConfig,
    seeds: impl IntoIterator<Item = u64>,
) -> (Welford, Welford, Welford) {
    let scenarios: Vec<ScenarioConfig> = seeds
        .into_iter()
        .map(|seed| {
            let mut cfg = base.clone();
            cfg.seed = seed;
            cfg
        })
        .collect();
    let mut pps = Welford::new();
    let mut kbps = Welford::new();
    let mut players = Welford::new();
    for s in run_parallel(scenarios) {
        pps.push(s.mean_pps[0]);
        kbps.push(s.mean_kbps[0]);
        players.push(s.mean_players);
    }
    (pps, kbps, players)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_sim::SimDuration;

    #[test]
    fn parallel_matches_serial() {
        let cfg = ScenarioConfig::new(5, SimDuration::from_mins(3));
        let serial = RunSummary::from_run(&MainRun::execute(cfg.clone()));
        let parallel = run_parallel(vec![cfg.clone(), cfg]);
        assert_eq!(parallel[0], serial, "determinism must survive threading");
        assert_eq!(parallel[1], serial);
    }

    #[test]
    fn results_in_input_order() {
        let cfgs: Vec<ScenarioConfig> = (0..6)
            .map(|i| ScenarioConfig::new(100 + i, SimDuration::from_mins(1)))
            .collect();
        let out = run_parallel(cfgs);
        let seeds: Vec<u64> = out.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![100, 101, 102, 103, 104, 105]);
    }

    #[test]
    fn seed_spread_is_tight_at_steady_state() {
        let base = ScenarioConfig::new(0, SimDuration::from_mins(10));
        let (pps, _kbps, players) = seed_spread(&base, 1..=4);
        assert_eq!(pps.count(), 4);
        // Different seeds, same physics: total pps varies by a few percent.
        let cv = pps.std_dev() / pps.mean();
        assert!(cv < 0.15, "cross-seed cv = {cv}");
        assert!((10.0..22.0).contains(&players.mean()));
    }
}
