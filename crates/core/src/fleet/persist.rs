//! Checkpoint files for crash-safe fleet execution.
//!
//! Serializes [`ShardState`] and [`FacilityAnalysis`] into the
//! `csprov-state/1` container (see [`csprov_analysis::persist`]): a
//! versioned, checksummed, zero-dependency binary format. Every field
//! travels as a fixed-width little-endian integer or an `f64` bit
//! pattern inside a length-prefixed, CRC-framed section, so a decode
//! either reproduces the encoded state bit-exactly or fails with a
//! typed [`StateError`] — never a panic, never a partial value.
//!
//! On-disk protocol: one shard per file, `shard-NNNNN.state`, written
//! atomically ([`write_checkpoint_atomic`]: write to a dot-prefixed tmp
//! name in the same directory, `fsync`, `rename`). A crash mid-write
//! leaves at worst a tmp file the resume scan ignores; a crash between
//! shards leaves a directory of complete, individually-verifiable
//! checkpoints.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use csprov_analysis::persist::{
    get_counting_sink, get_rate_series, get_size_histogram, put_counting_sink, put_rate_series,
    put_size_histogram,
};
use csprov_analysis::{
    ByteReader, ByteWriter, StateError, KIND_FACILITY, KIND_HEARTBEAT, KIND_SHARD,
};
use csprov_obs::HeartbeatRecord;
use csprov_sim::SimDuration;

use super::{FacilityAnalysis, FleetConfig, FleetError, FleetMerger, ShardState};

/// Section tags inside a `csprov-state/1` container. Shard and facility
/// containers use the same tag numbering for the shared analyzer payloads.
const TAG_META: u32 = 1;
const TAG_COUNTS: u32 = 2;
const TAG_PER_MINUTE: u32 = 3;
const TAG_PER_MINUTE_IN: u32 = 4;
const TAG_PER_MINUTE_OUT: u32 = 5;
const TAG_SIZES: u32 = 6;
const TAG_PLAYERS: u32 = 7;

/// Why a checkpoint file could not be used.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (open, read, write, fsync, rename).
    Io(std::io::Error),
    /// The bytes are not a valid `csprov-state/1` shard container.
    State(StateError),
    /// The file decoded but does not belong to this fleet configuration.
    Mismatch(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io: {e}"),
            CheckpointError::State(e) => write!(f, "state: {e}"),
            CheckpointError::Mismatch(what) => write!(f, "mismatch: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<StateError> for CheckpointError {
    fn from(e: StateError) -> Self {
        CheckpointError::State(e)
    }
}

/// Encodes a [`ShardState`] as a `csprov-state/1` shard container.
pub fn encode_shard_state(s: &ShardState) -> Result<Vec<u8>, StateError> {
    let mut w = ByteWriter::container(KIND_SHARD);
    w.section(TAG_META, |w| {
        w.put_u64(s.shard as u64);
        w.put_u64(s.seed);
        w.put_u64(s.duration.as_nanos());
        w.put_f64(s.mean_players);
        w.put_u64(s.sessions.0);
        w.put_u64(s.sessions.1);
    });
    let mut counts = ByteWriter::new();
    put_counting_sink(&mut counts, &s.counts)?;
    w.section(TAG_COUNTS, |w| w.put_bytes(counts.into_bytes().as_slice()));
    for (tag, series) in [
        (TAG_PER_MINUTE, &s.per_minute),
        (TAG_PER_MINUTE_IN, &s.per_minute_in),
        (TAG_PER_MINUTE_OUT, &s.per_minute_out),
    ] {
        let mut body = ByteWriter::new();
        put_rate_series(&mut body, series)?;
        w.section(tag, |w| w.put_bytes(body.into_bytes().as_slice()));
    }
    w.section(TAG_SIZES, |w| {
        let mut body = ByteWriter::new();
        put_size_histogram(&mut body, &s.sizes);
        w.put_bytes(body.into_bytes().as_slice());
    });
    w.section(TAG_PLAYERS, |w| {
        w.put_u64(s.players_per_minute.len() as u64);
        for &p in &s.players_per_minute {
            w.put_u32(p);
        }
    });
    Ok(w.into_bytes())
}

/// Decodes a `csprov-state/1` shard container back into a [`ShardState`].
pub fn decode_shard_state(bytes: &[u8]) -> Result<ShardState, StateError> {
    let (kind, mut r) = ByteReader::container(bytes)?;
    if kind != KIND_SHARD {
        return Err(StateError::WrongKind {
            expected: KIND_SHARD,
            found: kind,
        });
    }
    let mut meta = r.section(TAG_META)?;
    let shard = usize::try_from(meta.get_u64()?).map_err(|_| StateError::BadField("shard"))?;
    let seed = meta.get_u64()?;
    let duration = SimDuration::from_nanos(meta.get_u64()?);
    let mean_players = meta.get_f64()?;
    let sessions = (meta.get_u64()?, meta.get_u64()?);
    meta.finish()?;

    let mut counts = r.section(TAG_COUNTS)?;
    let counts_sink = get_counting_sink(&mut counts)?;
    counts.finish()?;

    let mut series = Vec::with_capacity(3);
    for tag in [TAG_PER_MINUTE, TAG_PER_MINUTE_IN, TAG_PER_MINUTE_OUT] {
        let mut body = r.section(tag)?;
        series.push(get_rate_series(&mut body)?);
        body.finish()?;
    }
    let per_minute_out = series.pop().ok_or(StateError::Truncated)?;
    let per_minute_in = series.pop().ok_or(StateError::Truncated)?;
    let per_minute = series.pop().ok_or(StateError::Truncated)?;

    let mut sizes = r.section(TAG_SIZES)?;
    let size_hist = get_size_histogram(&mut sizes)?;
    sizes.finish()?;

    let mut players = r.section(TAG_PLAYERS)?;
    let n = players.get_count(4)?;
    let mut players_per_minute = Vec::with_capacity(n);
    for _ in 0..n {
        players_per_minute.push(players.get_u32()?);
    }
    players.finish()?;
    r.finish()?;

    Ok(ShardState {
        shard,
        seed,
        duration,
        counts: counts_sink,
        per_minute,
        per_minute_in,
        per_minute_out,
        sizes: size_hist,
        players_per_minute,
        mean_players,
        sessions,
    })
}

/// Encodes a [`FacilityAnalysis`] as a `csprov-state/1` facility container.
pub fn encode_facility(a: &FacilityAnalysis) -> Result<Vec<u8>, StateError> {
    let mut w = ByteWriter::container(KIND_FACILITY);
    w.section(TAG_META, |w| {
        w.put_u64(a.shards as u64);
        w.put_u64(a.dropped_bins);
        w.put_u64(a.sessions.0);
        w.put_u64(a.sessions.1);
    });
    let mut counts = ByteWriter::new();
    put_counting_sink(&mut counts, &a.counts)?;
    w.section(TAG_COUNTS, |w| w.put_bytes(counts.into_bytes().as_slice()));
    for (tag, series) in [
        (TAG_PER_MINUTE, &a.per_minute),
        (TAG_PER_MINUTE_IN, &a.per_minute_in),
        (TAG_PER_MINUTE_OUT, &a.per_minute_out),
    ] {
        let mut body = ByteWriter::new();
        put_rate_series(&mut body, series)?;
        w.section(tag, |w| w.put_bytes(body.into_bytes().as_slice()));
    }
    w.section(TAG_SIZES, |w| {
        let mut body = ByteWriter::new();
        put_size_histogram(&mut body, &a.sizes);
        w.put_bytes(body.into_bytes().as_slice());
    });
    w.section(TAG_PLAYERS, |w| {
        w.put_u64(a.players_per_minute.len() as u64);
        for &p in &a.players_per_minute {
            w.put_u64(p);
        }
    });
    Ok(w.into_bytes())
}

/// Decodes a `csprov-state/1` facility container.
pub fn decode_facility(bytes: &[u8]) -> Result<FacilityAnalysis, StateError> {
    let (kind, mut r) = ByteReader::container(bytes)?;
    if kind != KIND_FACILITY {
        return Err(StateError::WrongKind {
            expected: KIND_FACILITY,
            found: kind,
        });
    }
    let mut meta = r.section(TAG_META)?;
    let shards = usize::try_from(meta.get_u64()?).map_err(|_| StateError::BadField("shards"))?;
    let dropped_bins = meta.get_u64()?;
    let sessions = (meta.get_u64()?, meta.get_u64()?);
    meta.finish()?;

    let mut counts = r.section(TAG_COUNTS)?;
    let counts_sink = get_counting_sink(&mut counts)?;
    counts.finish()?;

    let mut series = Vec::with_capacity(3);
    for tag in [TAG_PER_MINUTE, TAG_PER_MINUTE_IN, TAG_PER_MINUTE_OUT] {
        let mut body = r.section(tag)?;
        series.push(get_rate_series(&mut body)?);
        body.finish()?;
    }
    let per_minute_out = series.pop().ok_or(StateError::Truncated)?;
    let per_minute_in = series.pop().ok_or(StateError::Truncated)?;
    let per_minute = series.pop().ok_or(StateError::Truncated)?;

    let mut sizes = r.section(TAG_SIZES)?;
    let size_hist = get_size_histogram(&mut sizes)?;
    sizes.finish()?;

    let mut players = r.section(TAG_PLAYERS)?;
    let n = players.get_count(8)?;
    let mut players_per_minute = Vec::with_capacity(n);
    for _ in 0..n {
        players_per_minute.push(players.get_u64()?);
    }
    players.finish()?;
    r.finish()?;

    Ok(FacilityAnalysis {
        shards,
        counts: counts_sink,
        per_minute,
        per_minute_in,
        per_minute_out,
        sizes: size_hist,
        players_per_minute,
        dropped_bins,
        sessions,
    })
}

/// Encodes a worker heartbeat as a `csprov-state/1` heartbeat container:
/// one meta section carrying the eight [`HeartbeatRecord`] fields.
pub fn encode_heartbeat(rec: &HeartbeatRecord) -> Vec<u8> {
    let mut w = ByteWriter::container(KIND_HEARTBEAT);
    w.section(TAG_META, |w| {
        w.put_u64(rec.shard);
        w.put_u8(rec.state);
        w.put_u64(rec.sim_ns);
        w.put_u64(rec.horizon_ns);
        w.put_u64(rec.retries);
        w.put_u64(rec.checkpoints);
        w.put_u64(rec.wall_ms);
        w.put_u64(rec.unix_ms);
    });
    w.into_bytes()
}

/// Decodes a `csprov-state/1` heartbeat container.
pub fn decode_heartbeat(bytes: &[u8]) -> Result<HeartbeatRecord, StateError> {
    let (kind, mut r) = ByteReader::container(bytes)?;
    if kind != KIND_HEARTBEAT {
        return Err(StateError::WrongKind {
            expected: KIND_HEARTBEAT,
            found: kind,
        });
    }
    let mut meta = r.section(TAG_META)?;
    let rec = HeartbeatRecord {
        shard: meta.get_u64()?,
        state: meta.get_u8()?,
        sim_ns: meta.get_u64()?,
        horizon_ns: meta.get_u64()?,
        retries: meta.get_u64()?,
        checkpoints: meta.get_u64()?,
        wall_ms: meta.get_u64()?,
        unix_ms: meta.get_u64()?,
    };
    meta.finish()?;
    r.finish()?;
    Ok(rec)
}

/// The heartbeat sidecar file name for a shard: `shard-00042.hb`. Lives
/// next to the checkpoint in the state directory; the resume scan ignores
/// it (it is not a `.state` file) and the serving plane's watchdog scan
/// reads it.
pub fn heartbeat_file_name(shard: usize) -> String {
    format!("shard-{shard:05}.hb")
}

/// Parses a heartbeat sidecar name back to its shard index; `None` for
/// anything that is not exactly `shard-NNNNN.hb`.
fn parse_heartbeat_file_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("shard-")?.strip_suffix(".hb")?;
    if digits.len() != 5 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Writes a heartbeat sidecar via tmp + rename so readers never observe a
/// torn record. Unlike checkpoints there is deliberately no `fsync`:
/// heartbeats are ephemeral liveness signals rewritten every few hundred
/// milliseconds, and losing one to a crash is exactly the signal the
/// watchdog exists to notice.
pub fn write_heartbeat(dir: &Path, rec: &HeartbeatRecord) -> Result<PathBuf, CheckpointError> {
    let shard = usize::try_from(rec.shard).map_err(|_| CheckpointError::Mismatch("shard"))?;
    let final_path = dir.join(heartbeat_file_name(shard));
    let tmp_path = dir.join(format!(".shard-{shard:05}.hb.tmp"));
    fs::write(&tmp_path, encode_heartbeat(rec))?;
    if let Err(e) = fs::rename(&tmp_path, &final_path) {
        let _ = fs::remove_file(&tmp_path);
        return Err(CheckpointError::Io(e));
    }
    Ok(final_path)
}

/// A heartbeat record plus how long ago the sidecar file was last
/// written, measured on the *observer's* clock via the file mtime.
///
/// The embedded [`HeartbeatRecord::unix_ms`] orders records (it came from
/// the writer's clock and survives replays bit-exactly); the observed age
/// is what freshness judgments must use, because a worker machine whose
/// clock is skewed would otherwise read as stalled while beating (lagging
/// clock) or alive while dead (fast clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObservedHeartbeat {
    /// The decoded sidecar record.
    pub rec: HeartbeatRecord,
    /// Milliseconds between the sidecar's mtime and the scan, on the
    /// scanning machine's clock (0 when the filesystem reports no mtime).
    pub age_ms: u64,
}

/// Scans `dir` for heartbeat sidecars, returning every record that
/// decodes cleanly in shard order together with its observed file age.
/// Undecodable or foreign files are skipped silently — a torn or stale
/// sidecar simply means that shard reports no fresh beat, which the
/// watchdog handles.
pub fn scan_heartbeats_observed(dir: &Path) -> Vec<ObservedHeartbeat> {
    let mut found: BTreeMap<usize, ObservedHeartbeat> = BTreeMap::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let now = std::time::SystemTime::now();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(shard) = parse_heartbeat_file_name(name) else {
            continue;
        };
        let age_ms = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| now.duration_since(mtime).ok())
            .map_or(0, |age| age.as_millis() as u64);
        let Ok(bytes) = fs::read(entry.path()) else {
            continue;
        };
        let Ok(rec) = decode_heartbeat(&bytes) else {
            continue;
        };
        if rec.shard == shard as u64 {
            found.insert(shard, ObservedHeartbeat { rec, age_ms });
        }
    }
    found.into_values().collect()
}

/// [`scan_heartbeats_observed`] without the ages, for callers that only
/// need the records (ordering, final retry accounting).
pub fn scan_heartbeats(dir: &Path) -> Vec<HeartbeatRecord> {
    scan_heartbeats_observed(dir)
        .into_iter()
        .map(|o| o.rec)
        .collect()
}

/// The canonical checkpoint file name for a shard: `shard-00042.state`.
/// Five digits keep lexicographic order aligned with shard order for
/// fleets up to 100k servers.
pub fn shard_file_name(shard: usize) -> String {
    format!("shard-{shard:05}.state")
}

/// Parses a checkpoint file name back to its shard index. Returns `None`
/// for anything that is not exactly `shard-NNNNN.state` (tmp files, other
/// droppings) so the resume scan skips them silently.
fn parse_shard_file_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("shard-")?.strip_suffix(".state")?;
    if digits.len() != 5 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Writes `state`'s checkpoint into `dir` atomically: encode, write to a
/// dot-prefixed tmp name in the same directory, `fsync`, then `rename`
/// over the final name. Readers therefore only ever observe a complete
/// file or no file; a crash mid-write leaves a tmp file the resume scan
/// ignores.
pub fn write_checkpoint_atomic(dir: &Path, state: &ShardState) -> Result<PathBuf, CheckpointError> {
    let bytes = encode_shard_state(state)?;
    let final_path = dir.join(shard_file_name(state.shard));
    let tmp_path = dir.join(format!(".shard-{:05}.state.tmp", state.shard));
    let mut file = fs::File::create(&tmp_path)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    if let Err(e) = fs::rename(&tmp_path, &final_path) {
        let _ = fs::remove_file(&tmp_path);
        return Err(CheckpointError::Io(e));
    }
    Ok(final_path)
}

/// The result of scanning a state directory for resumable checkpoints.
#[derive(Default)]
pub struct CheckpointScan {
    /// Shards with a valid, config-matching checkpoint, in shard order.
    pub states: BTreeMap<usize, ShardState>,
    /// Files that looked like checkpoints but failed to decode or did not
    /// match the fleet configuration. These shards are recomputed.
    pub rejected: Vec<(PathBuf, CheckpointError)>,
}

/// Scans `dir` for valid checkpoints belonging to `config`.
///
/// Every `shard-NNNNN.state` file with `NNNNN < config.servers` is read
/// and decoded; a checkpoint is accepted only if its recorded shard index,
/// derived seed, and duration match what the fleet would compute for that
/// shard — so a directory from a different fleet (or an edited file) can
/// never smuggle foreign traffic into the report. Invalid files are
/// returned in `rejected`, not treated as fatal: the resume recomputes
/// those shards from the same derived seeds, preserving byte-identity.
pub fn load_checkpoints(
    dir: &Path,
    config: &FleetConfig,
) -> Result<CheckpointScan, CheckpointError> {
    let mut scan = CheckpointScan::default();
    let entries = fs::read_dir(dir)?;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(shard) = parse_shard_file_name(name) else {
            continue;
        };
        if shard >= config.servers {
            continue;
        }
        let path = entry.path();
        match read_checkpoint(&path, shard, config) {
            Ok(state) => {
                scan.states.insert(shard, state);
            }
            Err(err) => scan.rejected.push((path, err)),
        }
    }
    Ok(scan)
}

/// Reads and validates one checkpoint file against the fleet config.
/// Public for the coordinator, which collects checkpoints incrementally
/// as worker processes finish shards instead of scanning the whole
/// directory each poll.
pub fn read_checkpoint(
    path: &Path,
    shard: usize,
    config: &FleetConfig,
) -> Result<ShardState, CheckpointError> {
    let bytes = fs::read(path)?;
    let state = decode_shard_state(&bytes)?;
    if state.shard != shard {
        return Err(CheckpointError::Mismatch("shard index"));
    }
    if state.seed != config.scenario(shard).seed {
        return Err(CheckpointError::Mismatch("derived seed"));
    }
    if state.duration != SimDuration::from_mins(config.minutes) {
        return Err(CheckpointError::Mismatch("duration"));
    }
    Ok(state)
}

/// Folds shard checkpoint files into a facility aggregate without holding
/// more than one decoded state at a time: each file streams through the
/// [`FleetMerger`] accumulator and is dropped before the next is read.
/// Because superposition merging is commutative and associative, this
/// flat left fold is byte-identical to any tree-shaped fold over the same
/// files, so 10k+ states merge in O(1) decoded-state memory.
///
/// Files are folded in shard order regardless of argument order; a
/// duplicate shard index is an error (merging the same traffic twice
/// would silently double-count it).
pub fn merge_state_files(
    paths: &[PathBuf],
) -> Result<(FacilityAnalysis, Vec<super::ShardStats>), MergeFilesError> {
    let ordered = order_state_files(paths)?;
    let mut merger = FleetMerger::new();
    fold_state_files(&mut merger, &ordered)?;
    merger.finish().map_err(MergeFilesError::Merge)
}

/// Orders checkpoint files canonically by their *decoded* shard index
/// (file names are not trusted) and rejects duplicates. Shared by the
/// flat fold and every level of the hierarchical merge tree.
fn order_state_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, MergeFilesError> {
    let mut ordered: BTreeMap<usize, &PathBuf> = BTreeMap::new();
    for path in paths {
        let bytes = fs::read(path)
            .map_err(|e| MergeFilesError::File(path.clone(), CheckpointError::Io(e)))?;
        let state = decode_shard_state(&bytes)
            .map_err(|e| MergeFilesError::File(path.clone(), CheckpointError::State(e)))?;
        if ordered.insert(state.shard, path).is_some() {
            return Err(MergeFilesError::DuplicateShard(state.shard));
        }
    }
    Ok(ordered.into_values().cloned().collect())
}

/// Streams `paths` through `merger`, holding one decoded state at a time.
fn fold_state_files(merger: &mut FleetMerger, paths: &[PathBuf]) -> Result<(), MergeFilesError> {
    for path in paths {
        let bytes = fs::read(path)
            .map_err(|e| MergeFilesError::File(path.clone(), CheckpointError::Io(e)))?;
        let state = decode_shard_state(&bytes)
            .map_err(|e| MergeFilesError::File(path.clone(), CheckpointError::State(e)))?;
        merger.push(&state).map_err(MergeFilesError::Merge)?;
    }
    Ok(())
}

/// Folds shard checkpoint files through a hierarchical merge tree with
/// fan-in `fan_in`: leaves fold runs of `fan_in` files through the same
/// streaming machinery as [`merge_state_files`], then mergers absorb each
/// other `fan_in` at a time until one remains.
///
/// Because superposition merging is commutative and associative, the
/// result is byte-identical to the flat fold for every tree shape; the
/// tree exists for the coordinator, where each completed worker range can
/// be folded as it lands and the partial mergers (O(shards) scalars each,
/// not decoded states) combine at the end. Intermediate nodes stay
/// [`FleetMerger`]s rather than encoded facility files: a facility
/// container cannot carry the per-shard bin lengths the global
/// dropped-bins settlement needs.
pub fn merge_state_tree(
    paths: &[PathBuf],
    fan_in: usize,
) -> Result<(FacilityAnalysis, Vec<super::ShardStats>), MergeFilesError> {
    let fan_in = fan_in.max(2);
    let ordered = order_state_files(paths)?;
    let mut level: Vec<FleetMerger> = Vec::with_capacity(ordered.len().div_ceil(fan_in));
    for chunk in ordered.chunks(fan_in) {
        let mut merger = FleetMerger::new();
        fold_state_files(&mut merger, chunk)?;
        level.push(merger);
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(fan_in));
        let mut nodes = level.into_iter();
        while let Some(mut base) = nodes.next() {
            for _ in 1..fan_in {
                match nodes.next() {
                    Some(other) => base.absorb(other).map_err(MergeFilesError::Merge)?,
                    None => break,
                }
            }
            next.push(base);
        }
        level = next;
    }
    match level.pop() {
        Some(merger) => merger.finish().map_err(MergeFilesError::Merge),
        None => Err(MergeFilesError::Merge(FleetError::NoServers)),
    }
}

/// Why [`merge_state_files`] failed.
#[derive(Debug)]
pub enum MergeFilesError {
    /// A file could not be read or decoded.
    File(PathBuf, CheckpointError),
    /// Two files carry the same shard index.
    DuplicateShard(usize),
    /// The decoded states could not be merged.
    Merge(FleetError),
}

impl std::fmt::Display for MergeFilesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeFilesError::File(path, e) => write!(f, "{}: {e}", path.display()),
            MergeFilesError::DuplicateShard(s) => {
                write!(
                    f,
                    "duplicate shard {s}: merging it twice would double-count"
                )
            }
            MergeFilesError::Merge(e) => write!(f, "merge: {e}"),
        }
    }
}

impl std::error::Error for MergeFilesError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state(shard: usize) -> ShardState {
        let config = FleetConfig::new("persist-test", 99, 4, 3);
        let cfg = config.scenario(shard);
        let run = crate::pipeline::MainRun::execute(cfg);
        run.into_fleet_shard(shard)
    }

    #[test]
    fn shard_round_trip_is_bit_exact() {
        let state = sample_state(1);
        let bytes = encode_shard_state(&state).unwrap();
        let back = decode_shard_state(&bytes).unwrap();
        assert_eq!(back.shard, state.shard);
        assert_eq!(back.seed, state.seed);
        assert_eq!(back.duration, state.duration);
        assert_eq!(back.sessions, state.sessions);
        assert_eq!(back.players_per_minute, state.players_per_minute);
        assert_eq!(back.mean_players.to_bits(), state.mean_players.to_bits());
        assert_eq!(back.counts.total_packets(), state.counts.total_packets());
        assert_eq!(back.per_minute.bins(), state.per_minute.bins());
        // The strongest check: re-encoding the decoded state reproduces
        // the original bytes exactly.
        assert_eq!(encode_shard_state(&back).unwrap(), bytes);
    }

    #[test]
    fn facility_round_trip_is_bit_exact() {
        let states = vec![sample_state(0), sample_state(1)];
        let facility = FacilityAnalysis::merge(states).unwrap();
        let bytes = encode_facility(&facility).unwrap();
        let back = decode_facility(&bytes).unwrap();
        assert_eq!(encode_facility(&back).unwrap(), bytes);
        assert_eq!(back.shards, facility.shards);
        assert_eq!(back.players_per_minute, facility.players_per_minute);
    }

    #[test]
    fn wrong_kind_is_typed() {
        let state = sample_state(0);
        let bytes = encode_shard_state(&state).unwrap();
        assert!(matches!(
            decode_facility(&bytes),
            Err(StateError::WrongKind { .. })
        ));
    }

    #[test]
    fn file_names_round_trip_and_reject_droppings() {
        assert_eq!(shard_file_name(42), "shard-00042.state");
        assert_eq!(parse_shard_file_name("shard-00042.state"), Some(42));
        assert_eq!(parse_shard_file_name(".shard-00042.state.tmp"), None);
        assert_eq!(parse_shard_file_name("shard-42.state"), None);
        assert_eq!(parse_shard_file_name("shard-0004x.state"), None);
        assert_eq!(parse_shard_file_name("report.txt"), None);
    }

    #[test]
    fn atomic_write_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("csprov-persist-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let config = FleetConfig::new("persist-test", 99, 4, 3);
        let state = sample_state(2);
        let path = write_checkpoint_atomic(&dir, &state).unwrap();
        assert_eq!(path.file_name().unwrap(), "shard-00002.state");
        // A stray tmp file and a foreign file must both be ignored.
        fs::write(dir.join(".shard-00003.state.tmp"), b"partial").unwrap();
        fs::write(dir.join("notes.txt"), b"hello").unwrap();
        let scan = load_checkpoints(&dir, &config).unwrap();
        assert_eq!(scan.states.len(), 1);
        assert!(scan.rejected.is_empty());
        assert_eq!(scan.states[&2].seed, state.seed);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_checkpoints_are_rejected_not_fatal() {
        let dir = std::env::temp_dir().join(format!("csprov-persist-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let config = FleetConfig::new("persist-test", 99, 4, 3);

        // Corrupt: flip a byte mid-file.
        let state = sample_state(0);
        let mut bytes = encode_shard_state(&state).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(dir.join(shard_file_name(0)), &bytes).unwrap();

        // Mismatched: a valid checkpoint from a different fleet seed.
        let other = FleetConfig::new("persist-test", 100, 4, 3);
        let foreign = crate::pipeline::MainRun::execute(other.scenario(1)).into_fleet_shard(1);
        fs::write(
            dir.join(shard_file_name(1)),
            encode_shard_state(&foreign).unwrap(),
        )
        .unwrap();

        // Out of range: shard index beyond the fleet is skipped entirely.
        let high = sample_state(2);
        fs::write(
            dir.join(shard_file_name(20000)),
            encode_shard_state(&high).unwrap(),
        )
        .unwrap();

        let scan = load_checkpoints(&dir, &config).unwrap();
        assert!(scan.states.is_empty());
        assert_eq!(scan.rejected.len(), 2);
        assert!(scan
            .rejected
            .iter()
            .any(|(_, e)| matches!(e, CheckpointError::State(_))));
        assert!(scan
            .rejected
            .iter()
            .any(|(_, e)| matches!(e, CheckpointError::Mismatch("derived seed"))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_state_files_matches_in_memory_merge() {
        let dir = std::env::temp_dir().join(format!("csprov-persist-merge-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let states: Vec<ShardState> = (0..3).map(sample_state).collect();
        let mut paths = Vec::new();
        for s in &states {
            paths.push(write_checkpoint_atomic(&dir, s).unwrap());
        }
        // Feed the files in reverse order; the fold must still be canonical.
        paths.reverse();
        let (from_files, stats) = merge_state_files(&paths).unwrap();
        let in_memory = FacilityAnalysis::merge(states).unwrap();
        assert_eq!(
            encode_facility(&from_files).unwrap(),
            encode_facility(&in_memory).unwrap()
        );
        assert_eq!(stats.len(), 3);
        assert!(stats.windows(2).all(|w| w[0].shard < w[1].shard));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tree_merge_is_byte_identical_to_the_flat_fold_for_every_fan_in() {
        let dir = std::env::temp_dir().join(format!("csprov-persist-tree-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let config = FleetConfig::new("persist-test", 99, 4, 3);
        let mut paths = Vec::new();
        for shard in 0..4 {
            let cfg = config.scenario(shard);
            let run = crate::pipeline::MainRun::execute(cfg);
            paths.push(write_checkpoint_atomic(&dir, &run.into_fleet_shard(shard)).unwrap());
        }
        // Feed out of order; every tree shape must canonicalize.
        paths.swap(0, 3);
        let (flat, flat_stats) = merge_state_files(&paths).unwrap();
        let flat_bytes = encode_facility(&flat).unwrap();
        for fan_in in [2, 3, 16] {
            let (tree, tree_stats) = merge_state_tree(&paths, fan_in).unwrap();
            assert_eq!(
                encode_facility(&tree).unwrap(),
                flat_bytes,
                "fan-in {fan_in} diverged from the flat fold"
            );
            assert_eq!(tree_stats, flat_stats, "fan-in {fan_in} stats diverged");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tree_merge_rejects_duplicates_and_empty_input() {
        let dir = std::env::temp_dir().join(format!("csprov-persist-tdup-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            merge_state_tree(&[], 4),
            Err(MergeFilesError::Merge(FleetError::NoServers))
        ));
        let state = sample_state(0);
        let a = write_checkpoint_atomic(&dir, &state).unwrap();
        let b = dir.join("copy.state");
        fs::copy(&a, &b).unwrap();
        assert!(matches!(
            merge_state_tree(&[a, b], 2),
            Err(MergeFilesError::DuplicateShard(0))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn observed_scan_reports_mtime_age_not_embedded_clock() {
        let dir = std::env::temp_dir().join(format!("csprov-persist-obs-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // A record whose writer clock lies an hour in the past: the
        // observed age must still come from the file's mtime (fresh).
        let rec = HeartbeatRecord {
            shard: 3,
            state: csprov_obs::SHARD_RUNNING,
            sim_ns: 42,
            horizon_ns: 100,
            retries: 0,
            checkpoints: 0,
            wall_ms: 5,
            unix_ms: csprov_obs::unix_ms().saturating_sub(3_600_000),
        };
        write_heartbeat(&dir, &rec).unwrap();
        let scanned = scan_heartbeats_observed(&dir);
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].rec, rec);
        assert!(
            scanned[0].age_ms < 60_000,
            "age must be mtime-derived, got {} ms",
            scanned[0].age_ms
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_round_trip_and_scan() {
        let dir = std::env::temp_dir().join(format!("csprov-persist-hb-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let rec = HeartbeatRecord {
            shard: 7,
            state: csprov_obs::SHARD_RUNNING,
            sim_ns: 123_456_789,
            horizon_ns: 600_000_000_000,
            retries: 1,
            checkpoints: 0,
            wall_ms: 250,
            unix_ms: 1_700_000_000_000,
        };
        let bytes = encode_heartbeat(&rec);
        assert_eq!(decode_heartbeat(&bytes).unwrap(), rec);
        // A heartbeat container is not a shard checkpoint.
        assert!(matches!(
            decode_shard_state(&bytes),
            Err(StateError::WrongKind { .. })
        ));

        let path = write_heartbeat(&dir, &rec).unwrap();
        assert_eq!(path.file_name().unwrap(), "shard-00007.hb");
        // Torn tmp files, garbage sidecars, and foreign names are skipped.
        fs::write(dir.join(".shard-00008.hb.tmp"), b"partial").unwrap();
        fs::write(dir.join("shard-00009.hb"), b"garbage").unwrap();
        fs::write(dir.join("notes.hb"), b"hello").unwrap();
        let scanned = scan_heartbeats(&dir);
        assert_eq!(scanned, vec![rec]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_sidecars_are_invisible_to_the_resume_scan() {
        let dir = std::env::temp_dir().join(format!("csprov-persist-hbr-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let config = FleetConfig::new("persist-test", 99, 4, 3);
        let rec = HeartbeatRecord {
            shard: 0,
            state: csprov_obs::SHARD_RUNNING,
            sim_ns: 1,
            horizon_ns: 2,
            retries: 0,
            checkpoints: 0,
            wall_ms: 0,
            unix_ms: 1,
        };
        write_heartbeat(&dir, &rec).unwrap();
        let scan = load_checkpoints(&dir, &config).unwrap();
        assert!(scan.states.is_empty());
        assert!(scan.rejected.is_empty(), "a .hb file is not a checkpoint");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_shard_files_are_an_error() {
        let dir = std::env::temp_dir().join(format!("csprov-persist-dup-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let state = sample_state(0);
        let a = write_checkpoint_atomic(&dir, &state).unwrap();
        let b = dir.join("copy.state");
        fs::copy(&a, &b).unwrap();
        let err = merge_state_files(&[a, b]).unwrap_err();
        assert!(matches!(err, MergeFilesError::DuplicateShard(0)));
        let _ = fs::remove_dir_all(&dir);
    }
}
