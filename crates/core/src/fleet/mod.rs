//! Facility-scale fleet simulation with mergeable analysis state.
//!
//! Section IV-B's provisioning argument is about an *aggregation* of
//! servers: aggregate game traffic is effectively linear in active players,
//! so a hosting facility can be sized by extrapolation from one busy
//! server. This module runs that extrapolation forward: it shards hundreds
//! of independent simulated servers across the work-stealing pool
//! ([`crate::sweep::work_steal`]), reduces each run to a compact
//! [`ShardState`] *inside the worker* (the full per-run analysis — 18,000
//! stored 1 s bins, variance-time ladders, flow tables — is dropped before
//! the next shard starts), and folds the shard states into one
//! [`FacilityAnalysis`] with the typed merge operations from
//! `csprov_analysis`. Memory is O(shards), not O(shards × trace).
//!
//! Determinism contract:
//! - shard seeds are derived per index ([`csprov_sim::RngStream::derive_seed`]),
//!   so each shard's traffic is independent of fleet size and thread count;
//! - shard states are folded in canonical shard-index order, and the
//!   per-bin merge is integer superposition, so any permutation of the same
//!   shard set produces a byte-identical facility aggregate;
//! - dropped tail bins (shards whose run emitted more minute bins than the
//!   shortest shard) are counted up front across the whole fleet — a
//!   pairwise running total would depend on fold order — and surfaced in
//!   the report instead of silently truncated.
//!
//! On top of the merged state, [`ProvisioningReport`] answers the paper's
//! provisioning questions: aggregate packet rate and bandwidth (mean,
//! p95/p99), the per-player slope and its fit quality, the aggregate Hurst
//! exponent, and an uplink-sizing line in the spirit of the paper's OC-3
//! discussion.

pub mod coord;
pub mod persist;

use crate::pipeline::MainRun;
use crate::sweep::{panic_message, work_steal};
use csprov_analysis::report::{fmt_f64, TextTable};
use csprov_analysis::{
    fit_line, rs_hurst, summarize_sessions, MergeError, RateSeries, SizeHistogram,
};
use csprov_game::{ScenarioConfig, WorldInstruments};
use csprov_net::CountingSink;
use csprov_obs::{
    unix_ms, HeartbeatRecord, Journal, MetricsRegistry, Profile, ProfileSnapshot, ShardHealthBoard,
    SHARD_DONE, SHARD_LOST, SHARD_RUNNING,
};
use csprov_sim::{Pacer, RngStream, SimDuration, Speed};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a fleet run should simulate.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Variant label for reports.
    pub label: String,
    /// Facility-level seed; per-shard seeds are derived from it.
    pub seed: u64,
    /// Number of independent servers.
    pub servers: usize,
    /// Simulated minutes per server.
    pub minutes: u64,
    /// Session-duration shape (log-normal sigma) for every shard.
    pub session_sigma: f64,
    /// Replay speed per shard. [`Speed::Max`] (the default) runs as fast
    /// as the hardware allows; a paced speed wall-clocks every shard,
    /// which changes nothing about what a shard computes — pacing only
    /// sleeps — so the aggregate stays byte-identical.
    pub speed: Speed,
    /// Per-shard retry policy for contained worker faults.
    pub retry: RetryPolicy,
    /// Deterministic fault injection for tests and drills: listed shards
    /// fail their first N attempts with a typed (non-panicking) error.
    pub fail_plan: Vec<FailSpec>,
    /// Shared per-shard health board workers publish heartbeats into.
    /// Observe-only: the board never feeds back into shard execution, so
    /// the aggregate is byte-identical with or without it attached.
    pub health: Option<Arc<ShardHealthBoard>>,
    /// When true, every worker keeps a thread-local wall-time profile of
    /// its shard (execute / encode / checkpoint frames, with the sim and
    /// pipeline frames nested inside) and the coordinator absorbs the
    /// snapshots into [`FleetRun::profile`]. Observe-only.
    pub profile: bool,
}

impl FleetConfig {
    /// A fleet with the default session-duration shape.
    pub fn new(label: &str, seed: u64, servers: usize, minutes: u64) -> Self {
        FleetConfig {
            label: label.to_string(),
            seed,
            servers,
            minutes,
            session_sigma: 1.05,
            speed: Speed::Max,
            retry: RetryPolicy::default(),
            fail_plan: Vec::new(),
            health: None,
            profile: false,
        }
    }

    /// The scenario shard `shard` runs. Per-shard seeds are derived by
    /// label+index rather than taken consecutively, so shard traffic stays
    /// decorrelated however large the facility grows, and shard `k` of a
    /// 4-server fleet is identical to shard `k` of a 400-server fleet.
    pub fn scenario(&self, shard: usize) -> ScenarioConfig {
        let root = RngStream::new(self.seed);
        let mut cfg = ScenarioConfig::new(
            root.derive_seed("fleet.shard", shard as u64),
            SimDuration::from_mins(self.minutes),
        );
        cfg.workload.session_sigma = self.session_sigma;
        cfg.workload.session_range.1 = SimDuration::from_hours(12);
        cfg
    }
}

/// How often a failing shard is retried, and how the retry delay is
/// accounted.
///
/// Backoff is *simulated*, not slept: a retry after attempt `k` charges
/// `backoff_ns << (k - 1)` nanoseconds to the run's recovery accounting
/// ([`FleetCoverage::backoff_ns`]) and to the journal, so retry behavior
/// is a deterministic function of the failure pattern rather than of
/// wall-clock scheduling. Nothing about a retry changes what the shard
/// computes — the re-run uses the same derived seed, so a shard that
/// eventually succeeds is byte-identical to one that succeeded first try.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per shard (including the first); clamped to ≥ 1.
    pub attempts: u32,
    /// Base backoff charged for the first retry, doubling per attempt.
    pub backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff_ns: 1_000_000_000, // 1 simulated second
        }
    }
}

impl RetryPolicy {
    /// Backoff charged when attempt `attempt` (1-based) fails and another
    /// attempt follows.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        self.backoff_ns.saturating_mul(1u64 << shift)
    }
}

/// One entry of a deterministic fault plan: shard `shard` fails its first
/// `failures` attempts with a typed error before running normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailSpec {
    /// Shard index to impair.
    pub shard: usize,
    /// Number of leading attempts that fail (`u32::MAX` = permanent).
    pub failures: u32,
    /// Wall milliseconds the worker sleeps before each attempt. Purely a
    /// wall-clock stall — the shard still computes the same bytes — so
    /// watchdog tests can manufacture a silent-but-alive shard on demand.
    pub stall_ms: u64,
}

/// Where (and whether) a fleet run checkpoints shard states.
#[derive(Debug, Clone, Default)]
pub struct FleetPersistence {
    /// Directory for `shard-NNNNN.state` checkpoint files; `None` disables
    /// persistence entirely.
    pub state_dir: Option<PathBuf>,
    /// Load valid checkpoints from `state_dir` before running and skip
    /// those shards (their states merge as if freshly computed — same
    /// derived seeds, so the final report is byte-identical).
    pub resume: bool,
}

impl FleetPersistence {
    /// No persistence: the pre-PR-8 in-memory-only behavior.
    pub fn none() -> Self {
        Self::default()
    }

    /// Checkpoint completed shards into `dir` (no resume).
    pub fn checkpoint_to(dir: impl Into<PathBuf>) -> Self {
        FleetPersistence {
            state_dir: Some(dir.into()),
            resume: false,
        }
    }

    /// Checkpoint into `dir` and first resume whatever valid checkpoints
    /// it already holds.
    pub fn resume_from(dir: impl Into<PathBuf>) -> Self {
        FleetPersistence {
            state_dir: Some(dir.into()),
            resume: true,
        }
    }
}

/// Execution-plane events surfaced to the observer during a fleet run.
///
/// Events fire from worker threads (shard lifecycle) or the coordinator
/// (resume loading); like the shard observer, the callback is read-only
/// with respect to the fleet — the final aggregate cannot depend on it.
#[derive(Debug)]
pub enum FleetEvent<'a> {
    /// A shard finished and its state was reduced.
    ShardDone {
        /// The reduced state (borrowed; the run keeps ownership).
        state: &'a ShardState,
        /// Attempt that succeeded (1-based; 0 for checkpoint loads).
        attempt: u32,
        /// True when the state came from a resume checkpoint, not a run.
        from_checkpoint: bool,
    },
    /// An attempt failed and another one follows.
    ShardRetry {
        /// Shard index.
        shard: usize,
        /// The failing attempt (1-based).
        attempt: u32,
        /// Simulated backoff charged for this retry.
        backoff_ns: u64,
        /// Failure message.
        message: &'a str,
    },
    /// Every attempt failed; the shard is excluded from the merge.
    ShardLost {
        /// Shard index.
        shard: usize,
        /// Attempts consumed.
        attempts: u32,
        /// Final failure message.
        message: &'a str,
    },
    /// A checkpoint file was atomically written for a shard.
    CheckpointWritten {
        /// Shard index.
        shard: usize,
    },
    /// Writing a checkpoint failed (the run continues; the shard's state
    /// is still merged from memory).
    CheckpointFailed {
        /// Shard index.
        shard: usize,
        /// Rendered I/O or encoding error.
        message: &'a str,
    },
    /// A valid checkpoint was loaded during resume.
    ResumeLoaded {
        /// Shard index.
        shard: usize,
    },
    /// A state file in the resume directory was rejected (it will be
    /// recomputed).
    ResumeInvalid {
        /// Rendered decode/validation error, including the path.
        message: &'a str,
    },
}

/// Coverage accounting for a (possibly degraded) fleet run: how much of
/// the configured fleet actually made it into the merged aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetCoverage {
    /// Shards the run was configured for.
    pub configured: usize,
    /// Shards merged into the aggregate.
    pub merged: usize,
    /// Shards permanently lost (retries exhausted), ascending.
    pub lost: Vec<usize>,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// Total simulated backoff charged for those retries.
    pub backoff_ns: u64,
}

impl FleetCoverage {
    /// Full coverage over `n` shards (nothing lost, nothing retried).
    pub fn full(n: usize) -> Self {
        FleetCoverage {
            configured: n,
            merged: n,
            lost: Vec::new(),
            retries: 0,
            backoff_ns: 0,
        }
    }

    /// True when at least one configured shard is missing from the merge:
    /// every headline number is then a lower bound.
    pub fn is_degraded(&self) -> bool {
        !self.lost.is_empty()
    }
}

/// Persistence-side counters for one fleet run. Kept out of the rendered
/// report (and therefore out of the byte-identity contract between
/// resumed and uninterrupted runs); exported via metrics and `/status`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PersistSummary {
    /// Checkpoint files written this run.
    pub checkpoints_written: u64,
    /// Checkpoint writes that failed (the run continued).
    pub checkpoint_failures: u64,
    /// Shards loaded from valid checkpoints instead of recomputed.
    pub resumed: u64,
    /// State files rejected during resume (recomputed instead).
    pub invalid_checkpoints: u64,
}

/// Why a fleet run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// `servers == 0`: there is nothing to aggregate.
    NoServers,
    /// A shard's worker panicked outside the retry loop; the panic was
    /// contained and converted.
    ShardFailed {
        /// Index of the failing shard.
        shard: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// Every shard exhausted its retries; there is nothing to merge.
    AllShardsLost {
        /// Shards the run was configured for.
        configured: usize,
        /// Final failure message of the lowest-indexed shard.
        message: String,
    },
    /// Shard states could not be folded (incompatible analyzer shapes).
    Merge(MergeError),
    /// The merged aggregate cannot support the report (e.g. no players).
    Degenerate(&'static str),
    /// The checkpoint directory could not be created or scanned.
    StateDir(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoServers => write!(f, "fleet has no servers to aggregate"),
            FleetError::ShardFailed { shard, message } => {
                write!(f, "shard {shard} failed: {message}")
            }
            FleetError::AllShardsLost {
                configured,
                message,
            } => {
                write!(
                    f,
                    "all {configured} shards lost after retries; first failure: {message}"
                )
            }
            FleetError::Merge(e) => write!(f, "shard merge failed: {e}"),
            FleetError::Degenerate(what) => write!(f, "degenerate aggregate: {what}"),
            FleetError::StateDir(message) => write!(f, "fleet state dir: {message}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<MergeError> for FleetError {
    fn from(e: MergeError) -> Self {
        FleetError::Merge(e)
    }
}

/// The mergeable reduction of one shard's [`MainRun`].
///
/// Everything here is either a merge-capable analyzer or a scalar, so a
/// fleet retains O(shards) state. The heavyweight per-run analyzers
/// (10 ms/1 s stored series, variance-time ladders, flow tables) die with
/// the `MainRun` inside the worker.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// Shard index within the fleet (also the canonical merge order).
    pub shard: usize,
    /// The derived seed the shard ran with.
    pub seed: u64,
    /// Configured run length.
    pub duration: SimDuration,
    /// Packet/byte totals.
    pub counts: CountingSink,
    /// Per-minute totals.
    pub per_minute: RateSeries,
    /// Per-minute inbound.
    pub per_minute_in: RateSeries,
    /// Per-minute outbound.
    pub per_minute_out: RateSeries,
    /// Packet-size distribution.
    pub sizes: SizeHistogram,
    /// Active players sampled each minute.
    pub players_per_minute: Vec<u32>,
    /// Time-averaged player count.
    pub mean_players: f64,
    /// Established / attempted connections.
    pub sessions: (u64, u64),
}

impl ShardState {
    /// Reduces a finished run to its mergeable state, dropping the rest.
    pub fn from_run(shard: usize, run: MainRun) -> ShardState {
        let s = summarize_sessions(&run.outcome.sessions);
        ShardState {
            shard,
            seed: run.config.seed,
            duration: run.config.duration,
            counts: run.analysis.counts,
            per_minute: run.analysis.per_minute,
            per_minute_in: run.analysis.per_minute_in,
            per_minute_out: run.analysis.per_minute_out,
            sizes: run.analysis.sizes,
            players_per_minute: run.outcome.players_per_minute,
            mean_players: run.outcome.mean_players,
            sessions: (s.established, s.attempted),
        }
    }

    /// Mean packet rate over the shard's configured duration.
    pub fn mean_pps(&self) -> f64 {
        self.counts.total_packets() as f64 / self.duration.as_secs_f64()
    }
}

/// One compact reporting row per shard (kept alongside the aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// The derived seed the shard ran with.
    pub seed: u64,
    /// Time-averaged player count.
    pub mean_players: f64,
    /// Mean packet rate.
    pub mean_pps: f64,
    /// Stored minute bins before truncation.
    pub minute_bins: usize,
}

/// The facility aggregate: every shard's traffic superposed.
#[derive(Debug, Clone)]
pub struct FacilityAnalysis {
    /// Shards folded in.
    pub shards: usize,
    /// Aggregate packet/byte totals.
    pub counts: CountingSink,
    /// Aggregate per-minute totals (bins are element-wise sums).
    pub per_minute: RateSeries,
    /// Aggregate per-minute inbound.
    pub per_minute_in: RateSeries,
    /// Aggregate per-minute outbound.
    pub per_minute_out: RateSeries,
    /// Aggregate packet-size distribution.
    pub sizes: SizeHistogram,
    /// Aggregate active players per minute (summed over shards, truncated
    /// to the common bin prefix).
    pub players_per_minute: Vec<u64>,
    /// Tail minute bins dropped by truncating every shard to the shortest
    /// shard's bin count (counted on the total per-minute series; the
    /// directional series truncate identically).
    pub dropped_bins: u64,
    /// Established / attempted connections across the fleet.
    pub sessions: (u64, u64),
}

impl FacilityAnalysis {
    /// Folds shard states into one aggregate via [`FleetMerger`].
    ///
    /// Every merge ingredient is commutative — integer bin superposition,
    /// min-folds for truncation, statistics recomputed from the final
    /// stored bins — so the result is byte-for-byte independent of the
    /// order the states arrive in (pinned by the permutation test below).
    pub fn merge(states: Vec<ShardState>) -> Result<FacilityAnalysis, FleetError> {
        let mut merger = FleetMerger::new();
        for s in &states {
            merger.push(s)?;
        }
        let (facility, _) = merger.finish()?;
        Ok(facility)
    }

    /// Mean aggregate player count over the common bin prefix.
    pub fn mean_players(&self) -> f64 {
        if self.players_per_minute.is_empty() {
            return 0.0;
        }
        self.players_per_minute.iter().sum::<u64>() as f64 / self.players_per_minute.len() as f64
    }
}

/// Streaming fold of [`ShardState`]s into a [`FacilityAnalysis`].
///
/// Holds exactly one accumulator plus O(shards) *scalars* (per-shard bin
/// lengths and reporting rows), never more than one decoded shard state at
/// a time — the property that lets `repro fleet merge` fold 10k+ state
/// files without materializing them all. A k-ary tree fold would hold k
/// decoded states per level for the same result; because superposition is
/// commutative and associative (integer adds; Welford statistics are
/// recomputed over the final stored bins; truncation is a min-fold), the
/// degenerate streaming fold is both the cheapest and byte-identical to
/// any tree shape or push order.
///
/// The dropped-tail-bin total needs the *global* minimum bin count, which
/// a pairwise running count cannot provide order-independently; the merger
/// keeps the per-shard bin lengths (8 bytes each) and settles the total in
/// [`FleetMerger::finish`].
#[derive(Default)]
pub struct FleetMerger {
    acc: Option<FacilityAcc>,
    bin_lens: Vec<u64>,
    players: Vec<u64>,
    stats: Vec<ShardStats>,
}

struct FacilityAcc {
    counts: CountingSink,
    per_minute: RateSeries,
    per_minute_in: RateSeries,
    per_minute_out: RateSeries,
    sizes: SizeHistogram,
    sessions: (u64, u64),
}

impl FleetMerger {
    /// An empty merger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shard states folded in so far.
    pub fn merged(&self) -> usize {
        self.bin_lens.len()
    }

    /// Per-shard reporting rows pushed so far (unsorted until `finish`).
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Folds one shard state into the accumulator.
    pub fn push(&mut self, s: &ShardState) -> Result<(), FleetError> {
        self.stats.push(ShardStats {
            shard: s.shard,
            seed: s.seed,
            mean_players: s.mean_players,
            mean_pps: s.mean_pps(),
            minute_bins: s.per_minute.bins().len(),
        });
        self.bin_lens.push(s.per_minute.bins().len() as u64);

        // The player sampler emits one fewer entry than the rate series
        // (no sample at the closing boundary), so its common prefix runs
        // on its own lengths — padding would invent phantom zero-player
        // minutes and drag the facility mean down. Keeping the sum vector
        // truncated to the running minimum is equivalent to truncating to
        // the global minimum up front: entries past the final minimum are
        // discarded exactly once, whenever the shortest shard arrives.
        if self.acc.is_none() {
            self.players = s.players_per_minute.iter().map(|&p| u64::from(p)).collect();
        } else {
            let keep = self.players.len().min(s.players_per_minute.len());
            self.players.truncate(keep);
            for (agg, add) in self.players.iter_mut().zip(&s.players_per_minute) {
                *agg += u64::from(*add);
            }
        }

        match &mut self.acc {
            // Seed the accumulator from the first shard (clone), so a
            // fleet of one is a bit-for-bit copy of its single shard's
            // analysis, streamed statistics included.
            None => {
                self.acc = Some(FacilityAcc {
                    counts: s.counts.clone(),
                    per_minute: s.per_minute.clone(),
                    per_minute_in: s.per_minute_in.clone(),
                    per_minute_out: s.per_minute_out.clone(),
                    sizes: s.sizes.clone(),
                    sessions: s.sessions,
                });
            }
            Some(acc) => {
                acc.counts.merge(&s.counts);
                // Pairwise dropped counts are discarded in favor of the
                // order-canonical total settled in finish().
                acc.per_minute.merge_superpose(&s.per_minute)?;
                acc.per_minute_in.merge_superpose(&s.per_minute_in)?;
                acc.per_minute_out.merge_superpose(&s.per_minute_out)?;
                acc.sizes.merge(&s.sizes)?;
                acc.sessions.0 += s.sessions.0;
                acc.sessions.1 += s.sessions.1;
            }
        }
        Ok(())
    }

    /// Absorbs another merger: the fold of states A++B, given the folds
    /// of A and of B. Every ingredient is commutative and associative —
    /// integer superposition for bins/counts/sizes, running-min truncation
    /// for the player sums (equivalent to truncating to the global minimum
    /// up front), and concatenation for the per-shard scalars settled in
    /// [`FleetMerger::finish`] — so absorbing partial folds in any tree
    /// shape is byte-identical to one streaming fold over all states.
    /// This is what lets the coordinator fold each worker range as it
    /// completes and combine the partials hierarchically.
    pub fn absorb(&mut self, other: FleetMerger) -> Result<(), FleetError> {
        match (self.acc.as_mut(), other.acc) {
            (None, maybe) => {
                self.acc = maybe;
                self.players = other.players;
            }
            (Some(_), None) => {}
            (Some(acc), Some(theirs)) => {
                acc.counts.merge(&theirs.counts);
                acc.per_minute.merge_superpose(&theirs.per_minute)?;
                acc.per_minute_in.merge_superpose(&theirs.per_minute_in)?;
                acc.per_minute_out.merge_superpose(&theirs.per_minute_out)?;
                acc.sizes.merge(&theirs.sizes)?;
                acc.sessions.0 += theirs.sessions.0;
                acc.sessions.1 += theirs.sessions.1;
                let keep = self.players.len().min(other.players.len());
                self.players.truncate(keep);
                for (agg, add) in self.players.iter_mut().zip(&other.players) {
                    *agg += add;
                }
            }
        }
        self.bin_lens.extend(other.bin_lens);
        self.stats.extend(other.stats);
        Ok(())
    }

    /// Settles the fold: the aggregate plus per-shard rows in canonical
    /// shard order. [`FleetError::NoServers`] if nothing was pushed.
    pub fn finish(mut self) -> Result<(FacilityAnalysis, Vec<ShardStats>), FleetError> {
        let Some(acc) = self.acc else {
            return Err(FleetError::NoServers);
        };
        let min_bins = self.bin_lens.iter().copied().min().unwrap_or(0);
        let dropped_bins: u64 = self.bin_lens.iter().map(|&l| l - min_bins).sum();
        self.stats.sort_by_key(|s| s.shard);
        Ok((
            FacilityAnalysis {
                shards: self.bin_lens.len(),
                counts: acc.counts,
                per_minute: acc.per_minute,
                per_minute_in: acc.per_minute_in,
                per_minute_out: acc.per_minute_out,
                sizes: acc.sizes,
                players_per_minute: self.players,
                dropped_bins,
                sessions: acc.sessions,
            },
            self.stats,
        ))
    }
}

/// The uplink ladder the sizing line chooses from (name, Mbps).
pub const UPLINK_LADDER: [(&str, f64); 6] = [
    ("T-1", 1.544),
    ("10BaseT", 10.0),
    ("T-3/DS-3", 44.736),
    ("OC-3", 155.52),
    ("OC-12", 622.08),
    ("GigE", 1000.0),
];

/// OC-3 payload capacity in kbps, for the paper-style players-per-OC-3 line.
pub const OC3_KBPS: f64 = 155_520.0;

/// The provisioning answers computed from a merged facility aggregate.
#[derive(Debug, Clone)]
pub struct ProvisioningReport {
    /// Variant label.
    pub label: String,
    /// Servers aggregated.
    pub servers: usize,
    /// Simulated minutes per server.
    pub minutes: u64,
    /// Mean aggregate player count.
    pub mean_players: f64,
    /// Mean aggregate packet rate (packets per second).
    pub mean_pps: f64,
    /// 95th-percentile minute-bin packet rate.
    pub p95_pps: f64,
    /// 99th-percentile minute-bin packet rate.
    pub p99_pps: f64,
    /// Mean aggregate bandwidth (Mbps, wire bytes).
    pub mean_mbps: f64,
    /// 95th-percentile minute-bin bandwidth (Mbps).
    pub p95_mbps: f64,
    /// 99th-percentile minute-bin bandwidth (Mbps).
    pub p99_mbps: f64,
    /// Per-player packet rate: the cross-shard regression slope (ratio
    /// `mean_pps / mean_players` for a single-shard fleet).
    pub pps_per_player: f64,
    /// Fit quality of the linearity claim (1.0 for the ratio fallback).
    pub r_squared: f64,
    /// R/S Hurst exponent of the aggregate per-minute rate, when the run
    /// is long enough to estimate one.
    pub hurst: Option<f64>,
    /// Tail minute bins dropped by common-prefix truncation.
    pub dropped_bins: u64,
    /// Mean per-player bandwidth (kbps).
    pub per_player_kbps: f64,
    /// Chosen uplink name.
    pub uplink: &'static str,
    /// Chosen uplink capacity (Mbps, per link).
    pub uplink_mbps: f64,
    /// Parallel links needed (1 unless even the ladder top is exceeded).
    pub uplink_count: u32,
    /// Mean utilization of the chosen uplink(s).
    pub uplink_utilization: f64,
    /// Players one OC-3 sustains at the measured per-player bandwidth.
    pub players_per_oc3: f64,
    /// Coverage block: how much of the configured fleet the headline
    /// numbers actually describe. When shards were lost, aggregate totals
    /// (players, pps, Mbps) are lower bounds and the rendered report says
    /// so explicitly; per-player ratios remain unbiased estimates over the
    /// surviving shards.
    pub coverage: FleetCoverage,
}

/// Deterministic nearest-rank quantile of an unsorted sample.
fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl ProvisioningReport {
    /// Computes the provisioning answer from a merged facility aggregate.
    /// Public so out-of-process merges (`repro fleet merge`) produce the
    /// same report the in-process fleet engine does.
    pub fn build(
        config: &FleetConfig,
        facility: &FacilityAnalysis,
        shards: &[ShardStats],
        coverage: FleetCoverage,
    ) -> Result<ProvisioningReport, FleetError> {
        let pps = facility.per_minute.pps();
        let kbps = facility.per_minute.kbps();
        if pps.is_empty() {
            return Err(FleetError::Degenerate("no aggregate minute bins"));
        }
        // Runs shorter than two minutes have no per-minute player samples;
        // fall back to the sum of the shards' time-averaged counts.
        let mean_players = if facility.players_per_minute.is_empty() {
            shards.iter().map(|s| s.mean_players).sum()
        } else {
            facility.mean_players()
        };
        if mean_players <= 0.0 {
            return Err(FleetError::Degenerate("aggregate has no players"));
        }
        let mean_pps = pps.iter().sum::<f64>() / pps.len() as f64;
        let mean_kbps = kbps.iter().sum::<f64>() / kbps.len() as f64;
        let mbps: Vec<f64> = kbps.iter().map(|k| k / 1000.0).collect();
        let mean_mbps = mean_kbps / 1000.0;

        // Linearity: aggregate rate of the first k shards against their
        // combined player count — the paper's "effectively linear to the
        // number of active players". One shard has no slope; fall back to
        // the ratio through the origin.
        let mut points = Vec::with_capacity(shards.len());
        let mut cum_players = 0.0;
        let mut cum_pps = 0.0;
        for s in shards {
            cum_players += s.mean_players;
            cum_pps += s.mean_pps;
            points.push((cum_players, cum_pps));
        }
        let (pps_per_player, r_squared) = match fit_line(&points) {
            Some(fit) => (fit.slope, fit.r_squared),
            None => (mean_pps / mean_players, 1.0),
        };

        let hurst = rs_hurst(&pps, 8).map(|(h, _)| h);

        let per_player_kbps = mean_kbps / mean_players;
        let p99_mbps = quantile(&mbps, 0.99);
        let (uplink, uplink_mbps, uplink_count) =
            match UPLINK_LADDER.iter().find(|(_, cap)| *cap >= p99_mbps) {
                Some(&(name, cap)) => (name, cap, 1),
                None => {
                    let (name, cap) = UPLINK_LADDER[UPLINK_LADDER.len() - 1];
                    (name, cap, (p99_mbps / cap).ceil() as u32)
                }
            };
        let uplink_utilization = mean_mbps / (uplink_mbps * f64::from(uplink_count));

        Ok(ProvisioningReport {
            label: config.label.clone(),
            servers: config.servers,
            minutes: config.minutes,
            mean_players,
            mean_pps,
            p95_pps: quantile(&pps, 0.95),
            p99_pps: quantile(&pps, 0.99),
            mean_mbps,
            p95_mbps: quantile(&mbps, 0.95),
            p99_mbps,
            pps_per_player,
            r_squared,
            hurst,
            dropped_bins: facility.dropped_bins,
            per_player_kbps,
            uplink,
            uplink_mbps,
            uplink_count,
            uplink_utilization,
            players_per_oc3: OC3_KBPS / per_player_kbps,
            coverage,
        })
    }

    /// Estimated players the lost shards would have contributed, linearly
    /// extrapolated from the surviving shards' mean.
    pub fn players_unaccounted(&self) -> f64 {
        if self.coverage.merged == 0 {
            return 0.0;
        }
        self.mean_players * self.coverage.lost.len() as f64 / self.coverage.merged as f64
    }

    /// The one-line uplink answer, in the spirit of the paper's observation
    /// that its single busy server consumed a steady fraction of a T-1.
    pub fn sizing_line(&self) -> String {
        let link = if self.uplink_count > 1 {
            format!("{}x {}", self.uplink_count, self.uplink)
        } else {
            self.uplink.to_string()
        };
        let caveat = if self.coverage.is_degraded() {
            format!(
                " [lower bound: {}/{} shards merged]",
                self.coverage.merged, self.coverage.configured
            )
        } else {
            String::new()
        };
        format!(
            "uplink: {} servers ({:.0} players) need {} ({} Mbps) at {:.1}% mean utilization; one OC-3 sustains ~{:.0} players at {} kbps/player{}",
            self.servers,
            self.mean_players,
            link,
            fmt_f64(self.uplink_mbps * f64::from(self.uplink_count), 1),
            self.uplink_utilization * 100.0,
            self.players_per_oc3,
            fmt_f64(self.per_player_kbps, 2),
            caveat,
        )
    }

    /// Renders the report as a metric/value table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(&format!(
            "Provisioning report: {} ({} servers x {} min)",
            self.label, self.servers, self.minutes
        ))
        .header(vec!["metric", "value"]);
        t.row(vec![
            "mean players".to_string(),
            fmt_f64(self.mean_players, 1),
        ]);
        t.row(vec!["mean pps".to_string(), fmt_f64(self.mean_pps, 1)]);
        t.row(vec!["p95 pps".to_string(), fmt_f64(self.p95_pps, 1)]);
        t.row(vec!["p99 pps".to_string(), fmt_f64(self.p99_pps, 1)]);
        t.row(vec!["mean Mbps".to_string(), fmt_f64(self.mean_mbps, 3)]);
        t.row(vec!["p95 Mbps".to_string(), fmt_f64(self.p95_mbps, 3)]);
        t.row(vec!["p99 Mbps".to_string(), fmt_f64(self.p99_mbps, 3)]);
        t.row(vec![
            "pps per player".to_string(),
            fmt_f64(self.pps_per_player, 2),
        ]);
        t.row(vec![
            "linearity r^2".to_string(),
            fmt_f64(self.r_squared, 4),
        ]);
        t.row(vec![
            "aggregate H (R/S)".to_string(),
            self.hurst
                .map(|h| fmt_f64(h, 3))
                .unwrap_or_else(|| "-".to_string()),
        ]);
        t.row(vec![
            "dropped tail bins".to_string(),
            self.dropped_bins.to_string(),
        ]);
        t.row(vec![
            "kbps per player".to_string(),
            fmt_f64(self.per_player_kbps, 2),
        ]);
        let link = if self.uplink_count > 1 {
            format!("{}x {}", self.uplink_count, self.uplink)
        } else {
            self.uplink.to_string()
        };
        t.row(vec![
            "uplink".to_string(),
            format!("{link} ({} Mbps)", fmt_f64(self.uplink_mbps, 1)),
        ]);
        t.row(vec![
            "uplink utilization".to_string(),
            format!("{:.1}%", self.uplink_utilization * 100.0),
        ]);
        t.row(vec![
            "players per OC-3".to_string(),
            fmt_f64(self.players_per_oc3, 0),
        ]);
        t.row(vec![
            "coverage".to_string(),
            format!(
                "{}/{} shards merged",
                self.coverage.merged, self.coverage.configured
            ),
        ]);
        if self.coverage.retries > 0 {
            t.row(vec![
                "shard retries".to_string(),
                format!(
                    "{} ({} ms simulated backoff)",
                    self.coverage.retries,
                    self.coverage.backoff_ns / 1_000_000
                ),
            ]);
        }
        if self.coverage.is_degraded() {
            let lost: Vec<String> = self.coverage.lost.iter().map(|s| s.to_string()).collect();
            t.row(vec!["shards lost".to_string(), lost.join(", ")]);
            t.row(vec![
                "players unaccounted (est)".to_string(),
                fmt_f64(self.players_unaccounted(), 1),
            ]);
            t.row(vec![
                "headline basis".to_string(),
                format!(
                    "lower bound ({} of {} shards missing)",
                    self.coverage.lost.len(),
                    self.coverage.configured
                ),
            ]);
        }
        t
    }
}

/// A finished fleet run: the merged aggregate, per-shard rows, and the
/// provisioning answers.
pub struct FleetRun {
    /// The facility aggregate.
    pub facility: FacilityAnalysis,
    /// One row per surviving shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// The provisioning report over the aggregate (coverage block
    /// included).
    pub report: ProvisioningReport,
    /// Checkpoint/resume counters (all zero without persistence).
    pub persist: PersistSummary,
    /// Merged wall-time profile across every worker plus the coordinator's
    /// own merge frame; `None` unless [`FleetConfig::profile`] was set.
    pub profile: Option<ProfileSnapshot>,
}

impl FleetRun {
    /// Exports fleet aggregates as `fleet.*` metrics.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        registry
            .counter("fleet.shards")
            .add(self.facility.shards as u64);
        registry
            .counter("fleet.packets")
            .add(self.facility.counts.total_packets());
        registry
            .counter("fleet.wire_bytes")
            .add(self.facility.counts.total_wire_bytes());
        registry
            .counter("fleet.dropped_bins")
            .add(self.facility.dropped_bins);
        registry
            .gauge("fleet.mean_players")
            .set(self.report.mean_players as i64);
        registry
            .gauge("fleet.mean_pps")
            .set(self.report.mean_pps as i64);
        registry
            .gauge("fleet.p99_pps")
            .set(self.report.p99_pps as i64);
        registry
            .counter("fleet.shards_lost")
            .add(self.report.coverage.lost.len() as u64);
        registry
            .counter("fleet.shard_retries")
            .add(self.report.coverage.retries);
        registry
            .counter("fleet.checkpoints_written")
            .add(self.persist.checkpoints_written);
        registry
            .counter("fleet.shards_resumed")
            .add(self.persist.resumed);
    }

    /// Emits one journal event per shard plus fleet-level summary events.
    ///
    /// The fleet has no single simulation clock (every shard has its own),
    /// so — like the route-cache events, which use the access ordinal —
    /// these events use the shard ordinal as their time axis. Emission
    /// happens on the coordinating thread after the merge; workers never
    /// touch the journal.
    pub fn emit_journal(&self, journal: &Journal) {
        for s in &self.shards {
            let ordinal = s.shard as u64;
            journal.emit(ordinal, "fleet.shard.pps", ordinal, s.mean_pps as u64);
            journal.emit(
                ordinal,
                "fleet.shard.players",
                ordinal,
                s.mean_players as u64,
            );
        }
        for &shard in &self.report.coverage.lost {
            journal.emit(shard as u64, "fleet.shard.lost", shard as u64, 1);
        }
        let end = self.facility.shards as u64;
        journal.emit(end, "fleet.mean_pps", 0, self.report.mean_pps as u64);
        journal.emit(end, "fleet.dropped_bins", 0, self.facility.dropped_bins);
        if self.report.coverage.retries > 0 {
            journal.emit(end, "fleet.retries", 0, self.report.coverage.retries);
            journal.emit(
                end,
                "fleet.retry_backoff_ns",
                0,
                self.report.coverage.backoff_ns,
            );
        }
    }
}

/// Runs a fleet: shards across the work-stealing pool, reduces each run to
/// its [`ShardState`] in the worker, folds the states in canonical order,
/// and computes the provisioning report.
///
/// Typed failure modes instead of panics: zero servers, every shard lost
/// after retries, incompatible merge shapes, or a degenerate aggregate.
pub fn run_fleet(config: &FleetConfig) -> Result<FleetRun, FleetError> {
    run_fleet_full(config, &FleetPersistence::none(), None)
}

/// [`run_fleet`] with a shard-completion observer for live serving.
///
/// `on_shard` is invoked from the worker thread that finished the shard,
/// immediately after its reduction — the hook the serving plane uses to
/// re-merge an interim facility aggregate while other shards still run.
/// The observer is read-only with respect to the fleet: its return is
/// `()`, shard states are handed to it by reference, and the canonical
/// merge happens afterwards from the untouched results, so the final
/// aggregate cannot depend on observer behavior or timing.
pub fn run_fleet_observed(
    config: &FleetConfig,
    on_shard: Option<&(dyn Fn(&ShardState) + Sync)>,
) -> Result<FleetRun, FleetError> {
    match on_shard {
        None => run_fleet_full(config, &FleetPersistence::none(), None),
        Some(observe) => {
            let forward = |ev: &FleetEvent<'_>| {
                if let FleetEvent::ShardDone { state, .. } = ev {
                    observe(state);
                }
            };
            run_fleet_full(config, &FleetPersistence::none(), Some(&forward))
        }
    }
}

/// The crash-safe fleet engine: [`run_fleet`] plus checkpointing, resume,
/// per-shard retry, degraded-mode merging, and an execution-plane event
/// stream.
///
/// With a `state_dir`, every completed shard is written atomically
/// (`write-tmp + fsync + rename`, see [`persist::write_checkpoint_atomic`])
/// as `shard-NNNNN.state`; with `resume`, shards whose checkpoint decodes
/// and matches the config (seed, duration) are loaded instead of recomputed
/// — derived per-shard seeds make the resumed report byte-identical to an
/// uninterrupted run. A shard whose attempts are exhausted is *lost*, not
/// fatal: the surviving shards merge and the report carries an explicit
/// coverage block. Only a fleet with **no** survivors fails, with
/// [`FleetError::AllShardsLost`].
pub fn run_fleet_full(
    config: &FleetConfig,
    persistence: &FleetPersistence,
    on_event: Option<&(dyn Fn(&FleetEvent<'_>) + Sync)>,
) -> Result<FleetRun, FleetError> {
    if config.servers == 0 {
        return Err(FleetError::NoServers);
    }
    let emit = |ev: FleetEvent<'_>| {
        if let Some(f) = on_event {
            f(&ev);
        }
    };

    let mut summary = PersistSummary::default();
    let state_dir = persistence.state_dir.as_deref();
    if let Some(dir) = state_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| FleetError::StateDir(format!("{}: {e}", dir.display())))?;
    }

    // Resume: load valid checkpoints up front; rejected files are surfaced
    // as events, counted, and recomputed like missing ones.
    let mut loaded: BTreeMap<usize, ShardState> = BTreeMap::new();
    if persistence.resume {
        if let Some(dir) = state_dir {
            let scan = persist::load_checkpoints(dir, config)
                .map_err(|e| FleetError::StateDir(e.to_string()))?;
            for (path, err) in &scan.rejected {
                summary.invalid_checkpoints += 1;
                let message = format!("{}: {err}", path.display());
                emit(FleetEvent::ResumeInvalid { message: &message });
            }
            for (shard, state) in scan.states {
                summary.resumed += 1;
                emit(FleetEvent::ResumeLoaded { shard });
                loaded.insert(shard, state);
            }
        }
    }
    let horizon_ns = SimDuration::from_mins(config.minutes).as_nanos();
    for state in loaded.values() {
        if let Some(board) = &config.health {
            board.done(state.shard, horizon_ns);
        }
        emit(FleetEvent::ShardDone {
            state,
            attempt: 0,
            from_checkpoint: true,
        });
    }

    let todo: Vec<(usize, ScenarioConfig)> = (0..config.servers)
        .filter(|i| !loaded.contains_key(i))
        .map(|i| (i, config.scenario(i)))
        .collect();

    let outcomes = work_steal(&todo, |_, (shard, cfg)| {
        run_one_shard(*shard, cfg, config, state_dir, on_event)
    })
    .map_err(|p| {
        // Unreachable in practice: run_one_shard contains panics itself.
        let first = p.first();
        FleetError::ShardFailed {
            shard: todo
                .get(first.index)
                .map(|(s, _)| *s)
                .unwrap_or(first.index),
            message: first.message.clone(),
        }
    })?;

    let coord_profile = config.profile.then(Profile::new);
    let mut merger = FleetMerger::new();
    {
        let _merge_scope = coord_profile.as_ref().map(|p| p.enter("fleet.merge"));
        for state in loaded.values() {
            merger.push(state)?;
        }
        for outcome in &outcomes {
            if let Some(state) = &outcome.state {
                merger.push(state)?;
            }
        }
    }
    let mut retries = 0u64;
    let mut backoff_ns = 0u64;
    let mut lost: Vec<usize> = Vec::new();
    let mut first_loss: Option<String> = None;
    let mut fleet_profile = coord_profile.as_ref().map(|p| p.snapshot());
    for outcome in &outcomes {
        retries += u64::from(outcome.retries);
        backoff_ns = backoff_ns.saturating_add(outcome.backoff_ns);
        summary.checkpoints_written += u64::from(outcome.checkpoint_written);
        summary.checkpoint_failures += u64::from(outcome.checkpoint_failed);
        if let (Some(total), Some(snap)) = (fleet_profile.as_mut(), outcome.profile.as_ref()) {
            total.absorb(snap);
        }
        if outcome.state.is_none() {
            // `todo` is built in ascending shard order and work_steal
            // returns outcomes in input order, so `lost` is ascending.
            lost.push(outcome.shard);
            if first_loss.is_none() {
                first_loss = Some(outcome.message.clone());
            }
        }
    }
    if merger.merged() == 0 {
        return Err(FleetError::AllShardsLost {
            configured: config.servers,
            message: first_loss.unwrap_or_default(),
        });
    }
    let coverage = FleetCoverage {
        configured: config.servers,
        merged: merger.merged(),
        lost,
        retries,
        backoff_ns,
    };
    let (facility, shards) = merger.finish()?;
    let report = ProvisioningReport::build(config, &facility, &shards, coverage)?;
    Ok(FleetRun {
        facility,
        shards,
        report,
        persist: summary,
        profile: fleet_profile,
    })
}

/// One shard's outcome after the retry loop.
struct ShardOutcome {
    shard: usize,
    state: Option<ShardState>,
    /// Last failure message (empty unless the shard was lost).
    message: String,
    retries: u32,
    backoff_ns: u64,
    checkpoint_written: bool,
    checkpoint_failed: bool,
    /// The worker's wall-time profile snapshot (with [`FleetConfig::profile`]).
    profile: Option<ProfileSnapshot>,
}

/// Wall-clock interval between heartbeat sidecar rewrites. Beats on the
/// in-process board are much cheaper (a few atomic stores) and ride every
/// observer callback; only the file write is rate-limited.
const HEARTBEAT_FILE_INTERVAL: Duration = Duration::from_millis(500);

/// Kernel-observer stride for heartbeat publication: every N executed
/// events the worker refreshes its watermark. Matches the repro binary's
/// telemetry stride so attaching health costs one closure call per stride.
const HEARTBEAT_STRIDE: u64 = 8192;

/// Builds the observer a worker attaches when a health board is present:
/// every stride it publishes the shard's sim-time watermark to the board,
/// and (when a state directory exists) rewrites the `shard-NNNNN.hb`
/// sidecar at most every [`HEARTBEAT_FILE_INTERVAL`].
fn heartbeat_observer(
    shard: usize,
    horizon_ns: u64,
    retries: u32,
    board: Arc<ShardHealthBoard>,
    sidecar_dir: Option<PathBuf>,
    started: Instant,
) -> csprov_sim::Observer {
    let mut last_write: Option<Instant> = None;
    Box::new(move |sim: &csprov_sim::Simulator| {
        let sim_ns = sim.now().as_nanos();
        board.beat(shard, sim_ns);
        let Some(dir) = &sidecar_dir else { return };
        let now = Instant::now();
        if last_write.is_some_and(|t| now.duration_since(t) < HEARTBEAT_FILE_INTERVAL) {
            return;
        }
        last_write = Some(now);
        let rec = HeartbeatRecord {
            shard: shard as u64,
            state: SHARD_RUNNING,
            sim_ns,
            horizon_ns,
            retries: u64::from(retries),
            checkpoints: 0,
            wall_ms: started.elapsed().as_millis() as u64,
            unix_ms: unix_ms(),
        };
        // Best-effort: a failed sidecar write only means a stale beat,
        // which is precisely what the watchdog exists to notice.
        let _ = persist::write_heartbeat(dir, &rec);
    })
}

/// Writes a lifecycle (running/done/lost) heartbeat sidecar for a shard,
/// stamping the wall clocks at write time.
fn write_final_heartbeat(dir: &std::path::Path, started: Instant, mut rec: HeartbeatRecord) {
    rec.wall_ms = started.elapsed().as_millis() as u64;
    rec.unix_ms = unix_ms();
    let _ = persist::write_heartbeat(dir, &rec);
}

/// Runs one shard with retries. Never panics: injected faults are typed,
/// real panics are contained per attempt, and checkpoint-write failures
/// degrade to a counted event (the in-memory state still merges).
fn run_one_shard(
    shard: usize,
    cfg: &ScenarioConfig,
    config: &FleetConfig,
    state_dir: Option<&std::path::Path>,
    on_event: Option<&(dyn Fn(&FleetEvent<'_>) + Sync)>,
) -> ShardOutcome {
    let emit = |ev: FleetEvent<'_>| {
        if let Some(f) = on_event {
            f(&ev);
        }
    };
    let started = Instant::now();
    let horizon_ns = cfg.duration.as_nanos();
    let attempts = config.retry.attempts.max(1);
    let plan = config.fail_plan.iter().find(|f| f.shard == shard);
    let injected = plan.map_or(0, |f| f.failures);
    let stall_ms = plan.map_or(0, |f| f.stall_ms);
    let profile = config.profile.then(Profile::new);
    let sidecar_dir = state_dir.map(std::path::Path::to_path_buf);
    if let Some(board) = &config.health {
        board.start(shard, horizon_ns);
        if let Some(dir) = &sidecar_dir {
            write_final_heartbeat(
                dir,
                started,
                HeartbeatRecord {
                    shard: shard as u64,
                    state: SHARD_RUNNING,
                    sim_ns: 0,
                    horizon_ns,
                    retries: 0,
                    checkpoints: 0,
                    wall_ms: 0,
                    unix_ms: 0,
                },
            );
        }
    }
    let mut retries = 0u32;
    let mut backoff_ns = 0u64;
    let mut last_message = String::new();
    for attempt in 1..=attempts {
        if stall_ms > 0 {
            // Beat once so the board sees a *running* shard, then go
            // silent for the stall: exactly the signature a wedged worker
            // leaves behind, without touching what the shard computes.
            if let Some(board) = &config.health {
                board.beat(shard, 0);
            }
            std::thread::sleep(Duration::from_millis(stall_ms));
        }
        let result: Result<ShardState, String> = if attempt <= injected {
            Err(format!("injected fault (attempt {attempt} of {attempts})"))
        } else {
            let speed = config.speed;
            let observer = config.health.as_ref().map(|board| {
                (
                    HEARTBEAT_STRIDE,
                    heartbeat_observer(
                        shard,
                        horizon_ns,
                        retries,
                        board.clone(),
                        sidecar_dir.clone(),
                        started,
                    ),
                )
            });
            let worker_profile = profile.clone();
            catch_unwind(AssertUnwindSafe(|| {
                let run = {
                    let _scope = worker_profile
                        .as_ref()
                        .map(|p| p.enter("fleet.shard.execute"));
                    let instruments = WorldInstruments {
                        pacer: speed.is_paced().then(|| Pacer::new(speed)),
                        observer,
                        profile: worker_profile.clone(),
                        ..WorldInstruments::default()
                    };
                    MainRun::execute_instrumented(cfg.clone(), instruments, None)
                };
                let _scope = worker_profile
                    .as_ref()
                    .map(|p| p.enter("fleet.shard.encode"));
                run.into_fleet_shard(shard)
            }))
            .map_err(panic_message)
        };
        match result {
            Ok(state) => {
                let mut written = false;
                let mut failed = false;
                if let Some(dir) = state_dir {
                    let _scope = profile.as_ref().map(|p| p.enter("fleet.shard.checkpoint"));
                    match persist::write_checkpoint_atomic(dir, &state) {
                        Ok(_) => {
                            written = true;
                            emit(FleetEvent::CheckpointWritten { shard });
                        }
                        Err(e) => {
                            failed = true;
                            let message = e.to_string();
                            emit(FleetEvent::CheckpointFailed {
                                shard,
                                message: &message,
                            });
                        }
                    }
                }
                if let Some(board) = &config.health {
                    if written {
                        board.checkpoint(shard);
                    }
                    board.done(shard, horizon_ns);
                    if let Some(dir) = &sidecar_dir {
                        write_final_heartbeat(
                            dir,
                            started,
                            HeartbeatRecord {
                                shard: shard as u64,
                                state: SHARD_DONE,
                                sim_ns: horizon_ns,
                                horizon_ns,
                                retries: u64::from(retries),
                                checkpoints: u64::from(written),
                                wall_ms: 0,
                                unix_ms: 0,
                            },
                        );
                    }
                }
                emit(FleetEvent::ShardDone {
                    state: &state,
                    attempt,
                    from_checkpoint: false,
                });
                return ShardOutcome {
                    shard,
                    state: Some(state),
                    message: String::new(),
                    retries,
                    backoff_ns,
                    checkpoint_written: written,
                    checkpoint_failed: failed,
                    profile: profile.as_ref().map(|p| p.snapshot()),
                };
            }
            Err(message) => {
                if attempt < attempts {
                    let delay = config.retry.backoff_for(attempt);
                    retries += 1;
                    backoff_ns = backoff_ns.saturating_add(delay);
                    if let Some(board) = &config.health {
                        board.retry(shard);
                    }
                    emit(FleetEvent::ShardRetry {
                        shard,
                        attempt,
                        backoff_ns: delay,
                        message: &message,
                    });
                } else {
                    if let Some(board) = &config.health {
                        board.lost(shard);
                        if let Some(dir) = &sidecar_dir {
                            write_final_heartbeat(
                                dir,
                                started,
                                HeartbeatRecord {
                                    shard: shard as u64,
                                    state: SHARD_LOST,
                                    sim_ns: 0,
                                    horizon_ns,
                                    retries: u64::from(retries),
                                    checkpoints: 0,
                                    wall_ms: 0,
                                    unix_ms: 0,
                                },
                            );
                        }
                    }
                    emit(FleetEvent::ShardLost {
                        shard,
                        attempts,
                        message: &message,
                    });
                }
                last_message = message;
            }
        }
    }
    ShardOutcome {
        shard,
        state: None,
        message: last_message,
        retries,
        backoff_ns,
        checkpoint_written: false,
        checkpoint_failed: false,
        profile: profile.as_ref().map(|p| p.snapshot()),
    }
}

/// A provisioning report over a *partial* fleet: the shards completed so
/// far. The serving plane re-renders this on every shard completion; the
/// report is labelled with the number of shards actually folded, not the
/// configured fleet size.
pub fn interim_report(
    config: &FleetConfig,
    states: &[ShardState],
) -> Result<ProvisioningReport, FleetError> {
    let mut merger = FleetMerger::new();
    for s in states {
        merger.push(s)?;
    }
    let coverage = FleetCoverage::full(merger.merged());
    let (facility, shards) = merger.finish()?;
    let mut partial = config.clone();
    partial.servers = facility.shards;
    ProvisioningReport::build(&partial, &facility, &shards, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_servers_is_a_typed_error() {
        let cfg = FleetConfig::new("empty", 1, 0, 5);
        assert_eq!(run_fleet(&cfg).err(), Some(FleetError::NoServers));
        assert_eq!(
            FacilityAnalysis::merge(Vec::new()).err(),
            Some(FleetError::NoServers)
        );
    }

    #[test]
    fn shard_seeds_are_stable_across_fleet_sizes() {
        let small = FleetConfig::new("a", 42, 4, 5);
        let large = FleetConfig::new("b", 42, 400, 5);
        for k in 0..4 {
            assert_eq!(small.scenario(k).seed, large.scenario(k).seed);
        }
        assert_ne!(small.scenario(0).seed, small.scenario(1).seed);
    }

    #[test]
    fn fleet_of_one_is_bitwise_its_monolithic_run() {
        let cfg = FleetConfig::new("one", 11, 1, 5);
        let fleet = run_fleet(&cfg).unwrap();
        let reference = MainRun::execute(cfg.scenario(0));
        let f = &fleet.facility;
        let r = &reference.analysis;
        assert_eq!(f.counts.packets, r.counts.packets);
        assert_eq!(f.counts.wire_bytes, r.counts.wire_bytes);
        assert_eq!(f.per_minute.bins(), r.per_minute.bins());
        assert_eq!(f.per_minute_in.bins(), r.per_minute_in.bins());
        assert_eq!(f.per_minute_out.bins(), r.per_minute_out.bins());
        assert_eq!(
            f.per_minute.bin_stats().mean().to_bits(),
            r.per_minute.bin_stats().mean().to_bits()
        );
        assert_eq!(f.sizes.grand_total(), r.sizes.grand_total());
        assert_eq!(f.dropped_bins, 0);
    }

    #[test]
    fn merge_order_does_not_change_the_aggregate() {
        let cfg = FleetConfig::new("perm", 21, 3, 4);
        let states: Vec<ShardState> = (0..3)
            .map(|i| ShardState::from_run(i, MainRun::execute(cfg.scenario(i))))
            .collect();
        let forward = FacilityAnalysis::merge(states.clone()).unwrap();
        let mut shuffled = states;
        shuffled.rotate_left(1);
        shuffled.swap(0, 1);
        let permuted = FacilityAnalysis::merge(shuffled).unwrap();
        assert_eq!(forward.per_minute.bins(), permuted.per_minute.bins());
        assert_eq!(forward.counts.packets, permuted.counts.packets);
        assert_eq!(
            forward.per_minute.bin_stats().variance().to_bits(),
            permuted.per_minute.bin_stats().variance().to_bits()
        );
        assert_eq!(forward.players_per_minute, permuted.players_per_minute);
        assert_eq!(forward.dropped_bins, permuted.dropped_bins);
    }

    #[test]
    fn report_renders_and_sizes_an_uplink() {
        let cfg = FleetConfig::new("render", 31, 2, 4);
        let fleet = run_fleet(&cfg).unwrap();
        let rep = &fleet.report;
        assert!(rep.mean_pps > 0.0);
        assert!(rep.p99_pps >= rep.p95_pps && rep.p95_pps >= 0.0);
        assert!(rep.uplink_count >= 1);
        assert!(rep.players_per_oc3 > 0.0);
        let rendered = rep.render().render();
        assert!(rendered.contains("pps per player"));
        assert!(rendered.contains("uplink"));
        assert!(rep.sizing_line().contains("OC-3"));
    }

    #[test]
    fn observer_sees_every_shard_and_interim_reports_converge() {
        use std::sync::Mutex;
        let cfg = FleetConfig::new("observed", 17, 3, 4);
        let seen: Mutex<Vec<ShardState>> = Mutex::new(Vec::new());
        let observed = run_fleet_observed(
            &cfg,
            Some(&|state: &ShardState| {
                let mut partial = seen.lock().unwrap();
                partial.push(state.clone());
                // An interim report over any non-empty prefix is valid.
                let interim = interim_report(&cfg, &partial).unwrap();
                assert_eq!(interim.servers, partial.len());
                assert!(interim.mean_pps > 0.0);
            }),
        )
        .unwrap();
        let states = seen.into_inner().unwrap();
        assert_eq!(states.len(), 3);
        // The interim report over ALL shards is the final report.
        let full = interim_report(&cfg, &states).unwrap();
        assert_eq!(full.render().render(), observed.report.render().render());
        // And observation changed nothing vs the plain path.
        let plain = run_fleet(&cfg).unwrap();
        assert_eq!(
            plain.report.render().render(),
            observed.report.render().render()
        );
        assert_eq!(
            plain.facility.per_minute.bins(),
            observed.facility.per_minute.bins()
        );
    }

    #[test]
    fn paced_fleet_matches_max_speed_fleet() {
        // A very fast pace (minimal sleeping) on a tiny fleet: the
        // aggregate must be byte-identical to the unpaced run.
        let mut paced_cfg = FleetConfig::new("paced", 23, 2, 1);
        paced_cfg.speed = Speed::Times(100_000.0);
        let mut max_cfg = paced_cfg.clone();
        max_cfg.speed = Speed::Max;
        let paced = run_fleet(&paced_cfg).unwrap();
        let unpaced = run_fleet(&max_cfg).unwrap();
        assert_eq!(
            paced.facility.per_minute.bins(),
            unpaced.facility.per_minute.bins()
        );
        assert_eq!(
            paced.facility.counts.packets,
            unpaced.facility.counts.packets
        );
        assert_eq!(
            paced.report.render().render(),
            unpaced.report.render().render()
        );
    }

    #[test]
    fn quantile_is_nearest_rank() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let r = RetryPolicy {
            attempts: 5,
            backoff_ns: 1_000,
        };
        assert_eq!(r.backoff_for(1), 1_000);
        assert_eq!(r.backoff_for(2), 2_000);
        assert_eq!(r.backoff_for(3), 4_000);
        let huge = RetryPolicy {
            attempts: 5,
            backoff_ns: u64::MAX / 2,
        };
        assert_eq!(huge.backoff_for(60), u64::MAX);
    }

    #[test]
    fn transient_fault_retries_to_a_byte_identical_facility() {
        let clean_cfg = FleetConfig::new("retry", 41, 3, 2);
        let mut faulty_cfg = clean_cfg.clone();
        faulty_cfg.fail_plan = vec![FailSpec {
            shard: 1,
            failures: 2,
            stall_ms: 0,
        }];
        let clean = run_fleet(&clean_cfg).unwrap();
        let recovered = run_fleet(&faulty_cfg).unwrap();
        // The retried shard re-runs from the same derived seed, so the
        // facility aggregate is unchanged; only the recovery accounting
        // (and its report row) differs.
        assert_eq!(
            clean.facility.per_minute.bins(),
            recovered.facility.per_minute.bins()
        );
        assert_eq!(
            clean.facility.counts.packets,
            recovered.facility.counts.packets
        );
        assert_eq!(recovered.report.coverage.retries, 2);
        assert_eq!(
            recovered.report.coverage.backoff_ns,
            1_000_000_000 + 2_000_000_000
        );
        assert!(!recovered.report.coverage.is_degraded());
        assert!(recovered.report.render().render().contains("shard retries"));
        assert_eq!(clean.report.coverage.retries, 0);
    }

    #[test]
    fn exhausted_shard_degrades_to_a_lower_bound_report() {
        let mut cfg = FleetConfig::new("degraded", 43, 3, 2);
        cfg.fail_plan = vec![FailSpec {
            shard: 2,
            failures: u32::MAX,
            stall_ms: 0,
        }];
        let run = run_fleet(&cfg).unwrap();
        let cov = &run.report.coverage;
        assert!(cov.is_degraded());
        assert_eq!(cov.configured, 3);
        assert_eq!(cov.merged, 2);
        assert_eq!(cov.lost, vec![2]);
        assert_eq!(run.facility.shards, 2);
        let rendered = run.report.render().render();
        assert!(rendered.contains("2/3 shards merged"));
        assert!(rendered.contains("shards lost"));
        assert!(rendered.contains("lower bound"));
        assert!(run.report.sizing_line().contains("lower bound"));
        assert!(run.report.players_unaccounted() > 0.0);
        // The surviving shards match a 2-server fleet's traffic exactly.
        let survivors = FleetConfig::new("degraded", 43, 2, 2);
        let reference = run_fleet(&survivors).unwrap();
        assert_eq!(
            run.facility.per_minute.bins(),
            reference.facility.per_minute.bins()
        );
    }

    #[test]
    fn all_shards_lost_is_a_typed_error() {
        let mut cfg = FleetConfig::new("doom", 47, 2, 1);
        cfg.fail_plan = (0..2)
            .map(|shard| FailSpec {
                shard,
                failures: u32::MAX,
                stall_ms: 0,
            })
            .collect();
        match run_fleet(&cfg) {
            Err(FleetError::AllShardsLost {
                configured,
                message,
            }) => {
                assert_eq!(configured, 2);
                assert!(message.contains("injected fault"));
            }
            Err(other) => panic!("expected AllShardsLost, got {other}"),
            Ok(_) => panic!("expected AllShardsLost, got a successful run"),
        }
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_to_uninterrupted() {
        let dir = std::env::temp_dir().join(format!("csprov-fleet-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FleetConfig::new("resume", 53, 3, 2);
        let baseline = run_fleet(&cfg).unwrap();

        // First pass: checkpoint every shard.
        let checkpointed =
            run_fleet_full(&cfg, &FleetPersistence::checkpoint_to(&dir), None).unwrap();
        assert_eq!(checkpointed.persist.checkpoints_written, 3);
        assert_eq!(
            checkpointed.report.render().render(),
            baseline.report.render().render()
        );

        // Simulate a crash: drop one checkpoint, corrupt another.
        std::fs::remove_file(dir.join(persist::shard_file_name(1))).unwrap();
        let corrupt_path = dir.join(persist::shard_file_name(2));
        let mut bytes = std::fs::read(&corrupt_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&corrupt_path, &bytes).unwrap();

        let resumed = run_fleet_full(&cfg, &FleetPersistence::resume_from(&dir), None).unwrap();
        assert_eq!(resumed.persist.resumed, 1);
        assert_eq!(resumed.persist.invalid_checkpoints, 1);
        assert_eq!(resumed.persist.checkpoints_written, 2);
        // The headline guarantee: byte-identical report after resume.
        assert_eq!(
            resumed.report.render().render(),
            baseline.report.render().render()
        );
        assert_eq!(
            resumed.facility.per_minute.bins(),
            baseline.facility.per_minute.bins()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stalled_shard_is_flagged_within_the_watchdog_deadline() {
        // Shard 1 beats once, then goes silent for 400 ms against a 50 ms
        // watchdog: the board must flag it stalled while the run is still
        // in flight, well before the deadline.
        let mut cfg = FleetConfig::new("stall", 61, 2, 1);
        cfg.fail_plan = vec![FailSpec {
            shard: 1,
            failures: 0,
            stall_ms: 400,
        }];
        let board = Arc::new(ShardHealthBoard::new(2, Duration::from_millis(50)));
        cfg.health = Some(board.clone());
        let runner = std::thread::spawn(move || run_fleet(&cfg).unwrap());
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut flagged = false;
        while Instant::now() < deadline {
            let json = board.render_json();
            if json.contains("\"verdict\":\"stalled\"") {
                flagged = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let run = runner.join().unwrap();
        assert!(flagged, "silent shard never flagged stalled");
        // Once the run drains, every shard is done and nothing is stalled.
        let json = board.render_json();
        assert!(!json.contains("\"verdict\":\"stalled\""), "final: {json}");
        assert!(json.contains("\"done\":2"), "final: {json}");
        // The stall is wall-only: traffic matches an unimpaired fleet.
        let clean = run_fleet(&FleetConfig::new("stall", 61, 2, 1)).unwrap();
        assert_eq!(
            run.facility.per_minute.bins(),
            clean.facility.per_minute.bins()
        );
    }

    #[test]
    fn healthy_fleet_never_flags_a_shard() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut cfg = FleetConfig::new("healthy", 67, 3, 1);
        // A generous watchdog a healthy sub-second shard can't trip.
        let board = Arc::new(ShardHealthBoard::new(3, Duration::from_secs(30)));
        cfg.health = Some(board.clone());
        let saw_stall = AtomicBool::new(false);
        let watcher_board = board.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let watcher_stop = stop.clone();
        let watcher = std::thread::spawn(move || {
            let mut seen = false;
            while !watcher_stop.load(Ordering::Relaxed) {
                if watcher_board
                    .render_json()
                    .contains("\"verdict\":\"stalled\"")
                {
                    seen = true;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            seen
        });
        run_fleet(&cfg).unwrap();
        stop.store(true, Ordering::Relaxed);
        saw_stall.fetch_or(watcher.join().unwrap(), Ordering::Relaxed);
        assert!(!saw_stall.load(Ordering::Relaxed), "healthy run flagged");
        let json = board.render_json();
        assert!(json.contains("\"done\":3"), "{json}");
        assert!(json.contains("\"lost\":0"), "{json}");
    }

    #[test]
    fn profiled_fleet_attributes_worker_and_merge_frames() {
        let mut cfg = FleetConfig::new("profiled", 71, 2, 1);
        cfg.profile = true;
        let run = run_fleet(&cfg).unwrap();
        let snap = run.profile.expect("profile requested");
        for frame in ["fleet.shard.execute", "fleet.merge", "sim.dispatch"] {
            assert!(
                snap.entries()
                    .iter()
                    .any(|e| e.path.last().is_some_and(|f| f == frame)),
                "missing frame {frame}"
            );
        }
        // Two shards ran, each framed once.
        let execute = snap
            .entries()
            .iter()
            .find(|e| e.path == ["fleet.shard.execute"])
            .unwrap();
        assert_eq!(execute.count, 2);
        // Nesting survived the merge: the dispatch loop sits under execute.
        assert!(snap
            .entries()
            .iter()
            .any(|e| e.path == ["fleet.shard.execute", "sim.dispatch"]));
        // And the result is byte-identical to an unprofiled fleet.
        let plain = run_fleet(&FleetConfig::new("profiled", 71, 2, 1)).unwrap();
        assert!(plain.profile.is_none());
        assert_eq!(run.report.render().render(), plain.report.render().render());
    }

    #[test]
    fn events_narrate_the_run() {
        use std::sync::Mutex;
        let mut cfg = FleetConfig::new("events", 59, 2, 1);
        cfg.fail_plan = vec![FailSpec {
            shard: 0,
            failures: 1,
            stall_ms: 0,
        }];
        let log: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let capture = |ev: &FleetEvent<'_>| {
            let line = match ev {
                FleetEvent::ShardDone { state, attempt, .. } => {
                    format!("done {} attempt {attempt}", state.shard)
                }
                FleetEvent::ShardRetry { shard, attempt, .. } => {
                    format!("retry {shard} attempt {attempt}")
                }
                FleetEvent::ShardLost { shard, .. } => format!("lost {shard}"),
                FleetEvent::CheckpointWritten { shard } => format!("ckpt {shard}"),
                FleetEvent::CheckpointFailed { shard, .. } => format!("ckpt-fail {shard}"),
                FleetEvent::ResumeLoaded { shard } => format!("resume {shard}"),
                FleetEvent::ResumeInvalid { .. } => "resume-invalid".to_string(),
            };
            log.lock().unwrap().push(line);
        };
        run_fleet_full(&cfg, &FleetPersistence::none(), Some(&capture)).unwrap();
        let lines = log.into_inner().unwrap();
        assert!(lines.contains(&"retry 0 attempt 1".to_string()));
        assert!(lines.contains(&"done 0 attempt 2".to_string()));
        assert!(lines.contains(&"done 1 attempt 1".to_string()));
    }
}
