//! Coordinator/worker fleet execution across OS processes.
//!
//! The in-process fleet (`run_fleet_full`) shards a facility across the
//! work-stealing pool of one process. This module stretches the same
//! contract across *processes, and therefore machines*: a coordinator
//! plans contiguous shard ranges, each worker — spawned as a child or
//! launched by hand against a shared state directory — executes its range
//! with [`run_worker_range`] (the exact per-shard engine the in-process
//! fleet uses, checkpoints and heartbeat sidecars included), and the
//! coordinator folds completed `csprov-state/1` checkpoints through a
//! hierarchical merge tree into the same byte-identical
//! [`ProvisioningReport`].
//!
//! The protocol is deliberately *files, not sockets*:
//! - a shard is **done** when `shard-NNNNN.state` exists and validates
//!   against the fleet config (derived seed, duration) — the atomic
//!   write-tmp/fsync/rename discipline means the file is either whole or
//!   absent;
//! - a shard's **liveness** is its `shard-NNNNN.hb` sidecar. The record
//!   inside carries the *writer's* clocks (`unix_ms` for ordering,
//!   `wall_ms` for context); the coordinator judges freshness only by the
//!   sidecar's observed mtime age on its own clock, so worker clock skew
//!   can neither forge nor mask a stall;
//! - a **dead worker** is an exited process with uncollected shards. The
//!   coordinator deletes the dead worker's stale sidecars, resets those
//!   board slots, and re-dispatches the same range under the fleet's
//!   [`RetryPolicy`](super::RetryPolicy); the replacement worker
//!   resume-scans the directory and recomputes only what is missing, so a
//!   re-dispatched range converges to the same bytes.
//!
//! Determinism contract: shard seeds derive from the facility seed and
//! shard index alone, so the partition into ranges, the number of
//! workers, worker deaths, and re-dispatches change *nothing* about any
//! shard's traffic. The merge tree is byte-identical to the flat fold
//! (superposition is commutative and associative), so `coordinate` over N
//! workers — including after a kill — renders the same report as one
//! in-process `--fleet` run.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use csprov_game::ScenarioConfig;

use super::persist;
use super::{
    FleetConfig, FleetError, FleetEvent, FleetRun, PersistSummary, ShardHealthBoard, ShardState,
};
use crate::sweep::work_steal;
use std::sync::Arc;

/// A contiguous, half-open range of shard indices assigned to one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First shard in the range.
    pub start: usize,
    /// One past the last shard in the range.
    pub end: usize,
}

impl ShardRange {
    /// Number of shards in the range.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the range holds no shards.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// The shard indices in the range.
    pub fn shards(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Parses the CLI form `LO:HI` (half-open, `HI > LO`).
    pub fn parse(s: &str) -> Option<ShardRange> {
        let (lo, hi) = s.split_once(':')?;
        let start: usize = lo.parse().ok()?;
        let end: usize = hi.parse().ok()?;
        (end > start).then_some(ShardRange { start, end })
    }
}

impl fmt::Display for ShardRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.start, self.end)
    }
}

/// Splits `servers` shards into at most `workers` contiguous ranges of
/// near-equal size (sizes differ by at most one; earlier ranges take the
/// remainder). Deterministic, order-preserving, never empty-ranged.
pub fn plan_ranges(servers: usize, workers: usize) -> Vec<ShardRange> {
    if servers == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, servers);
    let base = servers / workers;
    let extra = servers % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        ranges.push(ShardRange {
            start,
            end: start + len,
        });
        start += len;
    }
    ranges
}

/// What one worker's range execution accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerRangeSummary {
    /// Shards completed this run (checkpoint written), ascending.
    pub done: Vec<usize>,
    /// Shards loaded from valid pre-existing checkpoints, ascending.
    pub resumed: Vec<usize>,
    /// Shards lost after exhausting per-shard retries, ascending.
    pub lost: Vec<usize>,
    /// Failed attempts that were retried across the range.
    pub retries: u64,
    /// Simulated backoff charged for those retries.
    pub backoff_ns: u64,
}

/// Executes one assigned shard range against a shared state directory —
/// the worker half of the coordinator/worker protocol, and exactly what
/// `repro fleet work` runs in a child process.
///
/// The range always *resume-scans* the directory first: shards that
/// already have a valid checkpoint (a previous worker finished them
/// before dying, or the range was partially executed) are skipped, so a
/// re-dispatched range recomputes only what is missing. Remaining shards
/// run across the local work-stealing pool through the same retrying,
/// checkpointing, sidecar-writing engine as the in-process fleet. A
/// worker with lost shards still returns `Ok` (and exits cleanly): loss
/// after exhausted retries is the coordinator's degraded-coverage
/// business, not a worker crash.
pub fn run_worker_range(
    config: &FleetConfig,
    range: ShardRange,
    state_dir: &Path,
    on_event: Option<&(dyn Fn(&FleetEvent<'_>) + Sync)>,
) -> Result<WorkerRangeSummary, FleetError> {
    if config.servers == 0 {
        return Err(FleetError::NoServers);
    }
    if range.is_empty() || range.end > config.servers {
        return Err(FleetError::StateDir(format!(
            "shard range {range} is empty or exceeds the {}-shard fleet",
            config.servers
        )));
    }
    std::fs::create_dir_all(state_dir)
        .map_err(|e| FleetError::StateDir(format!("{}: {e}", state_dir.display())))?;
    let emit = |ev: FleetEvent<'_>| {
        if let Some(f) = on_event {
            f(&ev);
        }
    };

    // Workers always publish heartbeat sidecars: the coordinator (possibly
    // on another machine) has no other liveness channel. Reuse a caller's
    // board when present, otherwise attach a private one.
    let mut config = config.clone();
    if config.health.is_none() {
        config.health = Some(Arc::new(ShardHealthBoard::new(
            config.servers,
            Duration::from_secs(3),
        )));
    }

    let scan = persist::load_checkpoints(state_dir, &config)
        .map_err(|e| FleetError::StateDir(e.to_string()))?;
    for (path, err) in &scan.rejected {
        let message = format!("{}: {err}", path.display());
        emit(FleetEvent::ResumeInvalid { message: &message });
    }
    let mut summary = WorkerRangeSummary::default();
    let horizon_ns = csprov_sim::SimDuration::from_mins(config.minutes).as_nanos();
    for (&shard, state) in scan.states.range(range.shards()) {
        summary.resumed.push(shard);
        if let Some(board) = &config.health {
            board.done(shard, horizon_ns);
        }
        emit(FleetEvent::ResumeLoaded { shard });
        emit(FleetEvent::ShardDone {
            state,
            attempt: 0,
            from_checkpoint: true,
        });
    }

    let todo: Vec<(usize, ScenarioConfig)> = range
        .shards()
        .filter(|i| !scan.states.contains_key(i))
        .map(|i| (i, config.scenario(i)))
        .collect();
    let outcomes = work_steal(&todo, |_, (shard, cfg)| {
        super::run_one_shard(*shard, cfg, &config, Some(state_dir), on_event)
    })
    .map_err(|p| {
        let first = p.first();
        FleetError::ShardFailed {
            shard: todo
                .get(first.index)
                .map(|(s, _)| *s)
                .unwrap_or(first.index),
            message: first.message.clone(),
        }
    })?;

    for outcome in &outcomes {
        summary.retries += u64::from(outcome.retries);
        summary.backoff_ns = summary.backoff_ns.saturating_add(outcome.backoff_ns);
        if outcome.state.is_some() {
            summary.done.push(outcome.shard);
        } else {
            summary.lost.push(outcome.shard);
        }
    }
    Ok(summary)
}

/// A handle to a launched worker the coordinator can poll without
/// blocking. Implemented over `std::process::Child` by the CLI and over
/// plain threads in tests.
pub trait WorkerHandle {
    /// `None` while the worker is still running; `Some(Ok(()))` after a
    /// clean exit; `Some(Err(detail))` after a crash, kill, or non-zero
    /// exit. Called repeatedly until it returns `Some`.
    fn try_status(&mut self) -> Option<Result<(), String>>;
}

/// Coordinator knobs.
#[derive(Debug, Clone)]
pub struct CoordOptions {
    /// Worker processes to plan ranges for (clamped to the shard count).
    pub workers: usize,
    /// Merge-tree fan-in for the final fold (clamped to ≥ 2).
    pub fan_in: usize,
    /// Poll-loop sleep between scans.
    pub poll_interval: Duration,
}

impl Default for CoordOptions {
    fn default() -> Self {
        CoordOptions {
            workers: 2,
            fan_in: 16,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Coordinator-plane events, narrated to the observer as they happen.
#[derive(Debug)]
pub enum CoordEvent<'a> {
    /// A worker was launched (or relaunched) for a range.
    WorkerLaunched {
        /// Worker ordinal (stable across re-dispatches of its range).
        worker: usize,
        /// The assigned range.
        range: ShardRange,
        /// Launch attempt for this range (1-based).
        attempt: u32,
    },
    /// A worker process exited.
    WorkerExited {
        /// Worker ordinal.
        worker: usize,
        /// Its range.
        range: ShardRange,
        /// True for a clean exit.
        clean: bool,
        /// Exit detail (signal / status) for unclean exits.
        detail: &'a str,
    },
    /// A dead worker's unfinished range is being re-dispatched.
    RangeRedispatched {
        /// Worker ordinal.
        worker: usize,
        /// The range being retried.
        range: ShardRange,
        /// The new launch attempt (1-based).
        attempt: u32,
    },
    /// A range (or its remainder) was abandoned.
    RangeLost {
        /// Worker ordinal.
        worker: usize,
        /// The affected range.
        range: ShardRange,
        /// Shards abandoned, ascending.
        shards: &'a [usize],
        /// Why.
        message: &'a str,
    },
    /// A shard's checkpoint was validated and collected for the merge.
    ShardCollected {
        /// Shard index.
        shard: usize,
        /// The decoded, validated state (borrowed; dropped unless an
        /// observer clones it for interim reporting).
        state: &'a ShardState,
    },
}

struct Dispatch<H> {
    worker: usize,
    range: ShardRange,
    attempt: u32,
    handle: Option<H>,
    settled: bool,
}

/// Runs a fleet as a coordinator over worker processes sharing
/// `state_dir`: plans ranges, launches workers via `launch`, tracks their
/// heartbeat sidecars and exits, re-dispatches ranges of dead workers
/// under the fleet's [`RetryPolicy`](super::RetryPolicy) (attempts per
/// range, including the first launch), and folds the collected
/// checkpoints through a [`persist::merge_state_tree`] with fan-in
/// [`CoordOptions::fan_in`] into the same byte-identical report the
/// in-process fleet renders.
///
/// `launch(worker, range)` starts one worker executing `range` against
/// `state_dir` and returns a pollable handle — a spawned `repro fleet
/// work` child in the CLI, a thread in tests. The coordinator never
/// executes shards itself; `config.health`, when present, is fed purely
/// from observed sidecars, which is what lets a serving plane watch a
/// fleet this process is not executing.
pub fn coordinate<H, L>(
    config: &FleetConfig,
    state_dir: &Path,
    opts: &CoordOptions,
    mut launch: L,
    on_event: Option<&dyn Fn(&CoordEvent<'_>)>,
) -> Result<FleetRun, FleetError>
where
    H: WorkerHandle,
    L: FnMut(usize, ShardRange) -> Result<H, String>,
{
    if config.servers == 0 {
        return Err(FleetError::NoServers);
    }
    std::fs::create_dir_all(state_dir)
        .map_err(|e| FleetError::StateDir(format!("{}: {e}", state_dir.display())))?;
    let emit = |ev: CoordEvent<'_>| {
        if let Some(f) = on_event {
            f(&ev);
        }
    };
    let board = config.health.as_deref();
    let attempts = config.retry.attempts.max(1);
    let horizon_ns = csprov_sim::SimDuration::from_mins(config.minutes).as_nanos();

    let mut collected: BTreeMap<usize, PathBuf> = BTreeMap::new();
    let mut rejected: BTreeSet<usize> = BTreeSet::new();
    let mut lost: BTreeSet<usize> = BTreeSet::new();
    let mut first_loss: Option<String> = None;

    // One targeted collection pass: validate any newly-appeared checkpoint
    // for shards still outstanding. Atomic checkpoint writes mean a file
    // is whole the moment it is visible; validation failures are remembered
    // so a foreign file cannot be re-decoded every poll.
    let collect = |range: ShardRange,
                   collected: &mut BTreeMap<usize, PathBuf>,
                   rejected: &mut BTreeSet<usize>,
                   lost: &BTreeSet<usize>| {
        for shard in range.shards() {
            if collected.contains_key(&shard) || rejected.contains(&shard) || lost.contains(&shard)
            {
                continue;
            }
            let path = state_dir.join(persist::shard_file_name(shard));
            if !path.exists() {
                continue;
            }
            match persist::read_checkpoint(&path, shard, config) {
                Ok(state) => {
                    if let Some(b) = board {
                        b.done(shard, horizon_ns);
                    }
                    emit(CoordEvent::ShardCollected {
                        shard,
                        state: &state,
                    });
                    collected.insert(shard, path);
                }
                Err(_) => {
                    rejected.insert(shard);
                }
            }
        }
    };

    let mut dispatches: Vec<Dispatch<H>> = plan_ranges(config.servers, opts.workers)
        .into_iter()
        .enumerate()
        .map(|(worker, range)| Dispatch {
            worker,
            range,
            attempt: 0,
            handle: None,
            settled: false,
        })
        .collect();

    // Launches (or relaunches) a dispatch, consuming range attempts on
    // launch failure until one sticks or the budget is gone.
    fn launch_dispatch<H, L>(
        d: &mut Dispatch<H>,
        launch: &mut L,
        attempts: u32,
        emit: &impl Fn(CoordEvent<'_>),
    ) -> Result<(), String>
    where
        L: FnMut(usize, ShardRange) -> Result<H, String>,
    {
        let mut last = String::new();
        while d.attempt < attempts {
            d.attempt += 1;
            emit(CoordEvent::WorkerLaunched {
                worker: d.worker,
                range: d.range,
                attempt: d.attempt,
            });
            match launch(d.worker, d.range) {
                Ok(handle) => {
                    d.handle = Some(handle);
                    return Ok(());
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    let mark_lost = |shards: &[usize],
                     d: &Dispatch<H>,
                     message: &str,
                     lost: &mut BTreeSet<usize>,
                     first_loss: &mut Option<String>| {
        if shards.is_empty() {
            return;
        }
        for &shard in shards {
            lost.insert(shard);
            if let Some(b) = board {
                b.lost(shard);
            }
        }
        if first_loss.is_none() {
            *first_loss = Some(message.to_string());
        }
        emit(CoordEvent::RangeLost {
            worker: d.worker,
            range: d.range,
            shards,
            message,
        });
    };

    for d in &mut dispatches {
        if let Err(message) = launch_dispatch(d, &mut launch, attempts, &emit) {
            let shards: Vec<usize> = d.range.shards().collect();
            mark_lost(&shards, d, &message, &mut lost, &mut first_loss);
            d.settled = true;
        }
    }

    loop {
        // 1. Liveness: apply every observed sidecar to the board, aging by
        //    file mtime on *this* machine's clock.
        if let Some(b) = board {
            for o in persist::scan_heartbeats_observed(state_dir) {
                b.apply_observed(&o.rec, o.age_ms);
            }
        }
        // 2. Collection: validate newly-appeared checkpoints.
        for d in &dispatches {
            collect(d.range, &mut collected, &mut rejected, &lost);
        }
        // 3. Worker exits: settle, re-dispatch, or abandon.
        for d in &mut dispatches {
            let Some(handle) = d.handle.as_mut() else {
                continue;
            };
            let Some(status) = handle.try_status() else {
                continue;
            };
            d.handle = None;
            let (clean, detail) = match &status {
                Ok(()) => (true, String::new()),
                Err(e) => (false, e.clone()),
            };
            emit(CoordEvent::WorkerExited {
                worker: d.worker,
                range: d.range,
                clean,
                detail: &detail,
            });
            // The worker's final checkpoints landed before it exited;
            // collect them before judging the range incomplete.
            collect(d.range, &mut collected, &mut rejected, &lost);
            let incomplete: Vec<usize> = d
                .range
                .shards()
                .filter(|s| !collected.contains_key(s) && !lost.contains(s))
                .collect();
            if incomplete.is_empty() {
                d.settled = true;
                continue;
            }
            if clean {
                // A clean exit with uncollected shards means the worker
                // exhausted per-shard retries (LOST sidecars tell the
                // story); re-dispatching would fail the same way.
                let message = format!("worker {} exited with lost shards", d.worker);
                mark_lost(&incomplete, d, &message, &mut lost, &mut first_loss);
                d.settled = true;
                continue;
            }
            if d.attempt < attempts {
                // Clear the dead worker's stale sidecars and board slots
                // so the replacement's records are not outranked by the
                // corpse's, then re-dispatch the same range: the resume
                // scan makes re-execution incremental.
                for &shard in &incomplete {
                    let _ =
                        std::fs::remove_file(state_dir.join(persist::heartbeat_file_name(shard)));
                    if let Some(b) = board {
                        b.reset_for_redispatch(shard);
                    }
                }
                emit(CoordEvent::RangeRedispatched {
                    worker: d.worker,
                    range: d.range,
                    attempt: d.attempt + 1,
                });
                if let Err(message) = launch_dispatch(d, &mut launch, attempts, &emit) {
                    mark_lost(&incomplete, d, &message, &mut lost, &mut first_loss);
                    d.settled = true;
                }
            } else {
                let message = format!(
                    "worker {} died and the range is out of attempts: {detail}",
                    d.worker
                );
                mark_lost(&incomplete, d, &message, &mut lost, &mut first_loss);
                d.settled = true;
            }
        }
        if dispatches.iter().all(|d| d.settled && d.handle.is_none()) {
            break;
        }
        std::thread::sleep(opts.poll_interval);
    }

    if collected.is_empty() {
        return Err(FleetError::AllShardsLost {
            configured: config.servers,
            message: first_loss.unwrap_or_default(),
        });
    }

    // Final fold: the hierarchical merge tree over every collected
    // checkpoint, byte-identical to the in-process streaming fold.
    let paths: Vec<PathBuf> = collected.values().cloned().collect();
    let (facility, shards) =
        persist::merge_state_tree(&paths, opts.fan_in).map_err(|e| match e {
            persist::MergeFilesError::Merge(err) => err,
            other => FleetError::StateDir(other.to_string()),
        })?;

    // Retry accounting travels in the final sidecar records (a DONE/LOST
    // record carries the retries its run consumed); the backoff those
    // retries charged is a pure function of the policy. Coordinator-level
    // range re-dispatches are deliberately *not* counted here — they are
    // an execution-plane recovery, not a shard-plane retry, and counting
    // them would break report byte-identity with an in-process run.
    let mut retries = 0u64;
    let mut backoff_ns = 0u64;
    for rec in persist::scan_heartbeats(state_dir) {
        let shard = rec.shard as usize;
        if !collected.contains_key(&shard) && !lost.contains(&shard) {
            continue;
        }
        retries += rec.retries;
        for attempt in 1..=u32::try_from(rec.retries).unwrap_or(u32::MAX) {
            backoff_ns = backoff_ns.saturating_add(config.retry.backoff_for(attempt));
        }
    }

    let coverage = super::FleetCoverage {
        configured: config.servers,
        merged: shards.len(),
        lost: lost.into_iter().collect(),
        retries,
        backoff_ns,
    };
    let report = super::ProvisioningReport::build(config, &facility, &shards, coverage)?;
    let persist_summary = PersistSummary {
        checkpoints_written: paths.len() as u64,
        ..PersistSummary::default()
    };
    Ok(FleetRun {
        facility,
        shards,
        report,
        persist: persist_summary,
        profile: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_fleet_contiguously() {
        for (servers, workers) in [(10, 3), (7, 7), (5, 9), (128, 16), (1, 1), (3, 2)] {
            let ranges = plan_ranges(servers, workers);
            assert_eq!(ranges.len(), workers.min(servers));
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, servers);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "ranges must be contiguous");
            }
            let sizes: Vec<usize> = ranges.iter().map(ShardRange::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "near-equal split: {sizes:?}");
            assert!(*min >= 1);
        }
        assert!(plan_ranges(0, 4).is_empty());
    }

    #[test]
    fn range_parses_its_own_display() {
        let r = ShardRange { start: 3, end: 9 };
        assert_eq!(ShardRange::parse(&r.to_string()), Some(r));
        assert_eq!(ShardRange::parse("5:5"), None);
        assert_eq!(ShardRange::parse("9:3"), None);
        assert_eq!(ShardRange::parse("x:3"), None);
        assert_eq!(ShardRange::parse("7"), None);
    }
}
