//! Property-based tests for the routing substrate: the LPM trie against a
//! naive reference, cache bookkeeping invariants, and NAT-table behaviour.

use csprov_router::{CachePolicy, NatTable, NextHop, RouteCache, RouteTable};
use csprov_sim::check::{check, Gen};
use csprov_sim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Naive longest-prefix-match over a route list.
fn naive_lpm(routes: &[(u32, u8, u32)], addr: u32) -> Option<u32> {
    routes
        .iter()
        .filter(|&&(prefix, len, _)| {
            let mask = if len == 0 {
                0
            } else {
                u32::MAX << (32 - u32::from(len))
            };
            addr & mask == prefix & mask
        })
        .max_by_key(|&&(_, len, _)| len)
        .map(|&(_, _, hop)| hop)
}

fn gen_routes(g: &mut Gen) -> Vec<(u32, u8, u32)> {
    g.vec_with(1..60, |g| (g.u32(), g.u8_in(0..33), g.u32()))
}

/// The trie agrees with the naive reference on arbitrary tables and
/// lookups (modulo duplicate prefixes, where last-insert wins in both).
#[test]
fn trie_matches_naive() {
    check("trie_matches_naive", 128, |g| {
        let routes = gen_routes(g);
        let lookups = g.vec_with(1..50, |g| g.u32());
        // Deduplicate masked prefixes, keeping the last (insert overwrites).
        let mut table = RouteTable::new();
        let mut reference: Vec<(u32, u8, u32)> = Vec::new();
        for &(prefix, len, hop) in &routes {
            let mask = if len == 0 {
                0
            } else {
                u32::MAX << (32 - u32::from(len))
            };
            let key = (prefix & mask, len);
            reference.retain(|&(p, l, _)| (p & mask != key.0) || l != len);
            reference.push((key.0, len, hop));
            table.insert(Ipv4Addr::from(prefix), len, NextHop(hop));
        }
        assert_eq!(table.len(), reference.len());
        for &addr in &lookups {
            let (got, _) = table.lookup(Ipv4Addr::from(addr));
            let expected = naive_lpm(&reference, addr);
            assert_eq!(got.map(|h| h.0), expected, "addr {addr:#x}");
        }
    });
}

/// Inserted prefixes are always found for addresses inside them.
#[test]
fn trie_self_lookup() {
    check("trie_self_lookup", 256, |g| {
        let prefix = g.u32();
        let len = g.u8_in(0..33);
        let hop = g.u32();
        let mut t = RouteTable::new();
        t.insert(Ipv4Addr::from(prefix), len, NextHop(hop));
        let (got, visited) = t.lookup(Ipv4Addr::from(prefix));
        assert_eq!(got, Some(NextHop(hop)));
        assert!(visited as u64 <= u64::from(len) + 1);
    });
}

/// The cache never exceeds capacity and hits+misses equals accesses.
#[test]
fn cache_bookkeeping() {
    check("cache_bookkeeping", 128, |g| {
        let capacity = g.usize_in(1..32);
        let accesses = g.vec_with(1..300, |g| (g.u32(), g.u32_in(1..1_500)));
        let policy = CachePolicy::ALL[g.usize_in(0..4)];
        let mut cache = RouteCache::new(policy, capacity);
        for &(addr, size) in &accesses {
            // Narrow the address space so hits actually happen.
            let addr = Ipv4Addr::from(addr % 64);
            if cache.access(addr, size).is_none() {
                cache.insert(addr, NextHop(7), size);
            }
            assert!(cache.len() <= capacity, "cache over capacity");
        }
        assert_eq!(cache.hits() + cache.misses(), accesses.len() as u64);
        let rate = cache.hit_rate();
        assert!((0.0..=1.0).contains(&rate));
    });
}

/// A just-inserted entry is immediately hit, under every policy.
#[test]
fn cache_insert_then_hit() {
    check("cache_insert_then_hit", 128, |g| {
        let policy = CachePolicy::ALL[g.usize_in(0..4)];
        let addr = g.u32();
        let mut cache = RouteCache::new(policy, 4);
        let a = Ipv4Addr::from(addr);
        assert!(cache.access(a, 100).is_none());
        cache.insert(a, NextHop(3), 100);
        assert_eq!(cache.access(a, 100), Some(NextHop(3)));
    });
}

/// NAT table: ports are unique among live mappings; expiry respects the
/// timeout; capacity is never exceeded.
#[test]
fn nat_table_invariants() {
    check("nat_table_invariants", 128, |g| {
        let ops = g.vec_with(1..300, |g| (g.u32_in(0..200), g.u64_in(0..10_000)));
        let timeout_s = g.u64_in(1..600);
        let capacity = g.usize_in(1..64);
        let mut t = NatTable::new(SimDuration::from_secs(timeout_s), capacity);
        let mut now = SimTime::ZERO;
        let mut live_ports = std::collections::HashMap::new();
        for &(session, advance_ms) in &ops {
            now += SimDuration::from_millis(advance_ms);
            if let Some(port) = t.touch(session, now) {
                // A session keeps its port while continuously refreshed.
                if let Some(&old) = live_ports.get(&session) {
                    // It may have expired and been re-mapped; accept both.
                    let _ = old;
                }
                live_ports.insert(session, port);
            }
            assert!(t.len() <= capacity);
        }
        // Everything expires after a long quiet period.
        let far = now + SimDuration::from_secs(timeout_s + 1);
        t.expire(far);
        assert!(t.is_empty());
    });
}
