//! Property-based tests for the routing substrate: the LPM trie against a
//! naive reference, cache bookkeeping invariants, and NAT-table behaviour.

use csprov_router::{CachePolicy, NatTable, NextHop, RouteCache, RouteTable};
use csprov_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Naive longest-prefix-match over a route list.
fn naive_lpm(routes: &[(u32, u8, u32)], addr: u32) -> Option<u32> {
    routes
        .iter()
        .filter(|&&(prefix, len, _)| {
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - u32::from(len)) };
            addr & mask == prefix & mask
        })
        .max_by_key(|&&(_, len, _)| len)
        .map(|&(_, _, hop)| hop)
}

fn arb_routes() -> impl Strategy<Value = Vec<(u32, u8, u32)>> {
    prop::collection::vec((any::<u32>(), 0u8..=32, any::<u32>()), 1..60)
}

proptest! {
    /// The trie agrees with the naive reference on arbitrary tables and
    /// lookups (modulo duplicate prefixes, where last-insert wins in both).
    #[test]
    fn trie_matches_naive(routes in arb_routes(), lookups in prop::collection::vec(any::<u32>(), 1..50)) {
        // Deduplicate masked prefixes, keeping the last (insert overwrites).
        let mut table = RouteTable::new();
        let mut reference: Vec<(u32, u8, u32)> = Vec::new();
        for &(prefix, len, hop) in &routes {
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - u32::from(len)) };
            let key = (prefix & mask, len);
            reference.retain(|&(p, l, _)| (p & mask != key.0) || l != len);
            reference.push((key.0, len, hop));
            table.insert(Ipv4Addr::from(prefix), len, NextHop(hop));
        }
        prop_assert_eq!(table.len(), reference.len());
        for &addr in &lookups {
            let (got, _) = table.lookup(Ipv4Addr::from(addr));
            let expected = naive_lpm(&reference, addr);
            prop_assert_eq!(got.map(|h| h.0), expected, "addr {:#x}", addr);
        }
    }

    /// Inserted prefixes are always found for addresses inside them.
    #[test]
    fn trie_self_lookup(prefix in any::<u32>(), len in 0u8..=32, hop in any::<u32>()) {
        let mut t = RouteTable::new();
        t.insert(Ipv4Addr::from(prefix), len, NextHop(hop));
        let (got, visited) = t.lookup(Ipv4Addr::from(prefix));
        prop_assert_eq!(got, Some(NextHop(hop)));
        prop_assert!(visited as u64 <= u64::from(len) + 1);
    }

    /// The cache never exceeds capacity and hits+misses equals accesses.
    #[test]
    fn cache_bookkeeping(
        capacity in 1usize..32,
        accesses in prop::collection::vec((any::<u32>(), 1u32..1_500), 1..300),
        policy_idx in 0usize..4,
    ) {
        let policy = CachePolicy::ALL[policy_idx];
        let mut cache = RouteCache::new(policy, capacity);
        for &(addr, size) in &accesses {
            // Narrow the address space so hits actually happen.
            let addr = Ipv4Addr::from(addr % 64);
            if cache.access(addr, size).is_none() {
                cache.insert(addr, NextHop(7), size);
            }
            prop_assert!(cache.len() <= capacity, "cache over capacity");
        }
        prop_assert_eq!(cache.hits() + cache.misses(), accesses.len() as u64);
        let rate = cache.hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
    }

    /// A just-inserted entry is immediately hit, under every policy.
    #[test]
    fn cache_insert_then_hit(policy_idx in 0usize..4, addr in any::<u32>()) {
        let mut cache = RouteCache::new(CachePolicy::ALL[policy_idx], 4);
        let a = Ipv4Addr::from(addr);
        prop_assert!(cache.access(a, 100).is_none());
        cache.insert(a, NextHop(3), 100);
        prop_assert_eq!(cache.access(a, 100), Some(NextHop(3)));
    }

    /// NAT table: ports are unique among live mappings; expiry respects
    /// the timeout; capacity is never exceeded.
    #[test]
    fn nat_table_invariants(
        ops in prop::collection::vec((0u32..200, 0u64..10_000), 1..300),
        timeout_s in 1u64..600,
        capacity in 1usize..64,
    ) {
        let mut t = NatTable::new(SimDuration::from_secs(timeout_s), capacity);
        let mut now = SimTime::ZERO;
        let mut live_ports = std::collections::HashMap::new();
        for &(session, advance_ms) in &ops {
            now += SimDuration::from_millis(advance_ms);
            if let Some(port) = t.touch(session, now) {
                // A session keeps its port while continuously refreshed.
                if let Some(&old) = live_ports.get(&session) {
                    // It may have expired and been re-mapped; accept both.
                    let _ = old;
                }
                live_ports.insert(session, port);
            }
            prop_assert!(t.len() <= capacity);
        }
        // Everything expires after a long quiet period.
        let far = now + SimDuration::from_secs(timeout_s + 1);
        t.expire(far);
        prop_assert!(t.is_empty());
    }
}
