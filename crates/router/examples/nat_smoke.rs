use csprov_game::{ScenarioConfig, World};
use csprov_net::{Direction, NullSink};
use csprov_router::{EngineConfig, NatDevice, NatTaps};
use csprov_sim::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // One 30-minute map through the NAT, as in the paper's experiment.
    let mut cfg = ScenarioConfig::new(7, SimDuration::from_mins(35));
    cfg.workload.arrival_rate = 0.15; // warm the server up quickly
    let dev = Rc::new(NatDevice::new(EngineConfig::default(), NatTaps::default()));
    let sink = Rc::new(RefCell::new(NullSink));
    let out = World::run_with_middlebox(cfg, sink, Some(dev.clone()));
    let s = dev.stats();
    println!("players avg {:.1}", out.mean_players);
    println!(
        "in: offered {} forwarded {} dropped {} loss {:.3}% (paper 1.3%)",
        s.offered[0].get(),
        s.forwarded[0].get(),
        s.dropped[0].get(),
        100.0 * s.loss_rate(Direction::Inbound)
    );
    println!(
        "out: offered {} forwarded {} dropped {} loss {:.3}% (paper 0.046%)",
        s.offered[1].get(),
        s.forwarded[1].get(),
        s.dropped[1].get(),
        100.0 * s.loss_rate(Direction::Outbound)
    );
}
