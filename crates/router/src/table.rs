//! Longest-prefix-match routing table (binary trie).
//!
//! The substrate for the Section IV-B route-caching exploration: a full
//! lookup walks the trie (the "slow path" whose cost limits commodity
//! routers on tiny-packet workloads); the cache layer in [`crate::cache`]
//! front-ends it.

use std::net::Ipv4Addr;

/// A next-hop identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NextHop(pub u32);

#[derive(Debug, Default)]
struct Node {
    children: [Option<Box<Node>>; 2],
    next_hop: Option<NextHop>,
}

/// A binary-trie IPv4 routing table with longest-prefix-match lookup.
///
/// ```
/// use csprov_router::{NextHop, RouteTable};
/// use std::net::Ipv4Addr;
///
/// let mut t = RouteTable::new();
/// t.insert(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop(1));
/// t.insert(Ipv4Addr::new(10, 1, 0, 0), 16, NextHop(2));
/// let (hop, _cost) = t.lookup(Ipv4Addr::new(10, 1, 2, 3));
/// assert_eq!(hop, Some(NextHop(2)), "most specific prefix wins");
/// ```
#[derive(Debug, Default)]
pub struct RouteTable {
    root: Node,
    routes: usize,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.routes
    }

    /// True if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes == 0
    }

    /// Installs `prefix/len → hop`, replacing any previous route for the
    /// exact prefix.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn insert(&mut self, prefix: Ipv4Addr, len: u8, hop: NextHop) {
        assert!(len <= 32, "prefix length {len} out of range");
        let bits = u32::from(prefix);
        let mut node = &mut self.root;
        for i in 0..len {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        if node.next_hop.replace(hop).is_none() {
            self.routes += 1;
        }
    }

    /// Longest-prefix-match lookup. Returns the most specific route
    /// covering `addr`, with the number of trie nodes visited (the lookup
    /// "cost" the cache layer models).
    pub fn lookup(&self, addr: Ipv4Addr) -> (Option<NextHop>, u32) {
        let bits = u32::from(addr);
        let mut node = &self.root;
        let mut best = node.next_hop;
        let mut visited = 1u32;
        for i in 0..32 {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    visited += 1;
                    if node.next_hop.is_some() {
                        best = node.next_hop;
                    }
                }
                None => break,
            }
        }
        (best, visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RouteTable::new();
        t.insert(ip("10.0.0.0"), 8, NextHop(1));
        t.insert(ip("10.1.0.0"), 16, NextHop(2));
        t.insert(ip("10.1.2.0"), 24, NextHop(3));
        assert_eq!(t.lookup(ip("10.2.3.4")).0, Some(NextHop(1)));
        assert_eq!(t.lookup(ip("10.1.9.9")).0, Some(NextHop(2)));
        assert_eq!(t.lookup(ip("10.1.2.3")).0, Some(NextHop(3)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn default_route() {
        let mut t = RouteTable::new();
        t.insert(ip("0.0.0.0"), 0, NextHop(99));
        assert_eq!(t.lookup(ip("8.8.8.8")).0, Some(NextHop(99)));
        t.insert(ip("192.168.0.0"), 16, NextHop(1));
        assert_eq!(t.lookup(ip("192.168.1.1")).0, Some(NextHop(1)));
        assert_eq!(t.lookup(ip("8.8.8.8")).0, Some(NextHop(99)));
    }

    #[test]
    fn miss_without_default() {
        let mut t = RouteTable::new();
        t.insert(ip("10.0.0.0"), 8, NextHop(1));
        assert_eq!(t.lookup(ip("11.0.0.1")).0, None);
    }

    #[test]
    fn replace_route_keeps_count() {
        let mut t = RouteTable::new();
        t.insert(ip("10.0.0.0"), 8, NextHop(1));
        t.insert(ip("10.0.0.0"), 8, NextHop(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip("10.0.0.1")).0, Some(NextHop(2)));
    }

    #[test]
    fn host_route() {
        let mut t = RouteTable::new();
        t.insert(ip("10.0.0.0"), 8, NextHop(1));
        t.insert(ip("10.0.0.5"), 32, NextHop(42));
        assert_eq!(t.lookup(ip("10.0.0.5")).0, Some(NextHop(42)));
        assert_eq!(t.lookup(ip("10.0.0.6")).0, Some(NextHop(1)));
    }

    #[test]
    fn lookup_cost_grows_with_depth() {
        let mut t = RouteTable::new();
        t.insert(ip("10.0.0.0"), 8, NextHop(1));
        t.insert(ip("10.1.2.0"), 24, NextHop(2));
        let (_, cost_shallow) = t.lookup(ip("11.0.0.1"));
        let (_, cost_deep) = t.lookup(ip("10.1.2.3"));
        assert!(cost_deep > cost_shallow);
        assert_eq!(cost_deep, 25, "24 prefix bits + root");
    }

    #[test]
    fn empty_table() {
        let t = RouteTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("1.2.3.4")).0, None);
    }
}
