//! Registry-backed metrics for the forwarding engine and NAT table.
//!
//! The interesting provisioning quantity is the *lookup CPU busy fraction*:
//! `router.engine.busy_ns` accumulates simulated CPU time spent on lookups
//! and housekeeping stalls, so `busy_ns / run_ns` is the utilization the
//! paper's capacity analysis reasons about. All instruments live in the
//! deterministic domain — they are derived from sim time and packet counts.

use csprov_obs::{Counter, Gauge, MetricsRegistry};

/// Instruments for one NAT/router device.
#[derive(Clone)]
pub struct RouterMetrics {
    /// Packets offered, per direction (`router.engine.offered_{in,out}`).
    pub offered_in: Counter,
    pub offered_out: Counter,
    /// Packets forwarded, per direction (`router.engine.forwarded_{in,out}`).
    pub forwarded_in: Counter,
    pub forwarded_out: Counter,
    /// Queue-overflow drops, per direction (`router.engine.dropped_{in,out}`).
    pub dropped_in: Counter,
    pub dropped_out: Counter,
    /// Simulated CPU time spent serving lookups + housekeeping stalls
    /// (`router.engine.busy_ns`).
    pub busy_ns: Counter,
    /// Shared-FIFO depth with high-water mark (`router.engine.queue_depth`).
    pub queue_depth: Gauge,
    /// Live translation-table size with high-water mark
    /// (`router.nat.table_size`).
    pub nat_table_size: Gauge,
    /// Packets refused because the table was full (`router.nat.table_drops`).
    pub nat_table_drops: Counter,
    /// Idle mappings reclaimed under table pressure (`router.nat.evictions`).
    pub nat_evictions: Counter,
    /// Mappings created only after reclaiming idle entries
    /// (`router.nat.recoveries`).
    pub nat_recoveries: Counter,
}

impl RouterMetrics {
    /// Registers the `router.*` instruments.
    pub fn register(registry: &MetricsRegistry) -> Self {
        RouterMetrics {
            offered_in: registry.counter("router.engine.offered_in"),
            offered_out: registry.counter("router.engine.offered_out"),
            forwarded_in: registry.counter("router.engine.forwarded_in"),
            forwarded_out: registry.counter("router.engine.forwarded_out"),
            dropped_in: registry.counter("router.engine.dropped_in"),
            dropped_out: registry.counter("router.engine.dropped_out"),
            busy_ns: registry.counter("router.engine.busy_ns"),
            queue_depth: registry.gauge("router.engine.queue_depth"),
            nat_table_size: registry.gauge("router.nat.table_size"),
            nat_table_drops: registry.counter("router.nat.table_drops"),
            nat_evictions: registry.counter("router.nat.evictions"),
            nat_recoveries: registry.counter("router.nat.recoveries"),
        }
    }

    /// Direction-indexed counter access matching `EngineStats` layout
    /// (`[inbound, outbound]`).
    pub(crate) fn offered(&self, dir_idx: usize) -> &Counter {
        if dir_idx == 0 {
            &self.offered_in
        } else {
            &self.offered_out
        }
    }

    pub(crate) fn forwarded(&self, dir_idx: usize) -> &Counter {
        if dir_idx == 0 {
            &self.forwarded_in
        } else {
            &self.forwarded_out
        }
    }

    pub(crate) fn dropped(&self, dir_idx: usize) -> &Counter {
        if dir_idx == 0 {
            &self.dropped_in
        } else {
            &self.dropped_out
        }
    }
}
