//! # csprov-router — routing-infrastructure models
//!
//! The Section IV substrate: what happens when the game server's traffic
//! meets commodity routing gear.
//!
//! - [`engine`] — a store-and-forward engine whose bottleneck is per-packet
//!   route-lookup CPU (the SMC Barricade's 1000–1500 pps rating), with
//!   small per-direction queues. Loss under game traffic is *emergent*:
//!   tick bursts monopolize the CPU and the WAN-side queue overflows.
//! - [`nat`] — the NAT device used in the paper's experiment: translation
//!   table with idle expiry, the engine, and the four measurement taps of
//!   Table IV / Figures 14–15. Implements [`csprov_game::Middlebox`].
//! - [`table`] — a longest-prefix-match routing table (binary trie).
//! - [`cache`] — route caches with classic and *preferential* eviction
//!   policies (by packet size / frequency), the paper's §IV-B proposal.
//! - [`impaired`] — fault-injection wrapper composing background loss /
//!   shaping with any middlebox.
//! - [`metrics`] — optional `csprov-obs` instrumentation (lookup-CPU busy
//!   time, queue depth, NAT table size); attaching it changes nothing.
//! - [`provision`] — the analytical provisioning model the paper's title
//!   promises: closed-form drain-window loss and delay estimates, validated
//!   against the discrete-event engine.

pub mod cache;
pub mod engine;
pub mod impaired;
pub mod metrics;
pub mod nat;
pub mod provision;
pub mod table;

pub use cache::{
    simulate_cache, simulate_cache_journaled, CachePolicy, CacheSimResult, RouteCache,
};
pub use engine::{EngineConfig, EngineStats, ForwardingEngine};
pub use impaired::ImpairedPath;
pub use metrics::RouterMetrics;
pub use nat::{NatDevice, NatEntry, NatStats, NatTable, NatTableConfig, NatTaps, TouchOutcome};
pub use provision::{provision, required_capacity, servers_supported, GameLoad, Provisioning};
pub use table::{NextHop, RouteTable};
