//! Analytical provisioning of routing gear for game-server traffic — the
//! calculation the paper's title promises and its conclusion sketches:
//! given the predictable tick-burst structure, how much route-lookup
//! capacity (and how little buffering) does a deployment need?
//!
//! The model exploits exactly the predictability the paper demonstrates:
//! every tick `T`, each server emits a back-to-back burst of `n` packets
//! (one per player); between bursts, smooth per-client traffic arrives at
//! rate `λ`. For a device with per-packet lookup time `s`:
//!
//! - the burst occupies the CPU for `n·s` (the *drain window*);
//! - inbound packets arriving during the drain queue up; if more than the
//!   WAN queue can hold arrive before the drain ends, they drop;
//! - worst-case added delay is bounded by the total queue content,
//!   `(wan + lan) · s`.
//!
//! The closed forms below are validated against the discrete-event NAT
//! model in this crate's tests and in `examples/nat_meltdown.rs`.

use crate::engine::EngineConfig;
use csprov_sim::SimDuration;

/// The offered traffic of one game server, in the model's terms.
#[derive(Debug, Clone, Copy)]
pub struct GameLoad {
    /// Players connected (burst size per tick).
    pub players: u32,
    /// Server tick period.
    pub tick: SimDuration,
    /// Aggregate inbound packet rate (client commands etc.), pps.
    pub inbound_pps: f64,
}

impl GameLoad {
    /// The calibrated 22-slot server of the paper, at a given occupancy.
    pub fn paper_server(players: u32) -> GameLoad {
        GameLoad {
            players,
            tick: SimDuration::from_millis(50),
            inbound_pps: f64::from(players) * 24.7,
        }
    }

    /// Mean offered load in packets per second (both directions).
    pub fn total_pps(&self) -> f64 {
        self.inbound_pps + f64::from(self.players) / self.tick.as_secs_f64()
    }
}

/// Provisioning verdict for a device/load pair.
#[derive(Debug, Clone, Copy)]
pub struct Provisioning {
    /// CPU utilization (1.0 = saturated; above 1.0 the device melts).
    pub utilization: f64,
    /// How long each tick burst monopolizes the lookup CPU.
    pub drain_window: SimDuration,
    /// Expected inbound arrivals during one drain window.
    pub inbound_per_drain: f64,
    /// Poisson estimate of the inbound loss rate from drain-window
    /// overflow (0 when the WAN queue covers the arrivals).
    pub est_inbound_loss: f64,
    /// Worst-case queueing delay through the device.
    pub worst_delay: SimDuration,
    /// True if the worst-case delay stays within a quarter of the tick
    /// (the paper's interactivity budget argument).
    pub within_latency_budget: bool,
}

/// Poisson tail: P(X > k) for X ~ Poisson(mu).
pub fn poisson_tail(mu: f64, k: usize) -> f64 {
    let mut term = (-mu).exp();
    let mut cdf = term;
    for i in 1..=k {
        term *= mu / i as f64;
        cdf += term;
    }
    (1.0 - cdf).max(0.0)
}

/// Expected overflow E[max(0, X − k)] for X ~ Poisson(mu).
pub fn poisson_excess(mu: f64, k: usize) -> f64 {
    // E[X − k]+ = sum_{j>k} (j−k) P(X=j); sum far enough into the tail.
    let mut term = (-mu).exp();
    let mut excess = 0.0;
    let horizon = (mu as usize + k + 64).max(16);
    for j in 1..=horizon {
        term *= mu / j as f64;
        if j > k {
            excess += (j - k) as f64 * term;
        }
    }
    excess
}

/// Evaluates a device against a load.
pub fn provision(load: &GameLoad, device: &EngineConfig) -> Provisioning {
    let s = device.lookup_time.as_secs_f64();
    let utilization = load.total_pps() * s;
    let drain = f64::from(load.players) * s;
    let inbound_per_drain = load.inbound_pps * drain;
    // Inbound packets beyond the WAN queue during a drain are dropped;
    // losses per second = excess per drain × drains per second.
    let est_loss = if utilization >= 1.0 {
        // Saturated: loss is the structural overload fraction.
        1.0 - 1.0 / utilization
    } else {
        let excess = poisson_excess(inbound_per_drain, device.wan_queue);
        let per_sec = excess / load.tick.as_secs_f64();
        (per_sec / load.inbound_pps).min(1.0)
    };
    let worst_delay = SimDuration::from_secs_f64((device.wan_queue + device.lan_queue) as f64 * s);
    Provisioning {
        utilization,
        drain_window: SimDuration::from_secs_f64(drain),
        inbound_per_drain,
        est_inbound_loss: est_loss,
        worst_delay,
        within_latency_budget: worst_delay.as_secs_f64() <= load.tick.as_secs_f64() / 4.0,
    }
}

/// The smallest lookup capacity (pps) for which the estimated inbound loss
/// stays below `target_loss`, holding the device's queues fixed.
pub fn required_capacity(load: &GameLoad, device: &EngineConfig, target_loss: f64) -> f64 {
    // Loss is monotone in lookup time; bisect on capacity.
    let mut lo = load.total_pps(); // below this the device saturates
    let mut hi = 1e7;
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        let cfg = EngineConfig {
            lookup_time: SimDuration::from_secs_f64(1.0 / mid),
            ..device.clone()
        };
        if provision(load, &cfg).est_inbound_loss > target_loss {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// How many of these game servers fit behind one device at the target loss.
pub fn servers_supported(per_server: &GameLoad, device: &EngineConfig, target_loss: f64) -> u32 {
    let mut n = 0;
    loop {
        let combined = GameLoad {
            players: per_server.players * (n + 1),
            tick: per_server.tick,
            inbound_pps: per_server.inbound_pps * f64::from(n + 1),
        };
        let p = provision(&combined, device);
        if p.utilization >= 1.0 || p.est_inbound_loss > target_loss {
            return n;
        }
        n += 1;
        if n > 10_000 {
            return n; // device is effectively unconstrained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_helpers() {
        // P(X > 0) = 1 − e^−mu.
        assert!((poisson_tail(1.0, 0) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        // Excess above 0 is the mean.
        assert!((poisson_excess(3.0, 0) - 3.0).abs() < 1e-6);
        // Excess above a huge threshold vanishes.
        assert!(poisson_excess(3.0, 60) < 1e-12);
        // Monotone in the threshold.
        assert!(poisson_excess(5.0, 2) > poisson_excess(5.0, 4));
    }

    #[test]
    fn paper_configuration_predicts_percent_scale_loss() {
        // 19 players behind the default (SMC-like) device: the model must
        // land in the same regime Table IV measured (~1%).
        let load = GameLoad::paper_server(19);
        let p = provision(&load, &EngineConfig::default());
        assert!(p.utilization < 1.0, "device is not saturated on average");
        assert!(
            (0.001..0.08).contains(&p.est_inbound_loss),
            "estimated loss {} should be percent-scale",
            p.est_inbound_loss
        );
        assert!(
            p.drain_window >= SimDuration::from_millis(10),
            "burst drain {} must be a sizable fraction of the tick",
            p.drain_window
        );
        assert!(!p.within_latency_budget || p.worst_delay.as_millis() <= 12);
    }

    #[test]
    fn loss_vanishes_with_fast_lookups() {
        let load = GameLoad::paper_server(19);
        let fast = EngineConfig {
            lookup_time: SimDuration::from_micros(50), // 20k pps core
            ..EngineConfig::default()
        };
        let p = provision(&load, &fast);
        assert!(p.est_inbound_loss < 1e-6, "loss {}", p.est_inbound_loss);
        assert!(p.within_latency_budget);
    }

    #[test]
    fn saturated_device_reports_structural_loss() {
        let load = GameLoad::paper_server(22);
        let slow = EngineConfig {
            lookup_time: SimDuration::from_millis(2), // 500 pps
            ..EngineConfig::default()
        };
        let p = provision(&load, &slow);
        assert!(p.utilization > 1.0);
        assert!(p.est_inbound_loss > 0.3);
    }

    #[test]
    fn required_capacity_is_consistent() {
        let load = GameLoad::paper_server(19);
        let cap = required_capacity(&load, &EngineConfig::default(), 0.001);
        assert!(cap > load.total_pps(), "must exceed the mean load");
        // Evaluating at the returned capacity meets the target.
        let cfg = EngineConfig {
            lookup_time: SimDuration::from_secs_f64(1.0 / cap),
            ..EngineConfig::default()
        };
        assert!(provision(&load, &cfg).est_inbound_loss <= 0.001 + 1e-9);
        // And the paper's device is below it (it lost ~1.3%).
        assert!(EngineConfig::default().capacity_pps() < cap);
    }

    #[test]
    fn servers_supported_scales_with_capacity() {
        let per_server = GameLoad::paper_server(19);
        let consumer = EngineConfig::default();
        let mid = EngineConfig {
            lookup_time: SimDuration::from_micros(20), // 50k pps router
            wan_queue: 256,
            lan_queue: 256,
            ..EngineConfig::default()
        };
        let small = servers_supported(&per_server, &consumer, 0.01);
        let big = servers_supported(&per_server, &mid, 0.01);
        assert!(small <= 1, "the SMC carries at most one server: {small}");
        assert!(big >= 20, "a 50k pps router carries dozens: {big}");
    }

    #[test]
    fn model_matches_simulation_order_of_magnitude() {
        // Cross-validate the closed form against the discrete-event engine.
        use crate::engine::ForwardingEngine;
        use csprov_net::{client_endpoint, server_endpoint, Direction, Packet, PacketKind};
        use csprov_sim::{RngStream, SimTime, Simulator};

        let players = 19u32;
        let load = GameLoad::paper_server(players);
        let device = EngineConfig {
            // Disable housekeeping so the analytical model's assumptions hold.
            housekeeping_interval: SimDuration::ZERO,
            ..EngineConfig::default()
        };
        let predicted = provision(&load, &device).est_inbound_loss;

        let mut sim = Simulator::new();
        let engine = ForwardingEngine::new(device);
        let mk = |dir: Direction| Packet {
            src: client_endpoint(1),
            dst: server_endpoint(),
            app_len: 40,
            kind: PacketKind::ClientCommand,
            session: 1,
            direction: dir,
            sent_at: SimTime::ZERO,
        };
        // 120 s of synthetic load: tick bursts + Poisson inbound.
        for t in 0..(120 * 20) {
            let at = SimTime::from_millis(t * 50);
            let engine2 = engine.clone();
            sim.schedule_at(at, move |sim| {
                for _ in 0..players {
                    engine2.submit(sim, mk(Direction::Outbound), |_, _| {});
                }
            });
        }
        let mut rng = RngStream::new(77);
        let mut t_ns = 0u64;
        let end_ns = 120_000_000_000;
        let mean_gap = 1e9 / load.inbound_pps;
        loop {
            t_ns += (-(rng.next_f64_open().ln()) * mean_gap) as u64;
            if t_ns >= end_ns {
                break;
            }
            let engine2 = engine.clone();
            sim.schedule_at(SimTime::from_nanos(t_ns), move |sim| {
                engine2.submit(sim, mk(Direction::Inbound), |_, _| {});
            });
        }
        sim.run();
        let measured = engine.stats().loss_rate(Direction::Inbound);
        assert!(
            measured > 0.0 && predicted > 0.0,
            "both must predict loss: sim {measured}, model {predicted}"
        );
        let ratio = measured / predicted;
        assert!(
            (0.2..5.0).contains(&ratio),
            "model and simulation within a factor: sim {measured} vs model {predicted}"
        );
    }
}
