//! The NAT device of Section IV: translation table + forwarding engine +
//! tap points, implementing the game world's [`Middlebox`] interface.
//!
//! Four taps mirror the paper's measurement setup (Table IV, Figures 14/15):
//! `clients → NAT`, `NAT → server` (inbound pair) and `server → NAT`,
//! `NAT → clients` (outbound pair).

use crate::engine::{EngineConfig, EngineStats, ForwardingEngine};
use crate::metrics::RouterMetrics;
use csprov_game::{Deliver, Middlebox};
use csprov_net::{Direction, Packet, TraceRecord, TraceSink};
use csprov_sim::{SimDuration, SimTime, Simulator};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Sizing of the translation table — the degradation knob of the
/// NAT-exhaustion chaos campaign. The default mirrors a commodity box with
/// plenty of headroom for one game server's flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatTableConfig {
    /// Maximum simultaneous mappings.
    pub capacity: usize,
    /// Idle time after which a mapping may be reclaimed.
    pub idle_timeout: SimDuration,
}

impl Default for NatTableConfig {
    fn default() -> Self {
        NatTableConfig {
            capacity: 4096,
            idle_timeout: SimDuration::from_secs(300),
        }
    }
}

/// What happened to one [`NatTable::touch_outcome`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchOutcome {
    /// The flow already had a mapping; it was refreshed.
    Existing(u16),
    /// A new mapping was created without pressure.
    Inserted(u16),
    /// The table was full, but expiring idle entries recovered room.
    Recovered {
        /// Port of the new mapping.
        port: u16,
        /// Idle entries evicted to make room.
        evicted: usize,
    },
    /// The table was full and nothing was idle: the packet has no mapping.
    Refused,
}

impl TouchOutcome {
    /// The external port, when a mapping exists.
    pub fn port(self) -> Option<u16> {
        match self {
            TouchOutcome::Existing(p)
            | TouchOutcome::Inserted(p)
            | TouchOutcome::Recovered { port: p, .. } => Some(p),
            TouchOutcome::Refused => None,
        }
    }
}

/// Dynamic port-translation table with idle expiry.
///
/// The game server sits on the LAN side; each client flow gets an external
/// port mapping on first sight, refreshed by traffic in either direction.
#[derive(Debug)]
pub struct NatTable {
    mappings: HashMap<u32, NatEntry>,
    next_port: u16,
    idle_timeout: SimDuration,
    capacity: usize,
}

/// One translation entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatEntry {
    /// External (WAN-side) port assigned to the flow.
    pub external_port: u16,
    /// Last packet time in either direction.
    pub last_used: SimTime,
}

impl NatTable {
    /// Creates a table with the given idle timeout and entry capacity.
    pub fn new(idle_timeout: SimDuration, capacity: usize) -> Self {
        NatTable {
            mappings: HashMap::new(),
            next_port: 1024,
            idle_timeout,
            capacity,
        }
    }

    /// Creates a table from a [`NatTableConfig`].
    pub fn from_config(config: NatTableConfig) -> Self {
        Self::new(config.idle_timeout, config.capacity)
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// True if the table has no mappings.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// Looks up a flow's entry without refreshing it.
    pub fn get(&self, session: u32) -> Option<&NatEntry> {
        self.mappings.get(&session)
    }

    /// Touches (or creates) the mapping for `session`; returns its external
    /// port, or `None` if the table is full and no entry could be made.
    pub fn touch(&mut self, session: u32, now: SimTime) -> Option<u16> {
        self.touch_outcome(session, now).port()
    }

    /// Like [`NatTable::touch`], but reports *how* the mapping was obtained
    /// — whether idle entries had to be reclaimed, or the flow was refused —
    /// so the device can keep eviction/recovery counters.
    pub fn touch_outcome(&mut self, session: u32, now: SimTime) -> TouchOutcome {
        if let Some(e) = self.mappings.get_mut(&session) {
            e.last_used = now;
            return TouchOutcome::Existing(e.external_port);
        }
        let mut evicted = 0;
        if self.mappings.len() >= self.capacity {
            evicted = self.expire(now);
            if self.mappings.len() >= self.capacity {
                return TouchOutcome::Refused;
            }
        }
        let port = self.next_port;
        self.next_port = self.next_port.checked_add(1).unwrap_or(1024);
        self.mappings.insert(
            session,
            NatEntry {
                external_port: port,
                last_used: now,
            },
        );
        if evicted > 0 {
            TouchOutcome::Recovered { port, evicted }
        } else {
            TouchOutcome::Inserted(port)
        }
    }

    /// Evicts entries idle longer than the timeout; returns how many.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let timeout = self.idle_timeout;
        let before = self.mappings.len();
        self.mappings
            .retain(|_, e| now.saturating_since(e.last_used) <= timeout);
        before - self.mappings.len()
    }
}

/// Optional per-tap sinks for the four measurement points.
#[derive(Default)]
pub struct NatTaps {
    /// Clients → NAT (inbound, before forwarding).
    pub clients_to_nat: Option<Rc<RefCell<dyn TraceSink>>>,
    /// NAT → server (inbound, after forwarding).
    pub nat_to_server: Option<Rc<RefCell<dyn TraceSink>>>,
    /// Server → NAT (outbound, before forwarding).
    pub server_to_nat: Option<Rc<RefCell<dyn TraceSink>>>,
    /// NAT → clients (outbound, after forwarding).
    pub nat_to_clients: Option<Rc<RefCell<dyn TraceSink>>>,
}

fn tap(t: &Option<Rc<RefCell<dyn TraceSink>>>, now: SimTime, pkt: &Packet) {
    if let Some(s) = t {
        s.borrow_mut()
            .on_packet(&TraceRecord::from_packet(now, pkt));
    }
}

/// Degradation counters for the translation table: how the device coped
/// (or failed to cope) with mapping pressure. Shared handles.
#[derive(Debug, Clone, Default)]
pub struct NatStats {
    /// Packets refused for want of a mapping, per direction
    /// (`[inbound, outbound]`).
    pub table_drops: [csprov_sim::Counter; 2],
    /// Idle entries reclaimed under pressure.
    pub evictions: csprov_sim::Counter,
    /// Mappings created only after reclaiming idle entries (graceful
    /// recovery from a full table).
    pub recoveries: csprov_sim::Counter,
}

impl NatStats {
    /// Total refused packets across both directions.
    pub fn table_drops_total(&self) -> u64 {
        self.table_drops[0].get() + self.table_drops[1].get()
    }
}

/// The commercial-off-the-shelf NAT device (SMC Barricade stand-in).
pub struct NatDevice {
    engine: ForwardingEngine,
    table: RefCell<NatTable>,
    taps: NatTaps,
    /// Packets dropped because the translation table was full (legacy
    /// total; [`NatDevice::nat_stats`] splits this by direction).
    pub table_drops: csprov_sim::Counter,
    nat_stats: NatStats,
    metrics: RefCell<Option<RouterMetrics>>,
    journal: RefCell<Option<csprov_obs::Journal>>,
}

impl NatDevice {
    /// Creates a device with the given engine configuration and taps, and
    /// the default (ample) translation table.
    pub fn new(config: EngineConfig, taps: NatTaps) -> Self {
        Self::with_table(config, NatTableConfig::default(), taps)
    }

    /// Creates a device with an explicit translation-table sizing — the
    /// entry point for exhaustion campaigns.
    pub fn with_table(config: EngineConfig, table: NatTableConfig, taps: NatTaps) -> Self {
        NatDevice {
            engine: ForwardingEngine::new(config),
            table: RefCell::new(NatTable::from_config(table)),
            taps,
            table_drops: csprov_sim::Counter::new(),
            nat_stats: NatStats::default(),
            metrics: RefCell::new(None),
            journal: RefCell::new(None),
        }
    }

    /// Attaches [`RouterMetrics`] to this device and its engine; purely
    /// observational.
    pub fn attach_metrics(&self, metrics: RouterMetrics) {
        self.engine.attach_metrics(metrics.clone());
        *self.metrics.borrow_mut() = Some(metrics);
    }

    /// Attaches a trace [`csprov_obs::Journal`]: translation-table inserts,
    /// evictions, and refusals become `router.nat.*` events keyed by session.
    /// Write-only — attaching a journal never changes forwarding behaviour.
    pub fn attach_journal(&self, journal: csprov_obs::Journal) {
        *self.journal.borrow_mut() = Some(journal);
    }

    /// Engine counters (Table IV's loss accounting).
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Translation-table degradation counters.
    pub fn nat_stats(&self) -> NatStats {
        self.nat_stats.clone()
    }

    /// Live NAT-table size.
    pub fn table_len(&self) -> usize {
        self.table.borrow().len()
    }
}

impl Middlebox for NatDevice {
    fn forward(&self, sim: &mut Simulator, pkt: Packet, deliver: Deliver) {
        let now = sim.now();
        match pkt.direction {
            Direction::Inbound => tap(&self.taps.clients_to_nat, now, &pkt),
            Direction::Outbound => tap(&self.taps.server_to_nat, now, &pkt),
        }
        // Sessionless probe traffic shares one implicit mapping (the
        // server's static port-forward); session flows get dynamic entries.
        if pkt.session != u32::MAX {
            let dir_idx = match pkt.direction {
                Direction::Inbound => 0,
                Direction::Outbound => 1,
            };
            let outcome = self.table.borrow_mut().touch_outcome(pkt.session, now);
            let session = u64::from(pkt.session);
            match outcome {
                TouchOutcome::Refused => {
                    self.table_drops.incr();
                    self.nat_stats.table_drops[dir_idx].incr();
                    if let Some(m) = &*self.metrics.borrow() {
                        m.nat_table_drops.incr();
                    }
                    if let Some(j) = &*self.journal.borrow() {
                        let len = self.table.borrow().len() as u64;
                        j.emit(now.as_nanos(), "router.nat.refuse", session, len);
                    }
                    return;
                }
                TouchOutcome::Recovered { evicted, .. } => {
                    self.nat_stats.evictions.add(evicted as u64);
                    self.nat_stats.recoveries.incr();
                    if let Some(m) = &*self.metrics.borrow() {
                        m.nat_evictions.add(evicted as u64);
                        m.nat_recoveries.incr();
                    }
                    if let Some(j) = &*self.journal.borrow() {
                        j.emit(now.as_nanos(), "router.nat.evict", session, evicted as u64);
                        j.emit(now.as_nanos(), "router.nat.insert", session, 1);
                    }
                }
                TouchOutcome::Inserted(_) => {
                    if let Some(j) = &*self.journal.borrow() {
                        j.emit(now.as_nanos(), "router.nat.insert", session, 0);
                    }
                }
                TouchOutcome::Existing(_) => {}
            }
            if let Some(m) = &*self.metrics.borrow() {
                m.nat_table_size.set(self.table.borrow().len() as i64);
            }
            if let Some(j) = &*self.journal.borrow() {
                if !matches!(outcome, TouchOutcome::Existing(_)) {
                    let len = self.table.borrow().len() as u64;
                    j.emit(now.as_nanos(), "router.nat.table.level", 0, len);
                }
            }
        }
        let taps_post_in = self.taps.nat_to_server.clone();
        let taps_post_out = self.taps.nat_to_clients.clone();
        self.engine.submit(sim, pkt, move |sim, pkt| {
            let now = sim.now();
            match pkt.direction {
                Direction::Inbound => tap(&taps_post_in, now, &pkt),
                Direction::Outbound => tap(&taps_post_out, now, &pkt),
            }
            deliver(sim, pkt);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_net::{client_endpoint, server_endpoint, CountingSink, PacketKind};

    fn pkt(session: u32, dir: Direction) -> Packet {
        let (src, dst) = match dir {
            Direction::Inbound => (client_endpoint(session), server_endpoint()),
            Direction::Outbound => (server_endpoint(), client_endpoint(session)),
        };
        Packet {
            src,
            dst,
            app_len: 40,
            kind: PacketKind::ClientCommand,
            session,
            direction: dir,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn nat_table_assigns_stable_ports() {
        let mut t = NatTable::new(SimDuration::from_secs(60), 16);
        let p1 = t.touch(1, SimTime::ZERO).unwrap();
        let p2 = t.touch(2, SimTime::ZERO).unwrap();
        assert_ne!(p1, p2);
        assert_eq!(t.touch(1, SimTime::from_secs(1)), Some(p1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).unwrap().external_port, p1);
    }

    #[test]
    fn nat_table_expires_idle_entries() {
        let mut t = NatTable::new(SimDuration::from_secs(60), 16);
        t.touch(1, SimTime::ZERO);
        t.touch(2, SimTime::from_secs(50));
        let evicted = t.expire(SimTime::from_secs(90));
        assert_eq!(evicted, 1);
        assert!(t.get(1).is_none());
        assert!(t.get(2).is_some());
    }

    #[test]
    fn nat_table_full_behaviour() {
        let mut t = NatTable::new(SimDuration::from_secs(60), 2);
        assert!(t.touch(1, SimTime::ZERO).is_some());
        assert!(t.touch(2, SimTime::ZERO).is_some());
        // Full, nothing idle: refused.
        assert!(t.touch(3, SimTime::from_secs(1)).is_none());
        // After the others idle out, a new flow fits.
        assert!(t.touch(3, SimTime::from_secs(120)).is_some());
        assert!(!t.is_empty());
    }

    #[test]
    fn device_taps_see_pre_and_post_streams() {
        let pre = Rc::new(RefCell::new(CountingSink::new()));
        let post = Rc::new(RefCell::new(CountingSink::new()));
        let taps = NatTaps {
            clients_to_nat: Some(pre.clone()),
            nat_to_server: Some(post.clone()),
            ..Default::default()
        };
        let dev = NatDevice::new(
            EngineConfig {
                lookup_time: SimDuration::from_micros(500),
                wan_queue: 2,
                lan_queue: 2,
                ..EngineConfig::default()
            },
            taps,
        );
        let mut sim = Simulator::new();
        // 6 simultaneous inbound: 1 in service + 2 queued survive.
        for i in 0..6 {
            dev.forward(&mut sim, pkt(i, Direction::Inbound), Box::new(|_, _| {}));
        }
        sim.run();
        assert_eq!(pre.borrow().total_packets(), 6, "pre-tap sees all offers");
        assert_eq!(post.borrow().total_packets(), 3, "post-tap sees survivors");
        assert_eq!(dev.stats().dropped[0].get(), 3);
        assert_eq!(dev.table_len(), 6);
    }

    #[test]
    fn outbound_uses_lan_queue_and_taps() {
        let pre = Rc::new(RefCell::new(CountingSink::new()));
        let post = Rc::new(RefCell::new(CountingSink::new()));
        let dev = NatDevice::new(
            EngineConfig::default(),
            NatTaps {
                server_to_nat: Some(pre.clone()),
                nat_to_clients: Some(post.clone()),
                ..Default::default()
            },
        );
        let mut sim = Simulator::new();
        for i in 0..20 {
            dev.forward(&mut sim, pkt(i, Direction::Outbound), Box::new(|_, _| {}));
        }
        sim.run();
        // Default LAN queue (26) absorbs a full tick burst.
        assert_eq!(pre.borrow().total_packets(), 20);
        assert_eq!(post.borrow().total_packets(), 20);
        assert_eq!(dev.stats().dropped[1].get(), 0);
    }

    #[test]
    fn attached_metrics_mirror_engine_stats() {
        let reg = csprov_obs::MetricsRegistry::new();
        let dev = NatDevice::new(
            EngineConfig {
                lookup_time: SimDuration::from_micros(500),
                wan_queue: 2,
                lan_queue: 2,
                ..EngineConfig::default()
            },
            NatTaps::default(),
        );
        dev.attach_metrics(RouterMetrics::register(&reg));
        let mut sim = Simulator::new();
        for i in 0..6 {
            dev.forward(&mut sim, pkt(i, Direction::Inbound), Box::new(|_, _| {}));
        }
        sim.run();
        let m = RouterMetrics::register(&reg);
        assert_eq!(m.offered_in.get(), 6);
        assert_eq!(m.forwarded_in.get(), 3);
        assert_eq!(m.dropped_in.get(), 3);
        // Three lookups at 500 µs each.
        assert_eq!(m.busy_ns.get(), 3 * 500_000);
        assert_eq!(m.queue_depth.get(), 0);
        // One packet is in service (popped) while two wait in the FIFO.
        assert_eq!(m.queue_depth.high_water(), 2);
        assert_eq!(m.nat_table_size.get(), 6);
        assert_eq!(m.nat_table_drops.get(), 0);
    }

    #[test]
    fn touch_outcome_distinguishes_pressure() {
        let mut t = NatTable::new(SimDuration::from_secs(60), 2);
        assert!(matches!(
            t.touch_outcome(1, SimTime::ZERO),
            TouchOutcome::Inserted(_)
        ));
        assert!(matches!(
            t.touch_outcome(1, SimTime::ZERO),
            TouchOutcome::Existing(_)
        ));
        assert!(matches!(
            t.touch_outcome(2, SimTime::ZERO),
            TouchOutcome::Inserted(_)
        ));
        // Full, nothing idle yet.
        assert_eq!(
            t.touch_outcome(3, SimTime::from_secs(1)),
            TouchOutcome::Refused
        );
        // Full, both entries idle: both reclaimed, mapping created.
        assert!(matches!(
            t.touch_outcome(3, SimTime::from_secs(120)),
            TouchOutcome::Recovered { evicted: 2, .. }
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn exhausted_table_refuses_then_recovers() {
        // Capacity 2, 10 s idle timeout: sessions 0 and 1 claim the table;
        // session 2 is refused while they are fresh and admitted after they
        // idle out.
        let dev = NatDevice::with_table(
            EngineConfig::default(),
            NatTableConfig {
                capacity: 2,
                idle_timeout: SimDuration::from_secs(10),
            },
            NatTaps::default(),
        );
        let mut sim = Simulator::new();
        dev.forward(&mut sim, pkt(0, Direction::Inbound), Box::new(|_, _| {}));
        dev.forward(&mut sim, pkt(1, Direction::Inbound), Box::new(|_, _| {}));
        sim.run();
        dev.forward(&mut sim, pkt(2, Direction::Inbound), Box::new(|_, _| {}));
        sim.run();
        let stats = dev.nat_stats();
        assert_eq!(stats.table_drops[0].get(), 1, "refused while table hot");
        assert_eq!(dev.table_drops.get(), 1, "legacy total tracks");
        assert_eq!(stats.recoveries.get(), 0);

        // 30 simulated seconds later both mappings are idle.
        let mut sim2 = Simulator::new();
        sim2.schedule_at(SimTime::from_secs(30), |_| {});
        sim2.run();
        let late = Packet {
            sent_at: SimTime::from_secs(30),
            ..pkt(2, Direction::Inbound)
        };
        let delivered = Rc::new(RefCell::new(0));
        let d = delivered.clone();
        dev.forward(&mut sim2, late, Box::new(move |_, _| *d.borrow_mut() += 1));
        sim2.run();
        assert_eq!(*delivered.borrow(), 1, "flow admitted after recovery");
        let stats = dev.nat_stats();
        assert_eq!(stats.recoveries.get(), 1);
        assert_eq!(stats.evictions.get(), 2);
        assert_eq!(stats.table_drops_total(), 1);
    }

    #[test]
    fn journal_records_table_lifecycle_without_changing_it() {
        let run = |journal: Option<csprov_obs::Journal>| {
            let dev = NatDevice::with_table(
                EngineConfig::default(),
                NatTableConfig {
                    capacity: 2,
                    idle_timeout: SimDuration::from_secs(10),
                },
                NatTaps::default(),
            );
            if let Some(j) = &journal {
                dev.attach_journal(j.clone());
            }
            let mut sim = Simulator::new();
            dev.forward(&mut sim, pkt(0, Direction::Inbound), Box::new(|_, _| {}));
            dev.forward(&mut sim, pkt(1, Direction::Inbound), Box::new(|_, _| {}));
            sim.run();
            dev.forward(&mut sim, pkt(2, Direction::Inbound), Box::new(|_, _| {}));
            sim.run();
            let mut sim2 = Simulator::new();
            sim2.schedule_at(SimTime::from_secs(30), |_| {});
            sim2.run();
            let late = Packet {
                sent_at: SimTime::from_secs(30),
                ..pkt(2, Direction::Inbound)
            };
            dev.forward(&mut sim2, late, Box::new(|_, _| {}));
            sim2.run();
            (dev.nat_stats(), dev.table_len())
        };

        let (plain_stats, plain_len) = run(None);
        let journal = csprov_obs::Journal::new();
        let (stats, len) = run(Some(journal.clone()));
        assert_eq!(stats.table_drops_total(), plain_stats.table_drops_total());
        assert_eq!(stats.evictions.get(), plain_stats.evictions.get());
        assert_eq!(len, plain_len, "journaling must not perturb the table");

        let counts: std::collections::BTreeMap<_, _> =
            journal.counts_by_kind().into_iter().collect();
        // Sessions 0 and 1 insert, session 2 re-inserts after recovery.
        assert_eq!(counts.get("router.nat.insert"), Some(&3));
        assert_eq!(counts.get("router.nat.refuse"), Some(&1));
        assert_eq!(counts.get("router.nat.evict"), Some(&1));
        assert_eq!(counts.get("router.nat.table.level"), Some(&3));
        let refuse = journal
            .events()
            .iter()
            .find(|e| e.kind == "router.nat.refuse")
            .copied()
            .unwrap();
        assert_eq!(refuse.key, 2, "refusal keyed by session id");
        assert_eq!(refuse.value, 2, "table full at capacity 2");
        let evict = journal
            .events()
            .iter()
            .find(|e| e.kind == "router.nat.evict")
            .copied()
            .unwrap();
        assert_eq!(evict.value, 2, "both idle mappings reclaimed");
        assert_eq!(evict.sim_ns, SimTime::from_secs(30).as_nanos());
    }

    #[test]
    fn probe_traffic_bypasses_table() {
        let dev = NatDevice::new(EngineConfig::default(), NatTaps::default());
        let mut sim = Simulator::new();
        dev.forward(
            &mut sim,
            pkt(u32::MAX, Direction::Inbound),
            Box::new(|_, _| {}),
        );
        sim.run();
        assert_eq!(dev.table_len(), 0);
        assert_eq!(dev.stats().forwarded[0].get(), 1);
    }
}
