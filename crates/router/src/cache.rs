//! Route caching with pluggable eviction policies.
//!
//! Section IV-B's "good news": game traffic's periodicity and tiny, frequent
//! packets make *preferential* route caching attractive — "preferential
//! route caching strategies based on packet size or packet frequency may
//! provide significant improvements in packet throughput". This module
//! implements that design space: a destination cache in front of the
//! [`crate::table::RouteTable`], with classic (LRU/LFU) and preferential
//! (small-packet, high-frequency) eviction policies, plus a simulator that
//! measures hit rates and effective lookup cost over a packet stream.

use crate::table::{NextHop, RouteTable};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Cache eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CachePolicy {
    /// Evict the least-recently-used destination.
    Lru,
    /// Evict the destination with the fewest total hits.
    Lfu,
    /// Evict the destination with the *largest* mean packet size first —
    /// preferring to keep small-packet (game) flows whose per-byte lookup
    /// cost is highest.
    SmallPacketPreferential,
    /// Evict the destination with the lowest packet frequency
    /// (hits per unit residence time).
    FrequencyPreferential,
}

impl CachePolicy {
    /// All policies, for sweeps.
    pub const ALL: [CachePolicy; 4] = [
        CachePolicy::Lru,
        CachePolicy::Lfu,
        CachePolicy::SmallPacketPreferential,
        CachePolicy::FrequencyPreferential,
    ];
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    hop: NextHop,
    last_used: u64,
    inserted: u64,
    hits: u64,
    mean_size: f64,
}

/// A fixed-capacity route cache.
#[derive(Debug)]
pub struct RouteCache {
    policy: CachePolicy,
    capacity: usize,
    entries: HashMap<Ipv4Addr, CacheEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    journal: Option<(csprov_obs::Journal, u64)>,
}

impl RouteCache {
    /// Creates a cache.
    pub fn new(policy: CachePolicy, capacity: usize) -> Self {
        assert!(capacity > 0);
        RouteCache {
            policy,
            capacity,
            entries: HashMap::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            journal: None,
        }
    }

    /// Attaches a trace journal: every `every`-th access emits a
    /// `router.cache.hit`/`router.cache.miss` event and every eviction
    /// emits `router.cache.evict`. The cache is trace-driven and has no sim
    /// clock, so events are stamped with the access ordinal instead of
    /// nanoseconds. Write-only — journaling never changes cache behaviour.
    pub fn attach_journal(&mut self, journal: csprov_obs::Journal, every: u64) {
        self.journal = Some((journal, every.max(1)));
    }

    /// The eviction policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Current number of cached destinations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit rate in `[0, 1]` (0 before any traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Looks up a destination; on a hit, refreshes the entry with this
    /// packet's size and returns the hop.
    pub fn access(&mut self, addr: Ipv4Addr, pkt_size: u32) -> Option<NextHop> {
        self.clock += 1;
        let clock = self.clock;
        let hop = match self.entries.get_mut(&addr) {
            Some(e) => {
                e.last_used = clock;
                e.hits += 1;
                // EWMA of the flow's packet size drives the size policy.
                e.mean_size = 0.9 * e.mean_size + 0.1 * f64::from(pkt_size);
                self.hits += 1;
                Some(e.hop)
            }
            None => {
                self.misses += 1;
                None
            }
        };
        if let Some((j, every)) = &self.journal {
            if clock % every == 0 {
                let kind = if hop.is_some() {
                    "router.cache.hit"
                } else {
                    "router.cache.miss"
                };
                j.emit(clock, kind, u64::from(u32::from(addr)), u64::from(pkt_size));
            }
        }
        hop
    }

    /// Installs a destination after a miss was resolved by the full table.
    pub fn insert(&mut self, addr: Ipv4Addr, hop: NextHop, pkt_size: u32) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&addr) {
            self.evict();
        }
        let clock = self.clock;
        self.entries.insert(
            addr,
            CacheEntry {
                hop,
                last_used: clock,
                inserted: clock,
                hits: 1,
                mean_size: f64::from(pkt_size),
            },
        );
    }

    fn evict(&mut self) {
        // Score each entry; evict the *highest* score. HashMap iteration
        // order is unspecified, so ties break on the address bits to keep
        // behaviour deterministic.
        let victim = self
            .entries
            .iter()
            .map(|(addr, e)| {
                let score = match self.policy {
                    CachePolicy::Lru => -(e.last_used as f64),
                    CachePolicy::Lfu => -(e.hits as f64),
                    CachePolicy::SmallPacketPreferential => e.mean_size,
                    CachePolicy::FrequencyPreferential => {
                        let residence = (self.clock - e.inserted).max(1) as f64;
                        -(e.hits as f64 / residence)
                    }
                };
                (score, u32::from(*addr), *addr)
            })
            .max_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.cmp(&b.1))
            })
            .map(|(_, _, addr)| addr);
        if let Some(addr) = victim {
            self.entries.remove(&addr);
            self.evictions += 1;
            if let Some((j, _)) = &self.journal {
                j.emit(
                    self.clock,
                    "router.cache.evict",
                    u64::from(u32::from(addr)),
                    self.evictions,
                );
            }
        }
    }
}

/// Outcome of running a packet stream through cache + table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSimResult {
    /// Cache hit rate.
    pub hit_rate: f64,
    /// Mean lookup cost in trie-node visits (hits cost 1).
    pub mean_cost: f64,
    /// Relative throughput vs. a cache-less router (full lookup every
    /// packet): `cost_without / cost_with`.
    pub speedup: f64,
    /// Packets processed.
    pub packets: u64,
}

/// Replays `(dst, size)` packets through a cache in front of a table.
pub fn simulate_cache(
    table: &RouteTable,
    policy: CachePolicy,
    capacity: usize,
    stream: impl Iterator<Item = (Ipv4Addr, u32)>,
) -> CacheSimResult {
    simulate_cache_journaled(table, policy, capacity, stream, None)
}

/// [`simulate_cache`] with an optional trace journal: `(journal, every)`
/// samples every `every`-th access. Journaling is write-only, so the result
/// is identical to the unjournaled run.
pub fn simulate_cache_journaled(
    table: &RouteTable,
    policy: CachePolicy,
    capacity: usize,
    stream: impl Iterator<Item = (Ipv4Addr, u32)>,
    journal: Option<(csprov_obs::Journal, u64)>,
) -> CacheSimResult {
    let mut cache = RouteCache::new(policy, capacity);
    if let Some((j, every)) = journal {
        cache.attach_journal(j, every);
    }
    let mut total_cost = 0u64;
    let mut total_full_cost = 0u64;
    let mut packets = 0u64;
    for (addr, size) in stream {
        packets += 1;
        let (_, full_cost) = table.lookup(addr);
        total_full_cost += u64::from(full_cost);
        match cache.access(addr, size) {
            Some(_) => total_cost += 1,
            None => {
                let (hop, cost) = table.lookup(addr);
                total_cost += u64::from(cost);
                if let Some(hop) = hop {
                    cache.insert(addr, hop, size);
                }
            }
        }
    }
    let mean_cost = if packets == 0 {
        0.0
    } else {
        total_cost as f64 / packets as f64
    };
    let speedup = if total_cost == 0 {
        1.0
    } else {
        total_full_cost as f64 / total_cost as f64
    };
    CacheSimResult {
        hit_rate: cache.hit_rate(),
        mean_cost,
        speedup,
        packets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn table() -> RouteTable {
        let mut t = RouteTable::new();
        t.insert(ip(0, 0, 0, 0), 0, NextHop(0));
        t.insert(ip(10, 0, 0, 0), 8, NextHop(1));
        t.insert(ip(20, 0, 0, 0), 8, NextHop(2));
        t
    }

    #[test]
    fn hit_after_insert() {
        let mut c = RouteCache::new(CachePolicy::Lru, 4);
        assert_eq!(c.access(ip(10, 0, 0, 1), 40), None);
        c.insert(ip(10, 0, 0, 1), NextHop(1), 40);
        assert_eq!(c.access(ip(10, 0, 0, 1), 40), Some(NextHop(1)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut c = RouteCache::new(CachePolicy::Lru, 2);
        c.insert(ip(1, 0, 0, 1), NextHop(1), 40);
        c.insert(ip(1, 0, 0, 2), NextHop(2), 40);
        c.access(ip(1, 0, 0, 1), 40); // 1 is now warmer
        c.insert(ip(1, 0, 0, 3), NextHop(3), 40);
        assert!(c.access(ip(1, 0, 0, 1), 40).is_some());
        assert!(c.access(ip(1, 0, 0, 2), 40).is_none(), "2 was evicted");
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn lfu_keeps_hot_entries() {
        let mut c = RouteCache::new(CachePolicy::Lfu, 2);
        c.insert(ip(1, 0, 0, 1), NextHop(1), 40);
        for _ in 0..10 {
            c.access(ip(1, 0, 0, 1), 40);
        }
        c.insert(ip(1, 0, 0, 2), NextHop(2), 40);
        c.insert(ip(1, 0, 0, 3), NextHop(3), 40); // evicts 2 (1 hit)
        assert!(c.access(ip(1, 0, 0, 1), 40).is_some());
        assert!(c.access(ip(1, 0, 0, 2), 40).is_none());
    }

    #[test]
    fn size_preferential_keeps_small_packet_flows() {
        let mut c = RouteCache::new(CachePolicy::SmallPacketPreferential, 2);
        c.insert(ip(1, 0, 0, 1), NextHop(1), 40); // game flow
        c.insert(ip(1, 0, 0, 2), NextHop(2), 1400); // bulk flow
        c.insert(ip(1, 0, 0, 3), NextHop(3), 60); // evicts the bulk flow
        assert!(c.access(ip(1, 0, 0, 1), 40).is_some());
        assert!(c.access(ip(1, 0, 0, 2), 1400).is_none());
        assert!(c.access(ip(1, 0, 0, 3), 60).is_some());
    }

    #[test]
    fn frequency_preferential_keeps_chatty_flows() {
        let mut c = RouteCache::new(CachePolicy::FrequencyPreferential, 2);
        c.insert(ip(1, 0, 0, 1), NextHop(1), 40);
        for _ in 0..20 {
            c.access(ip(1, 0, 0, 1), 40); // high frequency
        }
        c.insert(ip(1, 0, 0, 2), NextHop(2), 40);
        c.insert(ip(1, 0, 0, 3), NextHop(3), 40);
        assert!(c.access(ip(1, 0, 0, 1), 40).is_some());
        assert!(c.access(ip(1, 0, 0, 2), 40).is_none());
    }

    #[test]
    fn cache_sim_game_traffic_hits_hard() {
        // 20 destinations revisited constantly: tiny cache suffices.
        let t = table();
        let stream = (0..10_000u32).map(|i| (ip(10, 0, 0, (i % 20) as u8), 40u32));
        let r = simulate_cache(&t, CachePolicy::Lru, 32, stream);
        assert!(r.hit_rate > 0.99, "hit rate {}", r.hit_rate);
        assert!(r.speedup > 5.0, "speedup {}", r.speedup);
        assert_eq!(r.packets, 10_000);
    }

    #[test]
    fn cache_sim_scan_traffic_defeats_lru() {
        // A strict cyclic scan over more destinations than slots: LRU
        // always evicts the entry about to be reused.
        let t = table();
        let stream = (0..5_000u32).map(|i| (ip(10, 0, (i % 64 / 256) as u8, (i % 64) as u8), 1400));
        let r = simulate_cache(&t, CachePolicy::Lru, 16, stream);
        assert!(r.hit_rate < 0.05, "hit rate {}", r.hit_rate);
    }

    #[test]
    fn preferential_beats_lru_on_mixed_traffic() {
        // Game flows (few, hot, tiny packets) + a wide scan of bulk flows.
        // The size-preferential policy shields the game flows from the scan.
        let t = table();
        let mixed = |i: u32| -> (Ipv4Addr, u32) {
            if i % 2 == 0 {
                (ip(10, 0, 0, ((i / 2) % 18) as u8), 40) // 18 game clients
            } else {
                let x = (i / 2) % 4000;
                (ip(20, (x / 256) as u8, (x % 256) as u8, 1), 1200) // scan
            }
        };
        let lru = simulate_cache(&t, CachePolicy::Lru, 24, (0..80_000).map(mixed));
        let pref = simulate_cache(
            &t,
            CachePolicy::SmallPacketPreferential,
            24,
            (0..80_000).map(mixed),
        );
        assert!(
            pref.hit_rate > lru.hit_rate + 0.05,
            "preferential {} vs lru {}",
            pref.hit_rate,
            lru.hit_rate
        );
    }

    #[test]
    fn journal_samples_hits_and_misses_without_changing_results() {
        let t = table();
        let stream = || (0..1_000u32).map(|i| (ip(10, 0, 0, (i % 40) as u8), 40u32));
        let plain = simulate_cache(&t, CachePolicy::Lru, 16, stream());
        let journal = csprov_obs::Journal::new();
        let journaled = simulate_cache_journaled(
            &t,
            CachePolicy::Lru,
            16,
            stream(),
            Some((journal.clone(), 1)),
        );
        assert_eq!(plain, journaled, "journaling must not change the sim");

        let counts: std::collections::BTreeMap<_, _> =
            journal.counts_by_kind().into_iter().collect();
        let hits = counts.get("router.cache.hit").copied().unwrap_or(0);
        let misses = counts.get("router.cache.miss").copied().unwrap_or(0);
        assert_eq!(hits + misses, 1_000, "stride 1 journals every access");
        assert!(counts.get("router.cache.evict").copied().unwrap_or(0) > 0);
        // Events carry the access ordinal as their deterministic time axis.
        let first = journal.events()[0];
        assert_eq!(first.sim_ns, 1);
        assert_eq!(first.kind, "router.cache.miss");

        // A coarser stride samples proportionally fewer decisions.
        let sparse = csprov_obs::Journal::new();
        simulate_cache_journaled(
            &t,
            CachePolicy::Lru,
            16,
            stream(),
            Some((sparse.clone(), 100)),
        );
        let counts: std::collections::BTreeMap<_, _> =
            sparse.counts_by_kind().into_iter().collect();
        let sampled = counts.get("router.cache.hit").copied().unwrap_or(0)
            + counts.get("router.cache.miss").copied().unwrap_or(0);
        assert_eq!(sampled, 10);
    }

    #[test]
    fn journal_stride_zero_is_clamped_not_divide_by_zero() {
        // Regression test: `attach_journal(journal, 0)` used to reach
        // `clock % every == 0` with `every == 0` on the first access and
        // panic with a divide-by-zero. Stride 0 must behave like stride 1.
        let t = table();
        let journal = csprov_obs::Journal::new();
        let mut cache = RouteCache::new(CachePolicy::Lru, 16);
        cache.attach_journal(journal.clone(), 0);
        for i in 0..50u32 {
            let addr = ip(10, 0, 0, (i % 8) as u8);
            if cache.access(addr, 40).is_none() {
                if let (Some(hop), _) = t.lookup(addr) {
                    cache.insert(addr, hop, 40);
                }
            }
        }
        let counts: std::collections::BTreeMap<_, _> =
            journal.counts_by_kind().into_iter().collect();
        let journaled = counts.get("router.cache.hit").copied().unwrap_or(0)
            + counts.get("router.cache.miss").copied().unwrap_or(0);
        assert_eq!(
            journaled, 50,
            "stride 0 clamps to 1: every access journaled"
        );
    }

    #[test]
    fn empty_stream() {
        let t = table();
        let r = simulate_cache(&t, CachePolicy::Lru, 4, std::iter::empty());
        assert_eq!(r.packets, 0);
        assert_eq!(r.mean_cost, 0.0);
        assert_eq!(r.speedup, 1.0);
    }
}
