//! The forwarding-engine model: a route-lookup CPU behind small queues.
//!
//! This is the mechanism Section IV of the paper identifies: a commodity
//! NAT/router is limited by *route-lookup rate* (the SMC Barricade is rated
//! 1000–1500 packets per second), not link bandwidth, so a game server's
//! 50 ms bursts of tiny packets overwhelm it while a bulk TCP transfer of
//! the same bit-rate would not.
//!
//! The model: one CPU serving packets in arrival order at a fixed per-packet
//! lookup time, fed by two direction-specific drop-tail queues (WAN→LAN =
//! inbound toward the server, LAN→WAN = outbound toward the clients). Loss
//! is emergent: the server's tick burst monopolizes the CPU and the small
//! WAN-side queue overflows — exactly the paper's explanation for inbound
//! loss exceeding outbound.

use crate::metrics::RouterMetrics;
use csprov_net::{Direction, Packet};
use csprov_sim::{Counter, SimDuration, SimTime, Simulator};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// Forwarding-engine parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// CPU time consumed per forwarded packet (route lookup + NAT rewrite).
    /// The SMC's 1000–1500 pps rating corresponds to roughly 0.7–1 ms.
    pub lookup_time: SimDuration,
    /// Queue slots on the WAN side (clients → server direction).
    pub wan_queue: usize,
    /// Queue slots on the LAN side (server → clients direction).
    pub lan_queue: usize,
    /// Periodic housekeeping (NAT table maintenance, timers): the CPU
    /// stalls for `housekeeping_time` once per `housekeeping_interval`.
    /// When a stall collides with a server tick burst, the LAN queue can
    /// overflow — the source of the paper's small-but-nonzero outbound
    /// loss (Table IV: 0.046%).
    pub housekeeping_interval: SimDuration,
    /// Length of each housekeeping stall.
    pub housekeeping_time: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // Calibrated to reproduce Table IV: ~1.3% inbound, ~0.05% outbound
        // loss under a full 22-slot server.
        EngineConfig {
            lookup_time: SimDuration::from_micros(700),
            wan_queue: 9,
            lan_queue: 22,
            housekeeping_interval: SimDuration::from_secs(90),
            housekeeping_time: SimDuration::from_millis(45),
        }
    }
}

impl EngineConfig {
    /// The engine's sustainable throughput in packets per second.
    pub fn capacity_pps(&self) -> f64 {
        1.0 / self.lookup_time.as_secs_f64()
    }
}

/// Online sojourn-time (queueing + service delay) statistics.
///
/// The paper's warning is not only loss: under-provisioned devices add
/// "consistent packet delay and delay jitter". Shared-handle semantics like
/// [`Counter`].
#[derive(Debug, Clone, Default)]
pub struct DelayStats {
    count: Rc<Cell<u64>>,
    sum_ns: Rc<Cell<u64>>,
    max_ns: Rc<Cell<u64>>,
}

impl DelayStats {
    fn record(&self, d: SimDuration) {
        self.count.set(self.count.get() + 1);
        self.sum_ns.set(self.sum_ns.get() + d.as_nanos());
        if d.as_nanos() > self.max_ns.get() {
            self.max_ns.set(d.as_nanos());
        }
    }

    /// Packets measured.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Mean device sojourn time.
    pub fn mean(&self) -> SimDuration {
        match self.sum_ns.get().checked_div(self.count.get()) {
            Some(ns) => SimDuration::from_nanos(ns),
            None => SimDuration::ZERO,
        }
    }

    /// Worst-case device sojourn time.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns.get())
    }
}

/// Per-direction offered/forwarded/dropped counters.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Packets offered, `[inbound, outbound]`.
    pub offered: [Counter; 2],
    /// Packets forwarded, `[inbound, outbound]`.
    pub forwarded: [Counter; 2],
    /// Packets dropped at the queues, `[inbound, outbound]`.
    pub dropped: [Counter; 2],
    /// Sojourn-time statistics of forwarded packets, `[inbound, outbound]`.
    pub delay: [DelayStats; 2],
}

impl EngineStats {
    fn idx(d: Direction) -> usize {
        match d {
            Direction::Inbound => 0,
            Direction::Outbound => 1,
        }
    }

    /// Loss rate for a direction (0 if nothing offered).
    pub fn loss_rate(&self, d: Direction) -> f64 {
        let i = Self::idx(d);
        let offered = self.offered[i].get();
        if offered == 0 {
            0.0
        } else {
            self.dropped[i].get() as f64 / offered as f64
        }
    }
}

type Deliver = Box<dyn FnOnce(&mut Simulator, Packet)>;

struct EngineState {
    config: EngineConfig,
    queue: VecDeque<(Packet, SimTime, Deliver)>,
    occupancy: [usize; 2], // per-direction occupancy in the shared FIFO
    busy: bool,
    next_housekeeping: csprov_sim::SimTime,
    stats: EngineStats,
    metrics: Option<RouterMetrics>,
}

/// A shared-CPU store-and-forward engine. Clone shares state.
#[derive(Clone)]
pub struct ForwardingEngine {
    state: Rc<RefCell<EngineState>>,
}

impl ForwardingEngine {
    /// Creates an engine.
    pub fn new(config: EngineConfig) -> Self {
        ForwardingEngine {
            state: Rc::new(RefCell::new(EngineState {
                next_housekeeping: csprov_sim::SimTime::ZERO + config.housekeeping_interval,
                config,
                queue: VecDeque::new(),
                occupancy: [0, 0],
                busy: false,
                stats: EngineStats::default(),
                metrics: None,
            })),
        }
    }

    /// Handles to the counters.
    pub fn stats(&self) -> EngineStats {
        self.state.borrow().stats.clone()
    }

    /// Attaches [`RouterMetrics`]; purely observational — service order,
    /// queue limits and timing are unchanged.
    pub fn attach_metrics(&self, metrics: RouterMetrics) {
        self.state.borrow_mut().metrics = Some(metrics);
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.state.borrow().config.clone()
    }

    /// Current total queue occupancy (for tests and instrumentation).
    pub fn queue_depth(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Offers a packet; `deliver` fires when the CPU finishes its lookup,
    /// or never if the direction's queue is full.
    pub fn submit<F>(&self, sim: &mut Simulator, pkt: Packet, deliver: F)
    where
        F: FnOnce(&mut Simulator, Packet) + 'static,
    {
        let start_service = {
            let mut st = self.state.borrow_mut();
            let dir = EngineStats::idx(pkt.direction);
            st.stats.offered[dir].incr();
            if let Some(m) = &st.metrics {
                m.offered(dir).incr();
            }
            let limit = match pkt.direction {
                Direction::Inbound => st.config.wan_queue,
                Direction::Outbound => st.config.lan_queue,
            };
            if st.occupancy[dir] >= limit {
                st.stats.dropped[dir].incr();
                if let Some(m) = &st.metrics {
                    m.dropped(dir).incr();
                }
                return;
            }
            st.occupancy[dir] += 1;
            let arrived = sim.now();
            st.queue.push_back((pkt, arrived, Box::new(deliver)));
            if let Some(m) = &st.metrics {
                m.queue_depth.adjust(1);
            }
            if st.busy {
                false
            } else {
                st.busy = true;
                true
            }
        };
        if start_service {
            self.serve_next(sim);
        }
    }

    fn serve_next(&self, sim: &mut Simulator) {
        let (lookup, job) = {
            let mut st = self.state.borrow_mut();
            // Housekeeping: if due, the CPU stalls before the next lookup.
            let mut service = st.config.lookup_time;
            if !st.config.housekeeping_interval.is_zero() && sim.now() >= st.next_housekeeping {
                service += st.config.housekeeping_time;
                st.next_housekeeping = sim.now() + st.config.housekeeping_interval;
            }
            match st.queue.pop_front() {
                Some((pkt, arrived, deliver)) => {
                    let dir = EngineStats::idx(pkt.direction);
                    st.occupancy[dir] -= 1;
                    if let Some(m) = &st.metrics {
                        m.queue_depth.adjust(-1);
                        m.busy_ns.add(service.as_nanos());
                    }
                    (service, Some((pkt, arrived, deliver)))
                }
                None => {
                    st.busy = false;
                    (SimDuration::ZERO, None)
                }
            }
        };
        if let Some((pkt, arrived, deliver)) = job {
            let this = self.clone();
            sim.schedule_in(lookup, move |sim| {
                {
                    let st = this.state.borrow();
                    let dir = EngineStats::idx(pkt.direction);
                    st.stats.forwarded[dir].incr();
                    st.stats.delay[dir].record(sim.now().saturating_since(arrived));
                    if let Some(m) = &st.metrics {
                        m.forwarded(dir).incr();
                    }
                }
                deliver(sim, pkt);
                this.serve_next(sim);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_net::{client_endpoint, server_endpoint, PacketKind};
    use csprov_sim::SimTime;

    fn pkt(dir: Direction) -> Packet {
        let (src, dst) = match dir {
            Direction::Inbound => (client_endpoint(1), server_endpoint()),
            Direction::Outbound => (server_endpoint(), client_endpoint(1)),
        };
        Packet {
            src,
            dst,
            app_len: 40,
            kind: PacketKind::ClientCommand,
            session: 1,
            direction: dir,
            sent_at: SimTime::ZERO,
        }
    }

    fn cfg(lookup_us: u64, wan: usize, lan: usize) -> EngineConfig {
        EngineConfig {
            lookup_time: SimDuration::from_micros(lookup_us),
            wan_queue: wan,
            lan_queue: lan,
            housekeeping_interval: SimDuration::ZERO,
            housekeeping_time: SimDuration::ZERO,
        }
    }

    #[test]
    fn capacity_matches_lookup_time() {
        assert!((cfg(1000, 4, 4).capacity_pps() - 1000.0).abs() < 1e-9);
        let default_cap = EngineConfig::default().capacity_pps();
        assert!(
            (1000.0..1500.0).contains(&default_cap),
            "default must sit in the SMC's rated band, got {default_cap}"
        );
    }

    #[test]
    fn forwards_after_lookup_delay() {
        let mut sim = Simulator::new();
        let engine = ForwardingEngine::new(cfg(500, 8, 8));
        let delivered = Rc::new(RefCell::new(Vec::new()));
        let d = delivered.clone();
        engine.submit(&mut sim, pkt(Direction::Inbound), move |sim, _| {
            d.borrow_mut().push(sim.now());
        });
        sim.run();
        assert_eq!(*delivered.borrow(), vec![SimTime::from_micros(500)]);
    }

    #[test]
    fn serializes_bursts() {
        let mut sim = Simulator::new();
        let engine = ForwardingEngine::new(cfg(1000, 8, 8));
        let times = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let t = times.clone();
            engine.submit(&mut sim, pkt(Direction::Outbound), move |sim, _| {
                t.borrow_mut().push(sim.now().as_millis());
            });
        }
        sim.run();
        assert_eq!(*times.borrow(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn per_direction_queue_limits() {
        let mut sim = Simulator::new();
        let engine = ForwardingEngine::new(cfg(1000, 2, 8));
        let in_delivered = Rc::new(RefCell::new(0u32));
        let out_delivered = Rc::new(RefCell::new(0u32));
        for _ in 0..6 {
            let d = in_delivered.clone();
            engine.submit(&mut sim, pkt(Direction::Inbound), move |_, _| {
                *d.borrow_mut() += 1;
            });
            let d = out_delivered.clone();
            engine.submit(&mut sim, pkt(Direction::Outbound), move |_, _| {
                *d.borrow_mut() += 1;
            });
        }
        sim.run();
        // Inbound: 2 queued + the 1 in service when queue filled... the
        // first submit goes straight to service, so 3 inbound survive.
        assert_eq!(*in_delivered.borrow(), 3);
        assert_eq!(*out_delivered.borrow(), 6);
        let stats = engine.stats();
        assert_eq!(stats.dropped[0].get(), 3);
        assert_eq!(stats.dropped[1].get(), 0);
        assert!(stats.loss_rate(Direction::Inbound) > stats.loss_rate(Direction::Outbound));
    }

    #[test]
    fn burst_monopolizes_cpu_and_starves_other_direction() {
        // The paper's mechanism: a server tick burst (outbound) arrives just
        // before smooth inbound traffic; the inbound queue overflows while
        // the CPU drains the burst.
        let mut sim = Simulator::new();
        let engine = ForwardingEngine::new(cfg(750, 3, 30));
        // 20-packet outbound burst at t=0.
        for _ in 0..20 {
            engine.submit(&mut sim, pkt(Direction::Outbound), |_, _| {});
        }
        // Inbound packets every 2 ms during the ~15 ms drain.
        for i in 0..8u64 {
            let engine2 = engine.clone();
            sim.schedule_at(SimTime::from_millis(i * 2), move |sim| {
                engine2.submit(sim, pkt(Direction::Inbound), |_, _| {});
            });
        }
        sim.run();
        let stats = engine.stats();
        assert_eq!(stats.dropped[1].get(), 0, "outbound burst fits its queue");
        assert!(
            stats.dropped[0].get() > 0,
            "inbound must lose packets while the CPU drains the burst"
        );
    }

    #[test]
    fn idle_engine_recovers() {
        let mut sim = Simulator::new();
        let engine = ForwardingEngine::new(cfg(100, 2, 2));
        let delivered = Rc::new(RefCell::new(0u32));
        for _ in 0..3 {
            let d = delivered.clone();
            engine.submit(&mut sim, pkt(Direction::Inbound), move |_, _| {
                *d.borrow_mut() += 1;
            });
            sim.run();
        }
        assert_eq!(*delivered.borrow(), 3);
        assert_eq!(engine.queue_depth(), 0);
        assert_eq!(engine.stats().dropped[0].get(), 0);
    }

    #[test]
    fn delay_statistics_track_sojourn() {
        let mut sim = Simulator::new();
        let engine = ForwardingEngine::new(cfg(1000, 8, 8));
        // 4-packet burst: sojourns 1, 2, 3, 4 ms.
        for _ in 0..4 {
            engine.submit(&mut sim, pkt(Direction::Inbound), |_, _| {});
        }
        sim.run();
        let d = &engine.stats().delay[0];
        assert_eq!(d.count(), 4);
        assert_eq!(d.mean(), SimDuration::from_micros(2500));
        assert_eq!(d.max(), SimDuration::from_millis(4));
    }

    #[test]
    fn sustained_overload_drops_proportionally() {
        // Offer 2000 pps to a 1000 pps engine for 2 s: ~half must drop.
        let mut sim = Simulator::new();
        let engine = ForwardingEngine::new(cfg(1000, 4, 4));
        for i in 0..4000u64 {
            let engine2 = engine.clone();
            sim.schedule_at(SimTime::from_micros(i * 500), move |sim| {
                engine2.submit(sim, pkt(Direction::Inbound), |_, _| {});
            });
        }
        sim.run();
        let stats = engine.stats();
        let loss = stats.loss_rate(Direction::Inbound);
        assert!((0.4..0.6).contains(&loss), "loss = {loss}");
    }
}
