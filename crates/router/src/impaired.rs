//! An impairment wrapper around any [`Middlebox`]: applies a
//! [`FaultInjector`] (random drop / corruption / token-bucket shaping)
//! before delegating. Composes the smoltcp-style fault-injection layer with
//! the NAT device, e.g. to study how background loss stacks with the
//! device's own queue loss — the paper's observation that players self-tune
//! to the worst tolerable loss means small additions matter.

use csprov_game::{Deliver, Middlebox};
use csprov_net::{FaultConfig, FaultInjector, FaultStats, Packet};
use csprov_sim::{RngStream, Simulator};
use std::cell::RefCell;
use std::rc::Rc;

/// A middlebox that impairs traffic before (optionally) forwarding it on to
/// an inner middlebox.
pub struct ImpairedPath {
    injector: RefCell<FaultInjector>,
    inner: Option<Rc<dyn Middlebox>>,
}

impl ImpairedPath {
    /// Wraps `inner` with the given impairments.
    pub fn new(config: FaultConfig, rng: RngStream, inner: Option<Rc<dyn Middlebox>>) -> Self {
        ImpairedPath {
            injector: RefCell::new(FaultInjector::new(config, rng)),
            inner,
        }
    }

    /// Handles to the impairment counters.
    pub fn stats(&self) -> FaultStats {
        self.injector.borrow().stats()
    }
}

impl Middlebox for ImpairedPath {
    fn forward(&self, sim: &mut Simulator, pkt: Packet, deliver: Deliver) {
        if !self.injector.borrow_mut().admit(sim.now(), &pkt) {
            return;
        }
        match &self.inner {
            Some(inner) => inner.forward(sim, pkt, deliver),
            None => deliver(sim, pkt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::nat::{NatDevice, NatTaps};
    use csprov_net::{client_endpoint, server_endpoint, Direction, PacketKind};
    use csprov_sim::SimTime;

    fn pkt(i: u32) -> Packet {
        Packet {
            src: client_endpoint(i),
            dst: server_endpoint(),
            app_len: 40,
            kind: PacketKind::ClientCommand,
            session: i,
            direction: Direction::Inbound,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn passthrough_without_inner() {
        let path = ImpairedPath::new(FaultConfig::default(), RngStream::new(1), None);
        let mut sim = Simulator::new();
        let delivered = Rc::new(RefCell::new(0));
        for i in 0..100 {
            let d = delivered.clone();
            path.forward(&mut sim, pkt(i), Box::new(move |_, _| *d.borrow_mut() += 1));
        }
        sim.run();
        assert_eq!(*delivered.borrow(), 100);
        assert_eq!(path.stats().passed.get(), 100);
    }

    #[test]
    fn drops_before_inner_device() {
        let nat = Rc::new(NatDevice::new(EngineConfig::default(), NatTaps::default()));
        let path = ImpairedPath::new(
            FaultConfig {
                drop_chance: 0.5,
                ..Default::default()
            },
            RngStream::new(2),
            Some(nat.clone()),
        );
        let mut sim = Simulator::new();
        for i in 0..1_000 {
            path.forward(&mut sim, pkt(i % 5), Box::new(|_, _| {}));
            sim.run();
        }
        let dropped = path.stats().dropped.get();
        assert!((400..600).contains(&dropped), "dropped {dropped}");
        // Only survivors reached the NAT engine.
        assert_eq!(
            nat.stats().offered[0].get(),
            1_000 - dropped,
            "inner sees exactly the survivors"
        );
    }

    #[test]
    fn impairment_composes_with_delivery() {
        // Shaped to 10 pps: a 100-packet burst mostly sheds.
        let path = ImpairedPath::new(
            FaultConfig {
                rate_limit: Some(csprov_net::RateLimit {
                    burst: 10.0,
                    packets_per_sec: 10.0,
                }),
                ..Default::default()
            },
            RngStream::new(3),
            None,
        );
        let mut sim = Simulator::new();
        let delivered = Rc::new(RefCell::new(0));
        for i in 0..100 {
            let d = delivered.clone();
            path.forward(&mut sim, pkt(i), Box::new(move |_, _| *d.borrow_mut() += 1));
        }
        sim.run();
        assert_eq!(*delivered.borrow(), 10);
        assert_eq!(path.stats().shaped.get(), 90);
    }
}
