//! An impairment wrapper around any [`Middlebox`]: applies a per-direction
//! [`FaultInjector`] (uniform and Gilbert–Elliott bursty loss, corruption,
//! token-bucket shaping, reordering, duplication) before delegating.
//! Composes the smoltcp-style fault-injection layer with the NAT device,
//! e.g. to study how background loss stacks with the device's own queue
//! loss — the paper's observation that players self-tune to the worst
//! tolerable loss means small additions matter.
//!
//! Reordered packets are re-enqueued through the sim scheduler after a
//! jittered delay; duplicated ones are delivered immediately *and* again
//! after the delay — both copies pass through the inner middlebox, exactly
//! as a real duplicate would arrive at the NAT twice. Both directions pull
//! randomness from streams derived from one seed, so a chaos campaign is
//! replayable bit-for-bit.

use csprov_game::{Deliver, Middlebox};
use csprov_net::{Direction, Fate, FaultConfig, FaultInjector, FaultMetrics, FaultStats, Packet};
use csprov_sim::{RngStream, Simulator};
use std::cell::RefCell;
use std::rc::Rc;

/// A middlebox that impairs traffic before (optionally) forwarding it on to
/// an inner middlebox.
pub struct ImpairedPath {
    inbound: RefCell<FaultInjector>,
    outbound: RefCell<FaultInjector>,
    inner: Option<Rc<dyn Middlebox>>,
    metrics: RefCell<Option<FaultMetrics>>,
}

impl ImpairedPath {
    /// Wraps `inner`, impairing both directions with the same config (each
    /// direction still draws from its own derived RNG stream).
    pub fn new(config: FaultConfig, rng: RngStream, inner: Option<Rc<dyn Middlebox>>) -> Self {
        Self::with_directions(config.clone(), config, rng, inner)
    }

    /// Wraps `inner` with separate impairments per direction. Both
    /// injectors report into one shared [`FaultStats`] bundle.
    pub fn with_directions(
        inbound: FaultConfig,
        outbound: FaultConfig,
        rng: RngStream,
        inner: Option<Rc<dyn Middlebox>>,
    ) -> Self {
        let stats = FaultStats::default();
        ImpairedPath {
            inbound: RefCell::new(FaultInjector::with_stats(
                inbound,
                rng.derive("inbound"),
                stats.clone(),
            )),
            outbound: RefCell::new(FaultInjector::with_stats(
                outbound,
                rng.derive("outbound"),
                stats,
            )),
            inner,
            metrics: RefCell::new(None),
        }
    }

    /// Handles to the impairment counters (shared by both directions).
    pub fn stats(&self) -> FaultStats {
        self.inbound.borrow().stats()
    }

    /// Attaches registry-backed instruments mirroring the fate counters.
    /// Observe-only: fate decisions never read them back.
    pub fn attach_metrics(&self, metrics: FaultMetrics) {
        *self.metrics.borrow_mut() = Some(metrics);
    }

    /// Attaches a trace journal to both directional injectors: every
    /// impairment decision (reorder, duplicate, drop) becomes a
    /// `net.fault.*` event. Write-only — fates are drawn exactly as before.
    pub fn attach_journal(&self, journal: csprov_obs::Journal) {
        self.inbound.borrow_mut().attach_journal(journal.clone());
        self.outbound.borrow_mut().attach_journal(journal);
    }

    fn mirror(&self, fate: Fate) {
        if let Some(m) = self.metrics.borrow().as_ref() {
            m.offered.incr();
            use csprov_net::DropCause;
            match fate {
                Fate::Deliver => m.passed.incr(),
                Fate::DeliverDelayed(_) => m.reordered.incr(),
                Fate::Duplicate(_) => m.duplicated.incr(),
                Fate::Drop(DropCause::Random) => m.dropped_random.incr(),
                Fate::Drop(DropCause::Burst) => m.dropped_burst.incr(),
                Fate::Drop(DropCause::Corrupt) => m.corrupted.incr(),
                Fate::Drop(DropCause::Shaped) => m.shaped.incr(),
            }
        }
    }
}

/// Hands a surviving packet to the inner middlebox, or straight to the
/// delivery continuation when there is none.
fn pass_on(inner: &Option<Rc<dyn Middlebox>>, sim: &mut Simulator, pkt: Packet, deliver: Deliver) {
    match inner {
        Some(inner) => inner.forward(sim, pkt, deliver),
        None => deliver(sim, pkt),
    }
}

impl Middlebox for ImpairedPath {
    fn forward(&self, sim: &mut Simulator, pkt: Packet, deliver: Deliver) {
        let injector = match pkt.direction {
            Direction::Inbound => &self.inbound,
            Direction::Outbound => &self.outbound,
        };
        let fate = injector.borrow_mut().decide(sim.now(), &pkt);
        self.mirror(fate);
        match fate {
            Fate::Drop(_) => {}
            Fate::Deliver => pass_on(&self.inner, sim, pkt, deliver),
            Fate::DeliverDelayed(d) => {
                let inner = self.inner.clone();
                sim.schedule_in(d, move |sim| pass_on(&inner, sim, pkt, deliver));
            }
            Fate::Duplicate(d) => {
                let deliver: Rc<Deliver> = Rc::from(deliver);
                let first = deliver.clone();
                pass_on(
                    &self.inner,
                    sim,
                    pkt,
                    Box::new(move |sim, pkt| first(sim, pkt)),
                );
                let inner = self.inner.clone();
                sim.schedule_in(d, move |sim| {
                    let copy = deliver.clone();
                    pass_on(&inner, sim, pkt, Box::new(move |sim, pkt| copy(sim, pkt)));
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::nat::{NatDevice, NatTaps};
    use csprov_net::{client_endpoint, server_endpoint, PacketKind};
    use csprov_sim::{SimDuration, SimTime};

    fn pkt(i: u32) -> Packet {
        Packet {
            src: client_endpoint(i),
            dst: server_endpoint(),
            app_len: 40,
            kind: PacketKind::ClientCommand,
            session: i,
            direction: Direction::Inbound,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn passthrough_without_inner() {
        let path = ImpairedPath::new(FaultConfig::default(), RngStream::new(1), None);
        let mut sim = Simulator::new();
        let delivered = Rc::new(RefCell::new(0));
        for i in 0..100 {
            let d = delivered.clone();
            path.forward(&mut sim, pkt(i), Box::new(move |_, _| *d.borrow_mut() += 1));
        }
        sim.run();
        assert_eq!(*delivered.borrow(), 100);
        assert_eq!(path.stats().passed.get(), 100);
    }

    #[test]
    fn drops_before_inner_device() {
        let nat = Rc::new(NatDevice::new(EngineConfig::default(), NatTaps::default()));
        let path = ImpairedPath::new(
            FaultConfig {
                drop_chance: 0.5,
                ..Default::default()
            },
            RngStream::new(2),
            Some(nat.clone()),
        );
        let mut sim = Simulator::new();
        for i in 0..1_000 {
            path.forward(&mut sim, pkt(i % 5), Box::new(|_, _| {}));
            sim.run();
        }
        let dropped = path.stats().dropped.get();
        assert!((400..600).contains(&dropped), "dropped {dropped}");
        // Only survivors reached the NAT engine.
        assert_eq!(
            nat.stats().offered[0].get(),
            1_000 - dropped,
            "inner sees exactly the survivors"
        );
    }

    #[test]
    fn impairment_composes_with_delivery() {
        // Shaped to 10 pps: a 100-packet burst mostly sheds.
        let path = ImpairedPath::new(
            FaultConfig {
                rate_limit: Some(csprov_net::RateLimit {
                    burst: 10.0,
                    packets_per_sec: 10.0,
                }),
                ..Default::default()
            },
            RngStream::new(3),
            None,
        );
        let mut sim = Simulator::new();
        let delivered = Rc::new(RefCell::new(0));
        for i in 0..100 {
            let d = delivered.clone();
            path.forward(&mut sim, pkt(i), Box::new(move |_, _| *d.borrow_mut() += 1));
        }
        sim.run();
        assert_eq!(*delivered.borrow(), 10);
        assert_eq!(path.stats().shaped.get(), 90);
    }

    #[test]
    fn reordered_packets_arrive_later_in_order_of_delay() {
        let path = Rc::new(ImpairedPath::new(
            FaultConfig {
                reorder: Some(csprov_net::ReorderConfig {
                    chance: 1.0,
                    delay_min: SimDuration::from_millis(10),
                    delay_max: SimDuration::from_millis(10),
                }),
                ..Default::default()
            },
            RngStream::new(4),
            None,
        ));
        let mut sim = Simulator::new();
        let times: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        let t = times.clone();
        path.forward(
            &mut sim,
            pkt(0),
            Box::new(move |sim, _| t.borrow_mut().push(sim.now())),
        );
        sim.run();
        assert_eq!(*times.borrow(), vec![SimTime::from_millis(10)]);
        assert_eq!(path.stats().reordered.get(), 1);
    }

    #[test]
    fn duplicates_deliver_twice_through_inner() {
        let nat = Rc::new(NatDevice::new(EngineConfig::default(), NatTaps::default()));
        let path = ImpairedPath::new(
            FaultConfig {
                duplicate: Some(csprov_net::DuplicateConfig {
                    chance: 1.0,
                    delay_min: SimDuration::from_millis(2),
                    delay_max: SimDuration::from_millis(2),
                }),
                ..Default::default()
            },
            RngStream::new(5),
            Some(nat.clone()),
        );
        let mut sim = Simulator::new();
        let delivered = Rc::new(RefCell::new(0));
        let d = delivered.clone();
        path.forward(&mut sim, pkt(0), Box::new(move |_, _| *d.borrow_mut() += 1));
        sim.run();
        assert_eq!(*delivered.borrow(), 2, "original + duplicate");
        assert_eq!(path.stats().duplicated.get(), 1);
        // Both copies crossed the inner NAT device.
        assert_eq!(nat.stats().offered[0].get(), 2);
        assert!(path.stats().conservation_holds());
    }

    #[test]
    fn per_direction_configs_are_independent() {
        // Drop every inbound packet; leave outbound untouched.
        let path = ImpairedPath::with_directions(
            FaultConfig {
                drop_chance: 1.0,
                ..Default::default()
            },
            FaultConfig::default(),
            RngStream::new(6),
            None,
        );
        let mut sim = Simulator::new();
        let delivered = Rc::new(RefCell::new(0));
        for i in 0..10 {
            let d = delivered.clone();
            path.forward(&mut sim, pkt(i), Box::new(move |_, _| *d.borrow_mut() += 1));
        }
        let mut out = pkt(0);
        out.direction = Direction::Outbound;
        out.src = server_endpoint();
        out.dst = client_endpoint(0);
        for _ in 0..10 {
            let d = delivered.clone();
            path.forward(&mut sim, out, Box::new(move |_, _| *d.borrow_mut() += 1));
        }
        sim.run();
        assert_eq!(*delivered.borrow(), 10, "only outbound survives");
        let s = path.stats();
        assert_eq!(s.dropped.get(), 10);
        assert_eq!(s.passed.get(), 10);
        assert_eq!(s.offered.get(), 20);
        assert!(s.conservation_holds());
    }
}
