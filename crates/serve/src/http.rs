//! Minimal HTTP/1.1 server: `std::net::TcpListener`, one thread per
//! connection, `Connection: close` semantics.
//!
//! The endpoint surface is deliberately tiny — five read-only GETs over
//! snapshot state plus one SSE stream — so a hand-rolled request reader
//! is the whole server; there is no routing table, no keep-alive, no
//! body parsing. Anything the parser does not recognise gets a plain
//! 400/404/405, never a panic: a malformed request must not take down
//! the simulation it is observing.

use crate::sse;
use crate::state::ServeShared;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle SSE subscriber waits before re-checking shutdown.
const SSE_POLL: Duration = Duration::from_millis(250);
/// Idle SSE polls between keep-alive comments (~2 s at [`SSE_POLL`]).
const SSE_KEEPALIVE_POLLS: u32 = 8;
/// Queue capacity handed to each SSE subscriber.
const SSE_QUEUE_CAPACITY: usize = 8192;
/// Upper bound on a request head (request line + headers); longer
/// requests are rejected with 431 before any routing.
const MAX_REQUEST_BYTES: usize = 8192;
/// Total wall budget for delivering a complete request head. A client
/// that trickles bytes slower than this (slow loris) is rejected with
/// 408; the per-read socket timeout alone would let it hold a handler
/// thread indefinitely by sending one byte per timeout window.
const HEAD_DEADLINE: Duration = Duration::from_secs(5);
/// Per-`read` socket timeout while collecting the head; short so the
/// deadline above is checked frequently even against a silent peer.
const HEAD_READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Why a request head was refused before routing. Each cause maps to a
/// distinct status code and a distinct `serve.http.*` tally, so abuse is
/// observable by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestError {
    /// The head exceeded [`MAX_REQUEST_BYTES`].
    TooLarge,
    /// The head was not complete within [`HEAD_DEADLINE`].
    Timeout,
    /// The bytes received do not form an HTTP request head.
    Malformed(&'static str),
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<ServeShared>,
    accept: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, ends SSE streams, and joins the accept thread.
    /// In-flight snapshot responses finish on their own threads.
    pub fn shutdown(&mut self) {
        self.shared.request_shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and serves `shared` until [`ServeHandle::shutdown`].
pub fn serve(addr: impl ToSocketAddrs, shared: Arc<ServeShared>) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let accept_shared = shared.clone();
    let accept = std::thread::Builder::new()
        .name("csprov-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServeHandle {
        addr: bound,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<ServeShared>) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if shared.is_shutdown() {
                    return;
                }
                continue;
            }
        };
        if shared.is_shutdown() {
            return;
        }
        let conn_shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("csprov-serve-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, conn_shared);
            });
        // Thread exhaustion: drop the connection rather than the server.
        drop(spawned);
    }
}

/// Collects a complete request head (through the blank line) under both
/// a byte bound and a wall deadline. The buffer can never exceed
/// [`MAX_REQUEST_BYTES`] + one read chunk, so a hostile peer cannot make
/// this allocate, and a peer that stalls or trickles cannot hold the
/// thread past [`HEAD_DEADLINE`].
fn read_request_head(stream: &mut TcpStream) -> Result<String, RequestError> {
    let deadline = Instant::now() + HEAD_DEADLINE;
    let mut head: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(RequestError::Malformed("eof before end of head")),
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.len() > MAX_REQUEST_BYTES {
                    return Err(RequestError::TooLarge);
                }
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return Err(RequestError::Malformed("read error")),
        }
        if Instant::now() >= deadline {
            return Err(RequestError::Timeout);
        }
    }
    String::from_utf8(head).map_err(|_| RequestError::Malformed("head is not UTF-8"))
}

/// Answers a refused head with its status code and counts it.
fn reject(stream: TcpStream, shared: &ServeShared, err: RequestError) -> io::Result<()> {
    let (status, body) = match err {
        RequestError::TooLarge => {
            shared.http().record_too_large();
            (
                "431 Request Header Fields Too Large",
                "request head too large\n",
            )
        }
        RequestError::Timeout => {
            shared.http().record_timeout();
            (
                "408 Request Timeout",
                "request head not delivered in time\n",
            )
        }
        RequestError::Malformed(_) => {
            shared.http().record_malformed();
            ("400 Bad Request", "bad request\n")
        }
    };
    respond(stream, status, "text/plain", body)
}

fn handle_connection(mut stream: TcpStream, shared: Arc<ServeShared>) -> io::Result<()> {
    shared.http().record_accepted();
    stream.set_read_timeout(Some(HEAD_READ_TIMEOUT))?;
    let head = match read_request_head(&mut stream) {
        Ok(head) => head,
        Err(err) => return reject(stream, &shared, err),
    };
    // Only the request line matters; no header influences these
    // read-only endpoints.
    let request_line = head.lines().next().unwrap_or("");

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() {
        return reject(
            stream,
            &shared,
            RequestError::Malformed("empty request line"),
        );
    }
    shared.http().record_served();
    if method != "GET" {
        return respond(
            stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    match path {
        "/" => respond(stream, "200 OK", "text/plain", INDEX),
        "/metrics" => respond(
            stream,
            "200 OK",
            "text/plain; version=0.0.4",
            &shared.metrics(),
        ),
        "/series" => {
            let csv = shared.series();
            if query.split('&').any(|kv| kv == "format=json") {
                respond(stream, "200 OK", "application/json", &csv_to_json(&csv))
            } else {
                respond(stream, "200 OK", "text/csv", &csv)
            }
        }
        "/status" => respond(stream, "200 OK", "application/json", &shared.status_json()),
        "/report" => respond(stream, "200 OK", "text/plain", &shared.report()),
        "/healthz" => respond(stream, "200 OK", "application/json", &shared.healthz_json()),
        "/shards" => respond(stream, "200 OK", "application/json", &shared.shards_json()),
        "/profile" => {
            let table = shared.profile();
            if table.is_empty() {
                respond(
                    stream,
                    "200 OK",
                    "text/plain",
                    "profiling disabled (run with --profile-out)\n",
                )
            } else {
                respond(stream, "200 OK", "text/plain", &table)
            }
        }
        "/events" => stream_events(stream, &shared),
        _ => respond(stream, "404 Not Found", "text/plain", NOT_FOUND),
    }
}

const INDEX: &str = "csprov-serve: live telemetry for a running csprov simulation\n\
    \n\
    GET /metrics  Prometheus text exposition (scrape-ready)\n\
    GET /events   live journal events (Server-Sent Events)\n\
    GET /series   sim-time series snapshot (CSV; ?format=json)\n\
    GET /status   run progress, pacing lag, bus stats (JSON)\n\
    GET /report   provisioning report so far (text)\n\
    GET /healthz  serving-plane liveness probe (JSON)\n\
    GET /shards   fleet shard health and watchdog verdicts (JSON)\n\
    GET /profile  wall-time self/total profile table (text)\n";

/// 404 body: names every endpoint so a mistyped path is self-correcting
/// from curl alone.
const NOT_FOUND: &str = "not found\n\
    known endpoints: / /metrics /events /series /status /report \
    /healthz /shards /profile\n";

fn respond(mut stream: TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Streams bus events as SSE until the client disconnects, the bus
/// closes, or shutdown is requested. The first frame is always the
/// schema announcement, so a consumer can assert the format before any
/// data arrives.
fn stream_events(mut stream: TcpStream, shared: &Arc<ServeShared>) -> io::Result<()> {
    let sub = shared.bus().subscribe(SSE_QUEUE_CAPACITY);
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
          Cache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    let schema = format!("{{\"schema\":\"{}\"}}", csprov_obs::JOURNAL_SCHEMA);
    stream.write_all(sse::frame("schema", &schema).as_bytes())?;
    stream.flush()?;

    let mut idle_polls = 0u32;
    loop {
        match sub.recv_timeout(SSE_POLL) {
            Some(event) => {
                idle_polls = 0;
                stream.write_all(sse::frame(event.event_name(), &event.to_json()).as_bytes())?;
                // Flush per event: latency is the point of a live stream.
                stream.flush()?;
            }
            None => {
                if sub.is_closed() || shared.is_shutdown() {
                    return Ok(());
                }
                idle_polls += 1;
                if idle_polls >= SSE_KEEPALIVE_POLLS {
                    idle_polls = 0;
                    stream.write_all(sse::keepalive("keepalive").as_bytes())?;
                    stream.flush()?;
                }
            }
        }
    }
}

/// Converts the sampler's CSV snapshot into
/// `{"columns":[..],"rows":[[..],..]}`. Cells that parse as finite
/// numbers are emitted as numbers, everything else as strings.
pub fn csv_to_json(csv: &str) -> String {
    let mut lines = csv.lines();
    let columns: Vec<&str> = lines.next().unwrap_or("").split(',').collect();
    let mut out = String::from("{\"columns\":[");
    for (i, col) in columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&csprov_obs::json::escape(col));
    }
    out.push_str("],\"rows\":[");
    let mut first_row = true;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if !first_row {
            out.push(',');
        }
        first_row = false;
        out.push('[');
        for (i, cell) in line.split(',').enumerate() {
            if i > 0 {
                out.push(',');
            }
            match cell.parse::<f64>() {
                Ok(n) if n.is_finite() => out.push_str(cell),
                _ => out.push_str(&csprov_obs::json::escape(cell)),
            }
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_obs::{BroadcastBus, BusEvent, Json};
    use std::io::{BufRead, BufReader};

    fn start() -> (ServeHandle, Arc<ServeShared>) {
        let shared = Arc::new(ServeShared::new(BroadcastBus::new()));
        let handle = serve("127.0.0.1:0", shared.clone()).expect("bind loopback");
        (handle, shared)
    }

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("split head/body");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn snapshot_endpoints_serve_shared_state() {
        let (mut handle, shared) = start();
        shared.set_metrics("# TYPE sim_events counter\nsim_events 9\n".to_string());
        shared.set_series("sim_ns,a\n0,1\n1000,2\n".to_string());
        shared.set_report("== sizing ==\n".to_string());
        let addr = handle.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        assert_eq!(body, "# TYPE sim_events counter\nsim_events 9\n");

        let (_, body) = get(addr, "/series");
        assert_eq!(body, "sim_ns,a\n0,1\n1000,2\n");

        let (head, body) = get(addr, "/series?format=json");
        assert!(head.contains("application/json"));
        let doc = Json::parse(&body).expect("series JSON parses");
        let cols = doc.get("columns").and_then(Json::as_arr).expect("columns");
        assert_eq!(cols[0].as_str(), Some("sim_ns"));
        let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].as_arr().and_then(|r| r[1].as_f64()), Some(2.0));

        let (_, body) = get(addr, "/status");
        let doc = Json::parse(&body).expect("status JSON parses");
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("starting"));

        let (_, body) = get(addr, "/report");
        assert_eq!(body, "== sizing ==\n");

        let (head, body) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
        assert!(
            body.contains("/healthz") && body.contains("/shards") && body.contains("/profile"),
            "404 body lists endpoints, got {body}"
        );
        let (head, _) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"));

        handle.shutdown();
    }

    #[test]
    fn health_and_profile_endpoints_answer() {
        let (mut handle, shared) = start();
        let addr = handle.addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "got {head}");
        assert!(head.contains("application/json"));
        let doc = Json::parse(&body).expect("healthz JSON parses");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));

        let (_, body) = get(addr, "/shards");
        let doc = Json::parse(&body).expect("shards JSON parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("csprov-shards/1")
        );

        let (_, body) = get(addr, "/profile");
        assert!(body.contains("profiling disabled"), "got {body}");
        shared.set_profile("== profile ==\nframe x\n".to_string());
        let (_, body) = get(addr, "/profile");
        assert_eq!(body, "== profile ==\nframe x\n");

        handle.shutdown();
    }

    #[test]
    fn post_is_rejected_not_served() {
        let (mut handle, _shared) = start();
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"));
        handle.shutdown();
    }

    #[test]
    fn sse_stream_announces_schema_then_replays_bus_events() {
        let (mut handle, shared) = start();
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        write!(stream, "GET /events HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        // Wait for the headers + schema frame so the subscription exists
        // before publishing.
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut seen = String::new();
        while !seen.contains("\n\n") || !seen.contains("schema") {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read") > 0, "early EOF");
            seen.push_str(&line);
        }

        shared.bus().publish(BusEvent::RunStarted {
            label: "main".into(),
            horizon_ns: 500,
        });
        shared
            .bus()
            .publish(BusEvent::Trace(csprov_obs::TraceEvent {
                sim_ns: 42,
                kind: "game.tick.begin",
                key: 1,
                value: 2,
            }));
        // Ending the run closes the bus, which ends the stream.
        std::thread::sleep(Duration::from_millis(100));
        shared.request_shutdown();
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("drain stream");
        seen.push_str(&rest);

        let body = seen.split_once("\r\n\r\n").expect("header split").1;
        let frames = sse::parse_frames(body);
        assert!(frames.len() >= 3, "got {frames:?}");
        assert_eq!(frames[0].event, "schema");
        let schema = Json::parse(&frames[0].data).expect("schema frame is JSON");
        assert_eq!(
            schema.get("schema").and_then(Json::as_str),
            Some(csprov_obs::JOURNAL_SCHEMA)
        );
        assert_eq!(frames[1].event, "run-started");
        assert_eq!(frames[2].event, "trace");
        let trace = Json::parse(&frames[2].data).expect("trace frame is JSON");
        assert_eq!(trace.get("sim_ns").and_then(Json::as_f64), Some(42.0));
        assert_eq!(
            trace.get("kind").and_then(Json::as_str),
            Some("game.tick.begin")
        );
        handle.shutdown();
    }

    #[test]
    fn oversized_head_is_rejected_431_and_counted() {
        let (mut handle, shared) = start();
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        // A request line that never ends and exceeds the byte bound. The
        // server may close (and reset) the connection while we are still
        // flooding, so write and read errors here are expected outcomes,
        // not failures; the rejection counter is the authoritative check.
        let junk = vec![b'a'; MAX_REQUEST_BYTES + 1024];
        let _ = stream.write_all(b"GET /");
        let _ = stream.write_all(&junk);
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        if !response.is_empty() {
            assert!(response.starts_with("HTTP/1.1 431"), "got {response}");
        }
        let t0 = Instant::now();
        while shared.http().snapshot().rejected_too_large == 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "rejection not counted"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let http = shared.http().snapshot();
        assert_eq!(http.rejected_too_large, 1);
        assert_eq!(http.served, 0);
        assert!(shared.status_json().contains("\"too_large\":1"));
        handle.shutdown();
    }

    #[test]
    fn garbage_head_is_rejected_400_and_counted() {
        let (mut handle, shared) = start();
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        // A complete head whose request line is blank.
        stream.write_all(b"\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"), "got {response}");
        assert_eq!(shared.http().snapshot().rejected_malformed, 1);
        handle.shutdown();
    }

    #[test]
    fn half_open_connection_cannot_outlive_the_deadline() {
        // A client that sends a partial head and then goes silent (the
        // simplest slow loris) must be rejected once the head deadline
        // passes, freeing the handler thread. The deadline is 5 s; allow
        // slack for a loaded CI box but fail well before "forever".
        let (mut handle, shared) = start();
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\n")
            .expect("send");
        // No terminating blank line, no more bytes.
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let t0 = Instant::now();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 408"), "got {response}");
        assert!(t0.elapsed() < Duration::from_secs(20));
        assert_eq!(shared.http().snapshot().rejected_timeout, 1);
        handle.shutdown();
    }

    #[test]
    fn served_requests_are_counted() {
        let (mut handle, shared) = start();
        let _ = get(handle.addr(), "/status");
        let _ = get(handle.addr(), "/nope");
        let http = shared.http().snapshot();
        assert_eq!(http.accepted, 2);
        assert_eq!(http.served, 2);
        assert_eq!(http.rejected(), 0);
        handle.shutdown();
    }

    #[test]
    fn csv_to_json_handles_empty_and_nonnumeric_cells() {
        assert_eq!(csv_to_json(""), "{\"columns\":[\"\"],\"rows\":[]}");
        let doc = Json::parse(&csv_to_json("t,name\n1,abc\n2,7\n")).expect("parses");
        let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows[0].as_arr().and_then(|r| r[1].as_str()), Some("abc"));
        assert_eq!(rows[1].as_arr().and_then(|r| r[1].as_f64()), Some(7.0));
    }
}
