//! Shared state between the simulation thread and HTTP handler threads.
//!
//! The workspace's [`MetricsRegistry`] and [`SeriesSampler`] are
//! deliberately `Rc`-based single-threaded types — they live on the
//! simulation thread and never cross it. The serving plane therefore
//! shares *rendered snapshots*, not instruments: the simulation thread
//! periodically renders Prometheus text / series CSV / the report into
//! `Mutex<String>` slots here, and handler threads only ever read those
//! strings. The one genuinely concurrent structure is the
//! [`BroadcastBus`], which is built for it.
//!
//! This split is what keeps the determinism boundary trivial to audit:
//! nothing an HTTP client does can reach an instrument, only a snapshot
//! of one.

use csprov_obs::{BroadcastBus, MetricsRegistry, ShardHealthBoard};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Lock-free tallies of HTTP connection outcomes, written by handler
/// threads and read by `/status` and the metrics exporter. Rejections
/// are split by cause so a slow-loris attempt (`timeout`), an oversized
/// head (`too_large`) and plain garbage (`malformed`) are separately
/// visible.
#[derive(Default)]
pub struct HttpCounters {
    accepted: AtomicU64,
    served: AtomicU64,
    rejected_too_large: AtomicU64,
    rejected_timeout: AtomicU64,
    rejected_malformed: AtomicU64,
}

/// A point-in-time copy of [`HttpCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HttpStats {
    /// Connections accepted by the listener.
    pub accepted: u64,
    /// Requests that were routed to an endpoint (any status code).
    pub served: u64,
    /// Heads rejected for exceeding the byte bound (431).
    pub rejected_too_large: u64,
    /// Heads rejected for missing the delivery deadline (408).
    pub rejected_timeout: u64,
    /// Heads rejected as unparsable (400 before routing).
    pub rejected_malformed: u64,
}

impl HttpStats {
    /// Total rejected connections across all causes.
    pub fn rejected(&self) -> u64 {
        self.rejected_too_large + self.rejected_timeout + self.rejected_malformed
    }
}

impl HttpCounters {
    /// Counts an accepted connection.
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request that reached routing.
    pub fn record_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a head rejected for size.
    pub fn record_too_large(&self) {
        self.rejected_too_large.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a head rejected for blowing the delivery deadline.
    pub fn record_timeout(&self) {
        self.rejected_timeout.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a head rejected as unparsable.
    pub fn record_malformed(&self) {
        self.rejected_malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot (each counter read atomically).
    pub fn snapshot(&self) -> HttpStats {
        HttpStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected_too_large: self.rejected_too_large.load(Ordering::Relaxed),
            rejected_timeout: self.rejected_timeout.load(Ordering::Relaxed),
            rejected_malformed: self.rejected_malformed.load(Ordering::Relaxed),
        }
    }
}

/// Progress of the run being served, updated by the simulation thread.
#[derive(Clone, Debug)]
pub struct RunStatus {
    /// `"starting"`, `"running"` or `"finished"`.
    pub state: &'static str,
    /// Who executes the fleet this plane observes: `"run"` when this
    /// process simulates, `"coordinate"` when it only watches worker
    /// processes through their state-dir sidecars and checkpoints.
    pub mode: &'static str,
    /// Labels of the artifacts/runs requested, comma-joined.
    pub label: String,
    /// The run seed.
    pub seed: u64,
    /// Replay speed as configured (`"max"`, `"8x"`).
    pub speed: String,
    /// Virtual horizon of the current run, ns (0 until known).
    pub horizon_ns: u64,
    /// Current virtual clock, ns.
    pub sim_ns: u64,
    /// Events executed so far.
    pub events: u64,
    /// Sim-vs-wall lag behind the pacing schedule, ns (0 unpaced/on time).
    pub lag_ns: u64,
    /// Fleet shards total (0 for non-fleet runs).
    pub shards_total: u64,
    /// Fleet shards completed.
    pub shards_done: u64,
    /// Journal events dropped at capacity (storage, not bus).
    pub journal_dropped: u64,
}

impl Default for RunStatus {
    fn default() -> Self {
        RunStatus {
            state: "starting",
            mode: "run",
            label: String::new(),
            seed: 0,
            speed: "max".to_string(),
            horizon_ns: 0,
            sim_ns: 0,
            events: 0,
            lag_ns: 0,
            shards_total: 0,
            shards_done: 0,
            journal_dropped: 0,
        }
    }
}

/// State shared between the simulation thread (writer) and HTTP handlers
/// (readers). See the module docs for the snapshot discipline.
pub struct ServeShared {
    bus: BroadcastBus,
    started: Instant,
    shutdown: AtomicBool,
    metrics: Mutex<String>,
    series: Mutex<String>,
    report: Mutex<String>,
    profile: Mutex<String>,
    board: Mutex<Option<Arc<ShardHealthBoard>>>,
    status: Mutex<RunStatus>,
    http: HttpCounters,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Snapshot strings cannot be left half-written by a panicking writer
    // (String swaps are assignment-atomic under the lock); keep serving.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ServeShared {
    /// Fresh state around `bus` (the journal tap / live event source).
    pub fn new(bus: BroadcastBus) -> Self {
        ServeShared {
            bus,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            metrics: Mutex::new(String::new()),
            series: Mutex::new(String::new()),
            report: Mutex::new(String::new()),
            profile: Mutex::new(String::new()),
            board: Mutex::new(None),
            status: Mutex::new(RunStatus::default()),
            http: HttpCounters::default(),
        }
    }

    /// The HTTP connection-outcome counters (handler threads write,
    /// `/status` and the exporter read).
    pub fn http(&self) -> &HttpCounters {
        &self.http
    }

    /// The live event bus.
    pub fn bus(&self) -> &BroadcastBus {
        &self.bus
    }

    /// Requests shutdown: handlers finish their current response, SSE
    /// streams end, the accept loop stops.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.bus.close();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Replaces the `/metrics` snapshot (Prometheus exposition text).
    pub fn set_metrics(&self, text: String) {
        *lock(&self.metrics) = text;
    }

    /// Current `/metrics` snapshot.
    pub fn metrics(&self) -> String {
        lock(&self.metrics).clone()
    }

    /// Replaces the `/series` snapshot (sampler CSV).
    pub fn set_series(&self, text: String) {
        *lock(&self.series) = text;
    }

    /// Current `/series` snapshot.
    pub fn series(&self) -> String {
        lock(&self.series).clone()
    }

    /// Replaces the `/report` snapshot.
    pub fn set_report(&self, text: String) {
        *lock(&self.report) = text;
    }

    /// Appends a section to the `/report` snapshot.
    pub fn append_report(&self, text: &str) {
        lock(&self.report).push_str(text);
    }

    /// Current `/report` snapshot.
    pub fn report(&self) -> String {
        lock(&self.report).clone()
    }

    /// Replaces the `/profile` snapshot (wall-time self/total table).
    pub fn set_profile(&self, text: String) {
        *lock(&self.profile) = text;
    }

    /// Current `/profile` snapshot (empty until a profiled run renders).
    pub fn profile(&self) -> String {
        lock(&self.profile).clone()
    }

    /// Attaches the fleet health board backing `/shards`. The board is
    /// all-atomics, so handler threads can render it directly — it is
    /// the one instrument allowed across the thread boundary.
    pub fn set_board(&self, board: Arc<ShardHealthBoard>) {
        *lock(&self.board) = Some(board);
    }

    /// The attached fleet health board, if any.
    pub fn board(&self) -> Option<Arc<ShardHealthBoard>> {
        lock(&self.board).clone()
    }

    /// Renders `/shards`: the health board document, or a shape-stable
    /// empty document when no fleet is attached (single-run serves).
    pub fn shards_json(&self) -> String {
        match self.board() {
            Some(board) => board.render_json(),
            None => concat!(
                "{\"schema\":\"csprov-shards/1\",\"watchdog_ms\":0,",
                "\"summary\":{\"total\":0,\"pending\":0,\"running\":0,",
                "\"done\":0,\"lost\":0,\"stalled\":0,\"degraded\":0},",
                "\"shards\":[]}"
            )
            .to_string(),
        }
    }

    /// Renders `/healthz`: a liveness probe for the serving plane
    /// itself. `ok` is true as long as the server is answering and
    /// shutdown has not been requested — a load balancer needs nothing
    /// deeper, and anything deeper belongs on `/status` or `/shards`.
    pub fn healthz_json(&self) -> String {
        let s = self.status();
        let bus = self.bus.stats();
        format!(
            concat!(
                "{{\"schema\":\"csprov-healthz/1\",\"ok\":{ok},",
                "\"state\":{state},\"uptime_ns\":{uptime},",
                "\"bus\":{{\"subscribers\":{subs},\"max_depth\":{depth}}}}}"
            ),
            ok = !self.is_shutdown(),
            state = csprov_obs::json::escape(s.state),
            uptime = self.started.elapsed().as_nanos(),
            subs = bus.subscribers,
            depth = bus.max_depth,
        )
    }

    /// Applies `f` to the run status under the lock.
    pub fn update_status(&self, f: impl FnOnce(&mut RunStatus)) {
        f(&mut lock(&self.status));
    }

    /// A copy of the current run status.
    pub fn status(&self) -> RunStatus {
        lock(&self.status).clone()
    }

    /// Renders `/status`: the run status merged with live bus stats and
    /// wall-clock elapsed time.
    pub fn status_json(&self) -> String {
        let s = self.status();
        let bus = self.bus.stats();
        let http = self.http.snapshot();
        let progress = if s.horizon_ns > 0 {
            (s.sim_ns as f64 / s.horizon_ns as f64).min(1.0)
        } else {
            0.0
        };
        format!(
            concat!(
                "{{\"schema\":\"csprov-status/1\",\"state\":{state},",
                "\"mode\":{mode},",
                "\"label\":{label},\"seed\":{seed},\"speed\":{speed},",
                "\"horizon_ns\":{horizon},\"sim_ns\":{sim},",
                "\"progress\":{progress:.6},\"events\":{events},",
                "\"lag_ns\":{lag},\"wall_elapsed_ns\":{wall},",
                "\"shards\":{{\"done\":{sdone},\"total\":{stotal}}},",
                "\"journal_dropped\":{jdrop},",
                "\"http\":{{\"accepted\":{haccepted},\"served\":{hserved},",
                "\"rejected\":{{\"too_large\":{hlarge},\"timeout\":{htimeout},",
                "\"malformed\":{hmalformed}}}}},",
                "\"bus\":{{\"subscribers\":{subs},\"published\":{pubd},",
                "\"dropped\":{dropped},\"max_depth\":{depth}}}}}"
            ),
            state = csprov_obs::json::escape(s.state),
            mode = csprov_obs::json::escape(s.mode),
            label = csprov_obs::json::escape(&s.label),
            seed = s.seed,
            speed = csprov_obs::json::escape(&s.speed),
            horizon = s.horizon_ns,
            sim = s.sim_ns,
            progress = progress,
            events = s.events,
            lag = s.lag_ns,
            wall = self.started.elapsed().as_nanos(),
            sdone = s.shards_done,
            stotal = s.shards_total,
            jdrop = s.journal_dropped,
            haccepted = http.accepted,
            hserved = http.served,
            hlarge = http.rejected_too_large,
            htimeout = http.rejected_timeout,
            hmalformed = http.rejected_malformed,
            subs = bus.subscribers,
            pubd = bus.published,
            dropped = bus.dropped,
            depth = bus.max_depth,
        )
    }

    /// Exports the serving plane's self-observability into `registry` as
    /// wall-flagged `serve.*` instruments (wall because their values
    /// depend on subscriber behavior, which must never reach a
    /// determinism artifact). Call from the simulation thread — the
    /// registry is single-threaded by design.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        let bus = self.bus.stats();
        let status = self.status();
        let subs = registry.wall_gauge("serve.subscribers");
        subs.set(bus.subscribers as i64);
        registry.describe("serve.subscribers", "live bus subscribers");
        let depth = registry.wall_gauge("serve.bus.depth");
        depth.set(bus.max_depth as i64);
        registry.describe("serve.bus.depth", "deepest subscriber queue");
        set_monotonic(&registry.wall_counter("serve.bus.published"), bus.published);
        registry.describe("serve.bus.published", "events published to the bus");
        set_monotonic(&registry.wall_counter("serve.bus.dropped"), bus.dropped);
        registry.describe(
            "serve.bus.dropped",
            "events dropped across all subscribers (slow-consumer policy)",
        );
        set_monotonic(
            &registry.wall_counter("serve.journal.dropped"),
            status.journal_dropped,
        );
        registry.describe(
            "serve.journal.dropped",
            "journal events dropped at storage capacity",
        );
        let lag = registry.wall_gauge("serve.lag_ns");
        lag.set(status.lag_ns.min(i64::MAX as u64) as i64);
        registry.describe("serve.lag_ns", "sim-vs-wall lag behind the pacing schedule");
        let http = self.http.snapshot();
        set_monotonic(&registry.wall_counter("serve.http.accepted"), http.accepted);
        registry.describe("serve.http.accepted", "HTTP connections accepted");
        set_monotonic(&registry.wall_counter("serve.http.served"), http.served);
        registry.describe("serve.http.served", "HTTP requests routed to an endpoint");
        set_monotonic(
            &registry.wall_counter("serve.http.rejected"),
            http.rejected(),
        );
        registry.describe(
            "serve.http.rejected",
            "HTTP heads rejected (oversized, slow, or malformed)",
        );
    }
}

/// Raises a counter to an absolute snapshot value (counters only expose
/// `add`; snapshots are monotonic, so the delta is never negative).
fn set_monotonic(counter: &csprov_obs::Counter, target: u64) {
    let current = counter.get();
    if target > current {
        counter.add(target - current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_obs::Json;

    #[test]
    fn status_json_merges_run_and_bus_state() {
        let bus = BroadcastBus::new();
        let _sub = bus.subscribe(8);
        bus.publish(csprov_obs::BusEvent::RunStarted {
            label: "main".into(),
            horizon_ns: 100,
        });
        let shared = ServeShared::new(bus);
        shared.update_status(|s| {
            s.state = "running";
            s.label = "table1".to_string();
            s.seed = 42;
            s.horizon_ns = 1_000;
            s.sim_ns = 250;
            s.events = 7;
        });
        let doc = Json::parse(&shared.status_json()).expect("status is valid JSON");
        assert_eq!(doc.get("state").and_then(Json::as_str), Some("running"));
        assert_eq!(doc.get("mode").and_then(Json::as_str), Some("run"));
        assert_eq!(doc.get("seed").and_then(Json::as_f64), Some(42.0));
        shared.update_status(|s| s.mode = "coordinate");
        let doc = Json::parse(&shared.status_json()).expect("status is valid JSON");
        assert_eq!(doc.get("mode").and_then(Json::as_str), Some("coordinate"));
        assert_eq!(doc.get("progress").and_then(Json::as_f64), Some(0.25));
        let bus = doc.get("bus").expect("bus section");
        assert_eq!(bus.get("subscribers").and_then(Json::as_f64), Some(1.0));
        assert_eq!(bus.get("published").and_then(Json::as_f64), Some(1.0));
        assert!(doc.get("wall_elapsed_ns").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn snapshots_swap_atomically() {
        let shared = ServeShared::new(BroadcastBus::new());
        assert_eq!(shared.metrics(), "");
        shared.set_metrics("a 1\n".to_string());
        shared.set_series("t,v\n0,1\n".to_string());
        shared.set_report("== report ==\n".to_string());
        shared.append_report("line\n");
        assert_eq!(shared.metrics(), "a 1\n");
        assert_eq!(shared.series(), "t,v\n0,1\n");
        assert_eq!(shared.report(), "== report ==\nline\n");
    }

    #[test]
    fn export_metrics_registers_wall_only_serve_instruments() {
        let bus = BroadcastBus::new();
        let slow = bus.subscribe(1);
        bus.publish(csprov_obs::BusEvent::RunStarted {
            label: "x".into(),
            horizon_ns: 1,
        });
        bus.publish(csprov_obs::BusEvent::RunFinished {
            label: "x".into(),
            sim_ns: 1,
            events: 1,
        }); // dropped: queue of 1 is full
        let shared = ServeShared::new(bus);
        shared.update_status(|s| s.journal_dropped = 5);
        let registry = MetricsRegistry::new();
        registry.counter("sim.events").add(3);
        shared.export_metrics(&registry);
        shared.export_metrics(&registry); // idempotent re-export
        let prom = registry.render_prometheus();
        assert!(prom.contains("serve_subscribers 1\n"), "got {prom}");
        assert!(prom.contains("serve_bus_published 2\n"));
        assert!(prom.contains("serve_bus_dropped 1\n"));
        assert!(prom.contains("serve_journal_dropped 5\n"));
        assert!(prom.contains("# HELP serve_bus_dropped "));
        // The determinism surfaces never see serve.*.
        assert!(!registry.render_deterministic().contains("serve."));
        assert!(registry
            .sample_deterministic()
            .iter()
            .all(|(n, _, _)| !n.starts_with("serve.")));
        drop(slow);
    }

    #[test]
    fn healthz_reports_liveness_and_flips_on_shutdown() {
        let shared = ServeShared::new(BroadcastBus::new());
        let doc = Json::parse(&shared.healthz_json()).expect("healthz is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("csprov-healthz/1")
        );
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert!(doc.get("uptime_ns").and_then(Json::as_f64).is_some());
        shared.request_shutdown();
        let doc = Json::parse(&shared.healthz_json()).expect("healthz parses");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn shards_json_is_shape_stable_without_a_board() {
        let shared = ServeShared::new(BroadcastBus::new());
        let doc = Json::parse(&shared.shards_json()).expect("empty shards doc parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("csprov-shards/1")
        );
        let summary = doc.get("summary").expect("summary section");
        assert_eq!(summary.get("total").and_then(Json::as_f64), Some(0.0));

        let board = Arc::new(ShardHealthBoard::new(2, std::time::Duration::from_secs(5)));
        board.start(0, 1_000);
        shared.set_board(board);
        let doc = Json::parse(&shared.shards_json()).expect("board doc parses");
        let summary = doc.get("summary").expect("summary section");
        assert_eq!(summary.get("total").and_then(Json::as_f64), Some(2.0));
        assert_eq!(summary.get("running").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn profile_snapshot_swaps_like_the_other_slots() {
        let shared = ServeShared::new(BroadcastBus::new());
        assert_eq!(shared.profile(), "");
        shared.set_profile("frame self total\n".to_string());
        assert_eq!(shared.profile(), "frame self total\n");
    }

    #[test]
    fn shutdown_closes_the_bus() {
        let bus = BroadcastBus::new();
        let sub = bus.subscribe(4);
        let shared = ServeShared::new(bus);
        assert!(!shared.is_shutdown());
        shared.request_shutdown();
        assert!(shared.is_shutdown());
        assert!(sub.is_closed());
    }
}
