//! # csprov-serve — live telemetry serving plane
//!
//! A zero-dependency HTTP server that streams a *running* csprov
//! simulation to subscribers: `std::net::TcpListener` plus a thread per
//! connection, no async runtime, no external crates. Where PR 4's batch
//! telemetry answers the paper's provisioning questions after a run
//! finishes, this crate answers them while the run executes — the way an
//! operator watches a busy Counter-Strike server.
//!
//! ## Endpoints
//!
//! | Endpoint   | Content                                               |
//! |------------|-------------------------------------------------------|
//! | `/metrics` | Prometheus text exposition (scrape-ready)             |
//! | `/events`  | live `csprov-trace/1` journal events over SSE         |
//! | `/series`  | current sim-time series snapshot (CSV, `?format=json`)|
//! | `/status`  | run progress, pacing lag, bus stats (JSON)            |
//! | `/report`  | the provisioning report accumulated so far (text)     |
//!
//! ## Architecture: snapshots over sharing
//!
//! The simulation is single-threaded by design and its instruments
//! (`MetricsRegistry`, `SeriesSampler`) are `Rc`-based. The serving plane
//! never shares them across threads; instead the simulation thread
//! periodically *renders* them and swaps the strings into
//! [`ServeShared`]. HTTP handlers read only those snapshots plus the
//! thread-safe [`BroadcastBus`](csprov_obs::BroadcastBus), which carries
//! journal events live with per-subscriber bounded queues
//! (slow consumers drop-and-count; the publisher never blocks).
//!
//! Combined with the pacing clock in [`csprov_sim::Pacer`] — which only
//! ever *sleeps* the sim thread, never reorders it — a served run is
//! observably identical to a batch run: every same-seed artifact is
//! byte-identical whether `--serve` is off, on, or watched by fifty
//! subscribers. The workspace integration tests enforce exactly that.

pub mod http;
pub mod sse;
pub mod state;

pub use http::{csv_to_json, serve, ServeHandle};
pub use sse::{frame, keepalive, parse_frames, SseFrame};
pub use state::{RunStatus, ServeShared};
