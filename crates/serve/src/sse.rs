//! Server-Sent Events framing (WHATWG `text/event-stream`).
//!
//! The live `/events` endpoint speaks SSE rather than WebSockets because
//! SSE is plain HTTP: `curl -N` is a complete client, no upgrade
//! handshake, no frame masking — the right trade for a zero-dependency
//! server. This module owns the wire framing in both directions so the
//! round-trip is testable without a socket: [`frame`] writes an event,
//! [`parse_frames`] reads a stream of them back.

/// Renders one SSE frame: an `event:` line, one `data:` line per line of
/// `data`, and the blank separator line.
///
/// Splitting multi-line data across `data:` lines is the spec's own
/// mechanism — the client reassembles them joined by `\n` — so payloads
/// containing newlines survive framing unchanged.
pub fn frame(event: &str, data: &str) -> String {
    let mut out = String::with_capacity(event.len() + data.len() + 16);
    out.push_str("event: ");
    out.push_str(event);
    out.push('\n');
    for line in data.split('\n') {
        out.push_str("data: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// A comment frame (`: text`), the SSE keep-alive idiom: clients ignore
/// it, proxies see bytes flowing.
pub fn keepalive(text: &str) -> String {
    format!(": {text}\n\n")
}

/// One parsed SSE event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SseFrame {
    /// The `event:` field (empty when the frame carried none).
    pub event: String,
    /// The `data:` payload, multi-line data rejoined with `\n`.
    pub data: String,
}

/// Parses a `text/event-stream` body into frames, per the WHATWG
/// dispatch rules: fields accumulate until a blank line dispatches the
/// event; comment lines (`:`) are skipped; frames with no data are not
/// dispatched.
pub fn parse_frames(stream: &str) -> Vec<SseFrame> {
    let mut frames = Vec::new();
    let mut event = String::new();
    let mut data: Vec<&str> = Vec::new();
    for line in stream.split('\n') {
        let line = line.strip_suffix('\r').unwrap_or(line);
        if line.is_empty() {
            if !data.is_empty() {
                frames.push(SseFrame {
                    event: std::mem::take(&mut event),
                    data: data.join("\n"),
                });
            }
            event.clear();
            data.clear();
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            let _ = rest; // comment / keep-alive: ignored
            continue;
        }
        let (field, value) = match line.split_once(':') {
            Some((f, v)) => (f, v.strip_prefix(' ').unwrap_or(v)),
            None => (line, ""),
        };
        match field {
            "event" => event = value.to_string(),
            "data" => data.push(value),
            _ => {} // id/retry/unknown fields: not needed here
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_parse_round_trip() {
        let payloads = [
            (
                "trace",
                "{\"sim_ns\":1,\"kind\":\"a.x\",\"key\":0,\"value\":0}",
            ),
            ("run-started", "{\"label\":\"main\",\"horizon_ns\":100}"),
            ("schema", "multi\nline\npayload"),
        ];
        let mut wire = String::new();
        for (event, data) in &payloads {
            wire.push_str(&frame(event, data));
            wire.push_str(&keepalive("tick")); // interleaved comments vanish
        }
        let frames = parse_frames(&wire);
        assert_eq!(frames.len(), payloads.len());
        for (frame, (event, data)) in frames.iter().zip(&payloads) {
            assert_eq!(frame.event, *event);
            assert_eq!(frame.data, *data);
        }
    }

    #[test]
    fn frame_shape_is_exactly_spec() {
        assert_eq!(frame("trace", "{}"), "event: trace\ndata: {}\n\n");
        assert_eq!(frame("x", "a\nb"), "event: x\ndata: a\ndata: b\n\n");
        assert_eq!(keepalive("hb"), ": hb\n\n");
    }

    #[test]
    fn parser_handles_crlf_and_unspaced_fields() {
        let frames = parse_frames("event:ping\r\ndata:1\r\n\r\n");
        assert_eq!(
            frames,
            vec![SseFrame {
                event: "ping".to_string(),
                data: "1".to_string()
            }]
        );
    }

    #[test]
    fn dataless_frames_are_not_dispatched() {
        assert!(parse_frames("event: empty\n\n").is_empty());
        assert!(parse_frames(": just a comment\n\n").is_empty());
    }
}
