//! A simplified ACK-clocked TCP sender (slow start + AIMD), sufficient to
//! generate realistic *bulk-transfer* packet dynamics: large data segments,
//! delayed acknowledgements, window growth, multiplicative back-off on
//! loss. This is the traffic class the paper contrasts game traffic with —
//! "the majority of traffic being carried in today's networks involve bulk
//! data transfers using TCP" (§IV-A).

use csprov_sim::SimDuration;

/// Static sender parameters.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Application bytes per data segment.
    pub mss: u32,
    /// Application bytes per acknowledgement (options/timestamps).
    pub ack_size: u32,
    /// Initial congestion window, segments.
    pub init_cwnd: f64,
    /// Slow-start threshold, segments.
    pub init_ssthresh: f64,
    /// Congestion-window cap (receiver window), segments.
    pub max_cwnd: f64,
    /// Receiver acknowledges every `ack_every` segments (delayed ACKs).
    pub ack_every: u32,
    /// Retransmission timeout as a multiple of the flow's RTT.
    pub rto_factor: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            ack_size: 12,
            init_cwnd: 2.0,
            init_ssthresh: 32.0,
            max_cwnd: 64.0,
            ack_every: 2,
            rto_factor: 2.5,
        }
    }
}

/// Sender-side state of one bulk transfer.
///
/// ```
/// use csprov_web::{TcpConfig, TcpFlow};
///
/// let mut f = TcpFlow::new(TcpConfig::default(), 10 * 1448);
/// while !f.is_complete() {
///     let mut burst = 0;
///     while f.can_send() {
///         f.on_send();
///         burst += 1;
///     }
///     f.on_ack(burst); // lossless path: every segment acknowledged
/// }
/// assert_eq!(f.acked_segments(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct TcpFlow {
    cfg: TcpConfig,
    /// Segments not yet sent (retransmissions return here).
    to_send: u32,
    /// Segments sent and unacknowledged.
    in_flight: u32,
    /// Segments acknowledged.
    acked: u32,
    /// Total segments in the transfer.
    total: u32,
    cwnd: f64,
    ssthresh: f64,
    /// Timeouts experienced (loss events).
    pub loss_events: u32,
}

impl TcpFlow {
    /// Creates a flow transferring `bytes` of application data.
    pub fn new(cfg: TcpConfig, bytes: u64) -> Self {
        let total = (bytes.div_ceil(u64::from(cfg.mss))).max(1) as u32;
        TcpFlow {
            cwnd: cfg.init_cwnd,
            ssthresh: cfg.init_ssthresh,
            cfg,
            to_send: total,
            in_flight: 0,
            acked: 0,
            total,
            loss_events: 0,
        }
    }

    /// Total segments in the transfer.
    pub fn total_segments(&self) -> u32 {
        self.total
    }

    /// Segments acknowledged so far.
    pub fn acked_segments(&self) -> u32 {
        self.acked
    }

    /// Current congestion window (segments).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// True once every segment is acknowledged.
    pub fn is_complete(&self) -> bool {
        self.acked >= self.total
    }

    /// True if the window allows sending another segment now.
    pub fn can_send(&self) -> bool {
        self.to_send > 0 && (self.in_flight as f64) < self.cwnd
    }

    /// Marks one segment sent; returns its payload size.
    pub fn on_send(&mut self) -> u32 {
        debug_assert!(self.can_send());
        self.to_send -= 1;
        self.in_flight += 1;
        self.cfg.mss
    }

    /// Handles an acknowledgement covering `segments` segments.
    pub fn on_ack(&mut self, segments: u32) {
        let segments = segments.min(self.in_flight);
        self.in_flight -= segments;
        self.acked += segments;
        for _ in 0..segments {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0; // slow start: exponential per RTT
            } else {
                self.cwnd += 1.0 / self.cwnd; // congestion avoidance
            }
        }
        self.cwnd = self.cwnd.min(self.cfg.max_cwnd);
    }

    /// Handles a retransmission timeout for `segments` lost segments:
    /// multiplicative decrease and re-queue.
    pub fn on_timeout(&mut self, segments: u32) {
        let segments = segments.min(self.in_flight);
        if segments == 0 {
            return;
        }
        self.in_flight -= segments;
        self.to_send += segments;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.cfg.init_cwnd;
        self.loss_events += 1;
    }

    /// The flow's retransmission timeout for a given RTT.
    pub fn rto(&self, rtt: SimDuration) -> SimDuration {
        rtt.mul_f64(self.cfg.rto_factor)
    }

    /// Receiver policy: how many data segments per ACK.
    pub fn ack_every(&self) -> u32 {
        self.cfg.ack_every
    }

    /// ACK payload size.
    pub fn ack_size(&self) -> u32 {
        self.cfg.ack_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(bytes: u64) -> TcpFlow {
        TcpFlow::new(TcpConfig::default(), bytes)
    }

    #[test]
    fn segment_count_rounds_up() {
        assert_eq!(flow(1).total_segments(), 1);
        assert_eq!(flow(1448).total_segments(), 1);
        assert_eq!(flow(1449).total_segments(), 2);
        assert_eq!(flow(144_800).total_segments(), 100);
    }

    #[test]
    fn window_limits_sending() {
        let mut f = flow(100 * 1448);
        assert!(f.can_send());
        let mut sent = 0;
        while f.can_send() {
            f.on_send();
            sent += 1;
        }
        assert_eq!(sent, 2, "initial window is 2 segments");
        f.on_ack(2);
        assert!((f.cwnd() - 4.0).abs() < 1e-9, "slow start doubles");
        let mut burst = 0;
        while f.can_send() {
            f.on_send();
            burst += 1;
        }
        assert_eq!(burst, 4);
    }

    #[test]
    fn slow_start_then_congestion_avoidance() {
        let mut f = flow(10_000 * 1448);
        // Ack 32 segments to reach ssthresh.
        for _ in 0..16 {
            while f.can_send() {
                f.on_send();
            }
            let inflight = 2; // ack a couple at a time
            f.on_ack(inflight);
        }
        let w = f.cwnd();
        assert!(w >= 32.0, "should have reached ssthresh: {w}");
        // Now growth is ~1/cwnd per ack.
        let before = f.cwnd();
        while f.can_send() {
            f.on_send();
        }
        f.on_ack(1);
        let growth = f.cwnd() - before;
        assert!(growth < 0.05, "linear region growth per ack: {growth}");
    }

    #[test]
    fn timeout_backs_off_multiplicatively() {
        let mut f = flow(1000 * 1448);
        for _ in 0..10 {
            while f.can_send() {
                f.on_send();
            }
            f.on_ack(f.in_flight);
        }
        let w = f.cwnd();
        while f.can_send() {
            f.on_send();
        }
        let inflight = f.in_flight;
        f.on_timeout(inflight);
        assert_eq!(f.loss_events, 1);
        assert!((f.cwnd() - 2.0).abs() < 1e-9, "cwnd resets");
        assert!(f.ssthresh >= w / 2.0 - 1e-9, "ssthresh halves from {w}");
        assert_eq!(f.in_flight, 0);
        assert!(f.can_send(), "lost segments are re-queued");
    }

    #[test]
    fn completes_exactly() {
        let mut f = flow(10 * 1448);
        let mut guard = 0;
        while !f.is_complete() {
            while f.can_send() {
                f.on_send();
            }
            f.on_ack(1);
            guard += 1;
            assert!(guard < 100);
        }
        assert_eq!(f.acked_segments(), 10);
        assert!(!f.can_send());
    }

    #[test]
    fn cwnd_capped() {
        let mut f = flow(100_000 * 1448);
        for _ in 0..10_000 {
            while f.can_send() {
                f.on_send();
            }
            let n = f.in_flight;
            f.on_ack(n);
        }
        assert!(f.cwnd() <= TcpConfig::default().max_cwnd + 1e-9);
    }

    #[test]
    fn rto_scales_with_rtt() {
        let f = flow(1448);
        assert_eq!(
            f.rto(SimDuration::from_millis(100)),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn spurious_timeout_ignored_when_nothing_in_flight() {
        let mut f = flow(1448);
        f.on_timeout(5);
        assert_eq!(f.loss_events, 0);
        assert_eq!(f.total_segments(), 1);
    }
}
