//! # csprov-web — bulk TCP cross-traffic
//!
//! Section IV-A of the paper frames its warning by contrast: routers are
//! provisioned for "bulk data transfers using TCP" whose data segments are
//! "close to an order of magnitude larger than game traffic". This crate
//! provides that traffic class so the contrast can be measured rather than
//! asserted:
//!
//! - [`tcp`] — a compact ACK-clocked TCP sender (slow start, congestion
//!   avoidance, delayed ACKs, timeout back-off).
//! - [`workload`] — heavy-tailed web-transfer arrivals (and optional
//!   persistent flows) driven through the same [`csprov_game::Middlebox`]
//!   interface the NAT device implements, so the identical device can be
//!   offered game traffic and web traffic of equal bit-rate.

pub mod tcp;
pub mod workload;

pub use tcp::{TcpConfig, TcpFlow};
pub use workload::{run_web_workload, run_web_workload_on, WebConfig, WebStats};
