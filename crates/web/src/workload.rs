//! Drives TCP bulk transfers through the simulator (and optionally a
//! middlebox), producing the web-like cross-traffic the paper contrasts
//! game traffic with: few, large packets, ACK-clocked, elastic.

use crate::tcp::{TcpConfig, TcpFlow};
use csprov_game::{Deliver, Middlebox};
use csprov_net::{
    client_endpoint, server_endpoint, Direction, Packet, PacketKind, TraceRecord, TraceSink,
};
use csprov_sim::dist::{Pareto, Sample};
use csprov_sim::{EventHandle, RngStream, SimDuration, SimTime, Simulator};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Web workload parameters: a web/FTP server behind the measured link,
/// serving heavy-tailed transfers to clients at various RTTs.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// New-transfer arrival rate, flows per second (0 = only `persistent`).
    pub flow_rate: f64,
    /// Number of long-lived transfers running for the whole horizon.
    pub persistent_flows: usize,
    /// Pareto scale (minimum transfer size, bytes).
    pub size_min: u64,
    /// Pareto shape (heavy tail; web sizes are ~1.1–1.3).
    pub size_shape: f64,
    /// Transfer size cap, bytes.
    pub size_cap: u64,
    /// Client RTT range (uniform).
    pub rtt: (SimDuration, SimDuration),
    /// Delayed-ACK flush timer.
    pub ack_delay: SimDuration,
    /// TCP sender parameters.
    pub tcp: TcpConfig,
    /// First session id to use for flows (keeps ids disjoint from game
    /// sessions when both share a trace).
    pub session_base: u32,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            flow_rate: 0.5,
            persistent_flows: 0,
            size_min: 8_192,
            size_shape: 1.2,
            size_cap: 5_000_000,
            rtt: (SimDuration::from_millis(30), SimDuration::from_millis(180)),
            ack_delay: SimDuration::from_millis(200),
            tcp: TcpConfig::default(),
            session_base: 1 << 20,
        }
    }
}

/// Aggregate outcome of a web workload run.
#[derive(Debug, Clone, Default)]
pub struct WebStats {
    /// Transfers started.
    pub flows_started: u64,
    /// Transfers fully acknowledged within the horizon.
    pub flows_completed: u64,
    /// Data segments sent (including retransmissions).
    pub data_packets: u64,
    /// Acknowledgements sent.
    pub ack_packets: u64,
    /// Loss events (retransmission timeouts).
    pub loss_events: u64,
    /// Application bytes acknowledged.
    pub goodput_bytes: u64,
}

struct FlowRt {
    flow: TcpFlow,
    rtt: SimDuration,
    /// Timeout handle per in-flight segment, oldest first.
    outstanding: VecDeque<EventHandle>,
    /// Receiver-side segments awaiting acknowledgement.
    recv_pending: u32,
    flush_scheduled: bool,
}

struct WebState {
    cfg: WebConfig,
    sink: Rc<RefCell<dyn TraceSink>>,
    middlebox: Option<Rc<dyn Middlebox>>,
    flows: BTreeMap<u32, FlowRt>,
    next_session: u32,
    stats: WebStats,
    rng: RngStream,
}

type W = Rc<RefCell<WebState>>;

/// Runs a web workload for `duration`, recording packets into `sink` (the
/// same tap-point conventions as the game world: data from the server is
/// Outbound, ACKs from clients are Inbound).
pub fn run_web_workload(
    cfg: WebConfig,
    duration: SimDuration,
    seed: u64,
    sink: Rc<RefCell<dyn TraceSink>>,
    middlebox: Option<Rc<dyn Middlebox>>,
) -> WebStats {
    let mut sim = Simulator::new();
    let stats = run_web_workload_on(&mut sim, cfg, duration, seed, sink, middlebox);
    let _ = sim;
    stats
}

/// As [`run_web_workload`], but on a caller-provided simulator (compose
/// with other workloads).
pub fn run_web_workload_on(
    sim: &mut Simulator,
    cfg: WebConfig,
    duration: SimDuration,
    seed: u64,
    sink: Rc<RefCell<dyn TraceSink>>,
    middlebox: Option<Rc<dyn Middlebox>>,
) -> WebStats {
    let session_base = cfg.session_base;
    let state: W = Rc::new(RefCell::new(WebState {
        cfg,
        sink,
        middlebox,
        flows: BTreeMap::new(),
        next_session: session_base,
        stats: WebStats::default(),
        rng: RngStream::new(seed).derive("web"),
    }));

    // Persistent flows: effectively infinite transfers.
    let n_persistent = state.borrow().cfg.persistent_flows;
    for _ in 0..n_persistent {
        start_flow(&state, sim, Some(u64::MAX / 2));
    }
    // Poisson arrivals of finite transfers.
    let rate = state.borrow().cfg.flow_rate;
    if rate > 0.0 {
        let rng = state.borrow().rng.derive("arrivals");
        let w = state.clone();
        csprov_sim::spawn_poisson(
            sim,
            SimTime::ZERO,
            SimDuration::from_secs_f64(1.0 / rate),
            rng,
            csprov_sim::StopFlag::new(),
            move |sim| start_flow(&w, sim, None),
        );
    }

    sim.run_until(sim.now() + duration);
    let end = sim.now();
    let st = state.borrow();
    st.sink.borrow_mut().on_end(end);
    st.stats.clone()
}

fn start_flow(w: &W, sim: &mut Simulator, size_override: Option<u64>) {
    let session = {
        let mut st = w.borrow_mut();
        let size = size_override.unwrap_or_else(|| {
            let p = Pareto::new(st.cfg.size_min as f64, st.cfg.size_shape);
            let mut rng = st.rng.clone();
            let s = p.sample(&mut rng).min(st.cfg.size_cap as f64) as u64;
            st.rng = rng;
            s
        });
        let rtt = {
            let (lo, hi) = st.cfg.rtt;
            let mut rng = st.rng.clone();
            let d = SimDuration::from_nanos(rng.next_range(lo.as_nanos(), hi.as_nanos()));
            st.rng = rng;
            d
        };
        let session = st.next_session;
        st.next_session += 1;
        st.stats.flows_started += 1;
        let flow = TcpFlow::new(st.cfg.tcp.clone(), size);
        st.flows.insert(
            session,
            FlowRt {
                flow,
                rtt,
                outstanding: VecDeque::new(),
                recv_pending: 0,
                flush_scheduled: false,
            },
        );
        session
    };
    pump(w, sim, session);
}

/// Sends as much of the window as currently allowed.
fn pump(w: &W, sim: &mut Simulator, session: u32) {
    loop {
        let (pkt, rto) = {
            let mut st = w.borrow_mut();
            let Some(rt) = st.flows.get_mut(&session) else {
                return;
            };
            if !rt.flow.can_send() {
                return;
            }
            let size = rt.flow.on_send();
            let rto = rt.flow.rto(rt.rtt);
            st.stats.data_packets += 1;
            (
                Packet {
                    src: server_endpoint(),
                    dst: client_endpoint(session),
                    app_len: size,
                    kind: PacketKind::TcpData,
                    session,
                    direction: Direction::Outbound,
                    sent_at: sim.now(),
                },
                rto,
            )
        };
        record(w, sim.now(), &pkt);

        // Per-segment retransmission timer.
        let w2 = w.clone();
        let handle = sim.schedule_cancellable_in(rto, move |sim| on_timeout(&w2, sim, session));
        w.borrow_mut()
            .flows
            .get_mut(&session)
            .expect("flow exists while pumping")
            .outstanding
            .push_back(handle);

        // Ship it (through the middlebox if present) to the receiver.
        let w2 = w.clone();
        let rtt = w.borrow().flows[&session].rtt;
        let deliver: Deliver = Box::new(move |sim, pkt| {
            // Propagation to the client: half an RTT.
            let w3 = w2.clone();
            sim.schedule_in(rtt / 2, move |sim| on_data_received(&w3, sim, pkt.session));
        });
        let mb = w.borrow().middlebox.clone();
        match mb {
            Some(mb) => mb.forward(sim, pkt, deliver),
            None => deliver(sim, pkt),
        }
    }
}

/// Receiver got a data segment: delayed-ACK logic.
fn on_data_received(w: &W, sim: &mut Simulator, session: u32) {
    let flush_now = {
        let mut st = w.borrow_mut();
        let Some(rt) = st.flows.get_mut(&session) else {
            return;
        };
        rt.recv_pending += 1;
        rt.recv_pending >= rt.flow.ack_every()
    };
    if flush_now {
        send_ack(w, sim, session);
    } else {
        let (delay, schedule) = {
            let mut st = w.borrow_mut();
            let delay = st.cfg.ack_delay;
            let Some(rt) = st.flows.get_mut(&session) else {
                return;
            };
            let schedule = !rt.flush_scheduled;
            rt.flush_scheduled = true;
            (delay, schedule)
        };
        if schedule {
            let w2 = w.clone();
            sim.schedule_in(delay, move |sim| {
                let pending = {
                    let mut st = w2.borrow_mut();
                    let Some(rt) = st.flows.get_mut(&session) else {
                        return;
                    };
                    rt.flush_scheduled = false;
                    rt.recv_pending
                };
                if pending > 0 {
                    send_ack(&w2, sim, session);
                }
            });
        }
    }
}

/// Receiver emits a (possibly cumulative) acknowledgement.
fn send_ack(w: &W, sim: &mut Simulator, session: u32) {
    let (pkt, covered, rtt) = {
        let mut st = w.borrow_mut();
        let Some(rt) = st.flows.get_mut(&session) else {
            return;
        };
        let covered = rt.recv_pending;
        if covered == 0 {
            return;
        }
        rt.recv_pending = 0;
        let size = rt.flow.ack_size();
        let rtt = rt.rtt;
        st.stats.ack_packets += 1;
        (
            Packet {
                src: client_endpoint(session),
                dst: server_endpoint(),
                app_len: size,
                kind: PacketKind::TcpAck,
                session,
                direction: Direction::Inbound,
                sent_at: sim.now(),
            },
            covered,
            rtt,
        )
    };
    record(w, sim.now(), &pkt);
    let w2 = w.clone();
    let deliver: Deliver = Box::new(move |sim, pkt| {
        let w3 = w2.clone();
        sim.schedule_in(rtt / 2, move |sim| {
            on_ack_received(&w3, sim, pkt.session, covered)
        });
    });
    let mb = w.borrow().middlebox.clone();
    match mb {
        Some(mb) => mb.forward(sim, pkt, deliver),
        None => deliver(sim, pkt),
    }
}

/// Sender got an acknowledgement.
fn on_ack_received(w: &W, sim: &mut Simulator, session: u32, covered: u32) {
    let complete = {
        let mut st = w.borrow_mut();
        let mss = u64::from(st.cfg.tcp.mss);
        let Some(rt) = st.flows.get_mut(&session) else {
            return;
        };
        for _ in 0..covered {
            if let Some(h) = rt.outstanding.pop_front() {
                h.cancel();
            }
        }
        rt.flow.on_ack(covered);
        let complete = rt.flow.is_complete();
        st.stats.goodput_bytes += u64::from(covered) * mss;
        complete
    };
    if complete {
        let mut st = w.borrow_mut();
        if let Some(rt) = st.flows.remove(&session) {
            for h in rt.outstanding {
                h.cancel();
            }
            st.stats.flows_completed += 1;
        }
    } else {
        pump(w, sim, session);
    }
}

/// A retransmission timer fired: treat the oldest in-flight segment as lost.
fn on_timeout(w: &W, sim: &mut Simulator, session: u32) {
    {
        let mut st = w.borrow_mut();
        let Some(rt) = st.flows.get_mut(&session) else {
            return;
        };
        // Our handle has fired; it is the oldest one still queued.
        rt.outstanding.pop_front();
        rt.flow.on_timeout(1);
        st.stats.loss_events += 1;
    }
    pump(w, sim, session);
}

fn record(w: &W, now: SimTime, pkt: &Packet) {
    let st = w.borrow();
    st.sink
        .borrow_mut()
        .on_packet(&TraceRecord::from_packet(now, pkt));
}

#[cfg(test)]
mod tests {
    use super::*;
    use csprov_net::CountingSink;

    fn counting() -> Rc<RefCell<CountingSink>> {
        Rc::new(RefCell::new(CountingSink::new()))
    }

    #[test]
    fn single_transfer_completes_losslessly() {
        let cfg = WebConfig {
            flow_rate: 0.0,
            persistent_flows: 0,
            ..Default::default()
        };
        let sink = counting();
        let mut sim = Simulator::new();
        let state_stats = {
            // One explicit 100-segment transfer.
            let mut cfg2 = cfg.clone();
            cfg2.flow_rate = 0.0;
            let sink2: Rc<RefCell<dyn TraceSink>> = sink.clone();
            let w: W = Rc::new(RefCell::new(WebState {
                cfg: cfg2,
                sink: sink2,
                middlebox: None,
                flows: BTreeMap::new(),
                next_session: 0,
                stats: WebStats::default(),
                rng: RngStream::new(1),
            }));
            start_flow(&w, &mut sim, Some(100 * 1448));
            sim.run();
            let stats = w.borrow().stats.clone();
            stats
        };
        assert_eq!(state_stats.flows_completed, 1);
        assert_eq!(state_stats.data_packets, 100, "no loss, no retransmits");
        assert_eq!(state_stats.loss_events, 0);
        // Delayed ACKs: roughly one ACK per two data segments.
        assert!(
            (45..=60).contains(&(state_stats.ack_packets as i64)),
            "acks {}",
            state_stats.ack_packets
        );
        let c = sink.borrow();
        assert_eq!(c.packets_in(Direction::Outbound), 100);
        // Bulk traffic: mean outbound app size is the MSS.
        assert_eq!(
            c.app_bytes_in(Direction::Outbound) / c.packets_in(Direction::Outbound),
            1448
        );
    }

    #[test]
    fn workload_generates_large_packets() {
        let cfg = WebConfig {
            flow_rate: 2.0,
            ..Default::default()
        };
        let sink = counting();
        let stats = run_web_workload(cfg, SimDuration::from_secs(120), 7, sink.clone(), None);
        assert!(stats.flows_started > 100);
        assert!(stats.flows_completed > 50);
        let c = sink.borrow();
        let mean_out =
            c.app_bytes_in(Direction::Outbound) as f64 / c.packets_in(Direction::Outbound) as f64;
        // The Ames-exchange contrast the paper cites: aggregate mean packet
        // size above 400 B.
        let mean_all = (c.app_bytes_in(Direction::Outbound) + c.app_bytes_in(Direction::Inbound))
            as f64
            / c.total_packets() as f64;
        assert!(mean_out > 1_400.0, "bulk data mean {mean_out}");
        assert!(mean_all > 400.0, "aggregate mean {mean_all}");
    }

    #[test]
    fn persistent_flow_saturates_window() {
        let cfg = WebConfig {
            flow_rate: 0.0,
            persistent_flows: 1,
            rtt: (SimDuration::from_millis(100), SimDuration::from_millis(100)),
            ..Default::default()
        };
        let sink = counting();
        let stats = run_web_workload(cfg, SimDuration::from_secs(30), 3, sink.clone(), None);
        assert_eq!(stats.flows_completed, 0, "persistent flow never ends");
        // Steady state: ~cwnd segments per RTT = 64 per 100 ms = 640 pps.
        let pps = sink.borrow().packets_in(Direction::Outbound) as f64 / 30.0;
        assert!((400.0..700.0).contains(&pps), "data pps {pps}");
    }

    #[test]
    fn loss_triggers_retransmission_and_recovery() {
        use csprov_router::{EngineConfig, NatDevice, NatTaps};
        // A very slow device: the elastic flow backs off but still finishes.
        let nat = Rc::new(NatDevice::new(
            EngineConfig {
                lookup_time: SimDuration::from_millis(4),
                wan_queue: 4,
                lan_queue: 4,
                ..EngineConfig::default()
            },
            NatTaps::default(),
        ));
        let sink = counting();
        let mut sim = Simulator::new();
        let sink2: Rc<RefCell<dyn TraceSink>> = sink.clone();
        let w: W = Rc::new(RefCell::new(WebState {
            cfg: WebConfig::default(),
            sink: sink2,
            middlebox: Some(nat),
            flows: BTreeMap::new(),
            next_session: 0,
            stats: WebStats::default(),
            rng: RngStream::new(5),
        }));
        start_flow(&w, &mut sim, Some(200 * 1448));
        sim.run_until(SimTime::from_secs(600));
        let stats = w.borrow().stats.clone();
        assert!(stats.loss_events > 0, "the tiny queue must drop something");
        assert_eq!(stats.flows_completed, 1, "TCP recovers and completes");
        assert!(
            stats.data_packets > 200,
            "retransmissions: {} sends for 200 segments",
            stats.data_packets
        );
    }
}
