//! Property-based tests for the TCP sender state machine.

use csprov_sim::check::{check, Gen};
use csprov_web::{TcpConfig, TcpFlow};

#[derive(Debug, Clone)]
enum Op {
    SendAll,
    Ack(u32),
    Timeout(u32),
}

fn gen_op(g: &mut Gen) -> Op {
    match g.u64_in(0..3) {
        0 => Op::SendAll,
        1 => Op::Ack(g.u32_in(1..8)),
        _ => Op::Timeout(g.u32_in(1..8)),
    }
}

/// Segment conservation: acked + in-flight + queued == total at every
/// step, the window bound always holds, and cwnd stays within range.
#[test]
fn flow_invariants() {
    check("flow_invariants", 128, |g| {
        let bytes = g.u64_in(1..2_000_000);
        let ops = g.vec_with(1..300, gen_op);
        let cfg = TcpConfig::default();
        let mut f = TcpFlow::new(cfg.clone(), bytes);
        let total = f.total_segments();
        let mut sent_live = 0u32; // our external model of in-flight
        for op in ops {
            match op {
                Op::SendAll => {
                    while f.can_send() {
                        // The window gates each send (in-flight < cwnd at
                        // the moment of sending; a later timeout may shrink
                        // cwnd below what is already in flight).
                        assert!((sent_live as f64) < f.cwnd() + 1e-9);
                        f.on_send();
                        sent_live += 1;
                    }
                    assert!(!f.can_send());
                }
                Op::Ack(n) => {
                    let n = n.min(sent_live);
                    if n > 0 {
                        f.on_ack(n);
                        sent_live -= n;
                    }
                }
                Op::Timeout(n) => {
                    let n = n.min(sent_live);
                    if n > 0 {
                        f.on_timeout(n);
                        sent_live -= n;
                    }
                }
            }
            assert!(f.cwnd() >= cfg.init_cwnd - 1e-9);
            assert!(f.cwnd() <= cfg.max_cwnd + 1e-9);
            assert!(f.acked_segments() <= total);
            if f.is_complete() {
                assert!(!f.can_send());
                break;
            }
        }
    });
}

/// Any flow completes under a lossless send/ack loop, in exactly `total`
/// data transmissions.
#[test]
fn lossless_loop_completes() {
    check("lossless_loop_completes", 256, |g| {
        let bytes = g.u64_in(1..5_000_000);
        let mut f = TcpFlow::new(TcpConfig::default(), bytes);
        let total = f.total_segments();
        let mut sends = 0u32;
        let mut rounds = 0u32;
        while !f.is_complete() {
            let mut burst = 0;
            while f.can_send() {
                f.on_send();
                sends += 1;
                burst += 1;
            }
            f.on_ack(burst.max(1));
            rounds += 1;
            assert!(rounds <= total + 8, "must make progress");
        }
        assert_eq!(sends, total);
    });
}

/// Loss slows a flow but never wedges it: alternating one timeout per
/// window still finishes, with retransmissions accounted.
#[test]
fn lossy_loop_completes() {
    check("lossy_loop_completes", 256, |g| {
        let bytes = g.u64_in(1448..500_000);
        let mut f = TcpFlow::new(TcpConfig::default(), bytes);
        let total = f.total_segments();
        let mut sends = 0u64;
        let mut guard = 0u32;
        while !f.is_complete() {
            let mut burst = 0;
            while f.can_send() {
                f.on_send();
                sends += 1;
                burst += 1;
            }
            if burst > 1 && guard % 3 == 0 {
                f.on_timeout(1);
                f.on_ack(burst - 1);
            } else {
                f.on_ack(burst.max(1));
            }
            guard += 1;
            assert!(guard < 10 * total + 64);
        }
        assert!(sends >= u64::from(total), "retransmissions add sends");
    });
}
