//! Property-based tests for the TCP sender state machine.

use csprov_web::{TcpConfig, TcpFlow};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    SendAll,
    Ack(u32),
    Timeout(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::SendAll),
        (1u32..8).prop_map(Op::Ack),
        (1u32..8).prop_map(Op::Timeout),
    ]
}

proptest! {
    /// Segment conservation: acked + in-flight + queued == total at every
    /// step, the window bound always holds, and cwnd stays within range.
    #[test]
    fn flow_invariants(bytes in 1u64..2_000_000, ops in prop::collection::vec(arb_op(), 1..300)) {
        let cfg = TcpConfig::default();
        let mut f = TcpFlow::new(cfg.clone(), bytes);
        let total = f.total_segments();
        let mut sent_live = 0u32; // our external model of in-flight
        for op in ops {
            match op {
                Op::SendAll => {
                    while f.can_send() {
                        // The window gates each send (in-flight < cwnd at
                        // the moment of sending; a later timeout may shrink
                        // cwnd below what is already in flight).
                        prop_assert!((sent_live as f64) < f.cwnd() + 1e-9);
                        f.on_send();
                        sent_live += 1;
                    }
                    prop_assert!(!f.can_send());
                }
                Op::Ack(n) => {
                    let n = n.min(sent_live);
                    if n > 0 {
                        f.on_ack(n);
                        sent_live -= n;
                    }
                }
                Op::Timeout(n) => {
                    let n = n.min(sent_live);
                    if n > 0 {
                        f.on_timeout(n);
                        sent_live -= n;
                    }
                }
            }
            prop_assert!(f.cwnd() >= cfg.init_cwnd - 1e-9);
            prop_assert!(f.cwnd() <= cfg.max_cwnd + 1e-9);
            prop_assert!(f.acked_segments() <= total);
            if f.is_complete() {
                prop_assert!(!f.can_send());
                break;
            }
        }
    }

    /// Any flow completes under a lossless send/ack loop, in exactly
    /// `total` data transmissions.
    #[test]
    fn lossless_loop_completes(bytes in 1u64..5_000_000) {
        let mut f = TcpFlow::new(TcpConfig::default(), bytes);
        let total = f.total_segments();
        let mut sends = 0u32;
        let mut rounds = 0u32;
        while !f.is_complete() {
            let mut burst = 0;
            while f.can_send() {
                f.on_send();
                sends += 1;
                burst += 1;
            }
            f.on_ack(burst.max(1));
            rounds += 1;
            prop_assert!(rounds <= total + 8, "must make progress");
        }
        prop_assert_eq!(sends, total);
    }

    /// Loss slows a flow but never wedges it: alternating one timeout per
    /// window still finishes, with retransmissions accounted.
    #[test]
    fn lossy_loop_completes(bytes in 1448u64..500_000) {
        let mut f = TcpFlow::new(TcpConfig::default(), bytes);
        let total = f.total_segments();
        let mut sends = 0u64;
        let mut guard = 0u32;
        while !f.is_complete() {
            let mut burst = 0;
            while f.can_send() {
                f.on_send();
                sends += 1;
                burst += 1;
            }
            if burst > 1 && guard % 3 == 0 {
                f.on_timeout(1);
                f.on_ack(burst - 1);
            } else {
                f.on_ack(burst.max(1));
            }
            guard += 1;
            prop_assert!(guard < 10 * total + 64);
        }
        prop_assert!(sends >= u64::from(total), "retransmissions add sends");
    }
}
