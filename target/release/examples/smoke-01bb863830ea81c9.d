/root/repo/target/release/examples/smoke-01bb863830ea81c9.d: crates/game/examples/smoke.rs

/root/repo/target/release/examples/smoke-01bb863830ea81c9: crates/game/examples/smoke.rs

crates/game/examples/smoke.rs:
