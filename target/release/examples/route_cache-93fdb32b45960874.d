/root/repo/target/release/examples/route_cache-93fdb32b45960874.d: crates/core/../../examples/route_cache.rs

/root/repo/target/release/examples/route_cache-93fdb32b45960874: crates/core/../../examples/route_cache.rs

crates/core/../../examples/route_cache.rs:
