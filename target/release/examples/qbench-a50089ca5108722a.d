/root/repo/target/release/examples/qbench-a50089ca5108722a.d: crates/bench/examples/qbench.rs

/root/repo/target/release/examples/qbench-a50089ca5108722a: crates/bench/examples/qbench.rs

crates/bench/examples/qbench.rs:
