/root/repo/target/release/examples/smoke-9360034e08cd74c9.d: crates/game/examples/smoke.rs Cargo.toml

/root/repo/target/release/examples/libsmoke-9360034e08cd74c9.rmeta: crates/game/examples/smoke.rs Cargo.toml

crates/game/examples/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
