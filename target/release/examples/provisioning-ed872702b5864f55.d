/root/repo/target/release/examples/provisioning-ed872702b5864f55.d: crates/core/../../examples/provisioning.rs Cargo.toml

/root/repo/target/release/examples/libprovisioning-ed872702b5864f55.rmeta: crates/core/../../examples/provisioning.rs Cargo.toml

crates/core/../../examples/provisioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
