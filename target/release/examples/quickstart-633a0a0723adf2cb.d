/root/repo/target/release/examples/quickstart-633a0a0723adf2cb.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-633a0a0723adf2cb.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
