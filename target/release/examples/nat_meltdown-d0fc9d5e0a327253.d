/root/repo/target/release/examples/nat_meltdown-d0fc9d5e0a327253.d: crates/core/../../examples/nat_meltdown.rs

/root/repo/target/release/examples/nat_meltdown-d0fc9d5e0a327253: crates/core/../../examples/nat_meltdown.rs

crates/core/../../examples/nat_meltdown.rs:
