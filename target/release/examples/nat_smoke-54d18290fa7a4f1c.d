/root/repo/target/release/examples/nat_smoke-54d18290fa7a4f1c.d: crates/router/examples/nat_smoke.rs Cargo.toml

/root/repo/target/release/examples/libnat_smoke-54d18290fa7a4f1c.rmeta: crates/router/examples/nat_smoke.rs Cargo.toml

crates/router/examples/nat_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
