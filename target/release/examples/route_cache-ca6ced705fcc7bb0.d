/root/repo/target/release/examples/route_cache-ca6ced705fcc7bb0.d: crates/core/../../examples/route_cache.rs Cargo.toml

/root/repo/target/release/examples/libroute_cache-ca6ced705fcc7bb0.rmeta: crates/core/../../examples/route_cache.rs Cargo.toml

crates/core/../../examples/route_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
