/root/repo/target/release/examples/nat_meltdown-9bf4b5f4b868f4d9.d: crates/core/../../examples/nat_meltdown.rs Cargo.toml

/root/repo/target/release/examples/libnat_meltdown-9bf4b5f4b868f4d9.rmeta: crates/core/../../examples/nat_meltdown.rs Cargo.toml

crates/core/../../examples/nat_meltdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
