/root/repo/target/release/examples/sweep_probe_tmp-b595bd62f8c30386.d: crates/core/../../examples/sweep_probe_tmp.rs

/root/repo/target/release/examples/sweep_probe_tmp-b595bd62f8c30386: crates/core/../../examples/sweep_probe_tmp.rs

crates/core/../../examples/sweep_probe_tmp.rs:
