/root/repo/target/release/examples/quickstart-e7ec0c5fe9713c9d.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e7ec0c5fe9713c9d: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
