/root/repo/target/release/examples/provisioning-8011ffc7d7bf066a.d: crates/core/../../examples/provisioning.rs

/root/repo/target/release/examples/provisioning-8011ffc7d7bf066a: crates/core/../../examples/provisioning.rs

crates/core/../../examples/provisioning.rs:
