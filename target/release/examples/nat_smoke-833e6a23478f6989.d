/root/repo/target/release/examples/nat_smoke-833e6a23478f6989.d: crates/router/examples/nat_smoke.rs

/root/repo/target/release/examples/nat_smoke-833e6a23478f6989: crates/router/examples/nat_smoke.rs

crates/router/examples/nat_smoke.rs:
