/root/repo/target/release/deps/csprov_router-b297f521ed1ef3b5.d: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

/root/repo/target/release/deps/libcsprov_router-b297f521ed1ef3b5.rlib: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

/root/repo/target/release/deps/libcsprov_router-b297f521ed1ef3b5.rmeta: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

crates/router/src/lib.rs:
crates/router/src/cache.rs:
crates/router/src/engine.rs:
crates/router/src/impaired.rs:
crates/router/src/nat.rs:
crates/router/src/provision.rs:
crates/router/src/table.rs:
