/root/repo/target/release/deps/integration_obs-1019564414568d3a.d: crates/core/../../tests/integration_obs.rs Cargo.toml

/root/repo/target/release/deps/libintegration_obs-1019564414568d3a.rmeta: crates/core/../../tests/integration_obs.rs Cargo.toml

crates/core/../../tests/integration_obs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
