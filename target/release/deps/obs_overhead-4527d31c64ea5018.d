/root/repo/target/release/deps/obs_overhead-4527d31c64ea5018.d: crates/bench/benches/obs_overhead.rs Cargo.toml

/root/repo/target/release/deps/libobs_overhead-4527d31c64ea5018.rmeta: crates/bench/benches/obs_overhead.rs Cargo.toml

crates/bench/benches/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
