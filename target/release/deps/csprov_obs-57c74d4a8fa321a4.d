/root/repo/target/release/deps/csprov_obs-57c74d4a8fa321a4.d: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libcsprov_obs-57c74d4a8fa321a4.rlib: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libcsprov_obs-57c74d4a8fa321a4.rmeta: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/histogram.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
