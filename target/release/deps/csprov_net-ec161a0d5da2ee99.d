/root/repo/target/release/deps/csprov_net-ec161a0d5da2ee99.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/fault.rs crates/net/src/link.rs crates/net/src/metrics.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/trace.rs crates/net/src/wire/mod.rs crates/net/src/wire/ethernet.rs crates/net/src/wire/ipv4.rs crates/net/src/wire/udp.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_net-ec161a0d5da2ee99.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/fault.rs crates/net/src/link.rs crates/net/src/metrics.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/trace.rs crates/net/src/wire/mod.rs crates/net/src/wire/ethernet.rs crates/net/src/wire/ipv4.rs crates/net/src/wire/udp.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/fault.rs:
crates/net/src/link.rs:
crates/net/src/metrics.rs:
crates/net/src/packet.rs:
crates/net/src/pcap.rs:
crates/net/src/trace.rs:
crates/net/src/wire/mod.rs:
crates/net/src/wire/ethernet.rs:
crates/net/src/wire/ipv4.rs:
crates/net/src/wire/udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
