/root/repo/target/release/deps/csprov_bench-58289137cbb50e3a.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/csprov_bench-58289137cbb50e3a: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
