/root/repo/target/release/deps/sim_kernel-bc18c5d632071942.d: crates/bench/benches/sim_kernel.rs Cargo.toml

/root/repo/target/release/deps/libsim_kernel-bc18c5d632071942.rmeta: crates/bench/benches/sim_kernel.rs Cargo.toml

crates/bench/benches/sim_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
