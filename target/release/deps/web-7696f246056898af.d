/root/repo/target/release/deps/web-7696f246056898af.d: crates/bench/benches/web.rs

/root/repo/target/release/deps/web-7696f246056898af: crates/bench/benches/web.rs

crates/bench/benches/web.rs:
