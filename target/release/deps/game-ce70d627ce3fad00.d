/root/repo/target/release/deps/game-ce70d627ce3fad00.d: crates/bench/benches/game.rs Cargo.toml

/root/repo/target/release/deps/libgame-ce70d627ce3fad00.rmeta: crates/bench/benches/game.rs Cargo.toml

crates/bench/benches/game.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
