/root/repo/target/release/deps/csprov_bench-2792e6ca49b2d04e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_bench-2792e6ca49b2d04e.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
