/root/repo/target/release/deps/csprov_model-b0c9c574819ef016.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/release/deps/libcsprov_model-b0c9c574819ef016.rlib: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/release/deps/libcsprov_model-b0c9c574819ef016.rmeta: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
