/root/repo/target/release/deps/csprov_model-c0cf2fc76fc18766.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_model-c0cf2fc76fc18766.rmeta: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
