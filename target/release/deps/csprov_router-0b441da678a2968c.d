/root/repo/target/release/deps/csprov_router-0b441da678a2968c.d: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/metrics.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

/root/repo/target/release/deps/csprov_router-0b441da678a2968c: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/metrics.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

crates/router/src/lib.rs:
crates/router/src/cache.rs:
crates/router/src/engine.rs:
crates/router/src/impaired.rs:
crates/router/src/metrics.rs:
crates/router/src/nat.rs:
crates/router/src/provision.rs:
crates/router/src/table.rs:
