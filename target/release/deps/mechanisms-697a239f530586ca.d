/root/repo/target/release/deps/mechanisms-697a239f530586ca.d: crates/game/tests/mechanisms.rs

/root/repo/target/release/deps/mechanisms-697a239f530586ca: crates/game/tests/mechanisms.rs

crates/game/tests/mechanisms.rs:
