/root/repo/target/release/deps/csprov_model-baf53206fbb51e8f.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/release/deps/csprov_model-baf53206fbb51e8f: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
