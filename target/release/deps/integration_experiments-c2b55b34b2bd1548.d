/root/repo/target/release/deps/integration_experiments-c2b55b34b2bd1548.d: crates/core/../../tests/integration_experiments.rs Cargo.toml

/root/repo/target/release/deps/libintegration_experiments-c2b55b34b2bd1548.rmeta: crates/core/../../tests/integration_experiments.rs Cargo.toml

crates/core/../../tests/integration_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
