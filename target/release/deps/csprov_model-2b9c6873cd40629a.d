/root/repo/target/release/deps/csprov_model-2b9c6873cd40629a.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/release/deps/libcsprov_model-2b9c6873cd40629a.rlib: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/release/deps/libcsprov_model-2b9c6873cd40629a.rmeta: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
