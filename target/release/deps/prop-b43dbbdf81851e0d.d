/root/repo/target/release/deps/prop-b43dbbdf81851e0d.d: crates/web/tests/prop.rs

/root/repo/target/release/deps/prop-b43dbbdf81851e0d: crates/web/tests/prop.rs

crates/web/tests/prop.rs:
