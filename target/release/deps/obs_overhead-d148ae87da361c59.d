/root/repo/target/release/deps/obs_overhead-d148ae87da361c59.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-d148ae87da361c59: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
