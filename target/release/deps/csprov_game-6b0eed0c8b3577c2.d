/root/repo/target/release/deps/csprov_game-6b0eed0c8b3577c2.d: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

/root/repo/target/release/deps/libcsprov_game-6b0eed0c8b3577c2.rlib: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

/root/repo/target/release/deps/libcsprov_game-6b0eed0c8b3577c2.rmeta: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

crates/game/src/lib.rs:
crates/game/src/config.rs:
crates/game/src/maps.rs:
crates/game/src/packets.rs:
crates/game/src/server.rs:
crates/game/src/session.rs:
crates/game/src/world.rs:
