/root/repo/target/release/deps/integration_determinism-189145c26ae38824.d: crates/core/../../tests/integration_determinism.rs

/root/repo/target/release/deps/integration_determinism-189145c26ae38824: crates/core/../../tests/integration_determinism.rs

crates/core/../../tests/integration_determinism.rs:
