/root/repo/target/release/deps/integration_experiments-80085b509b5707e7.d: crates/core/../../tests/integration_experiments.rs

/root/repo/target/release/deps/integration_experiments-80085b509b5707e7: crates/core/../../tests/integration_experiments.rs

crates/core/../../tests/integration_experiments.rs:
