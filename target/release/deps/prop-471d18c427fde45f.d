/root/repo/target/release/deps/prop-471d18c427fde45f.d: crates/router/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-471d18c427fde45f.rmeta: crates/router/tests/prop.rs Cargo.toml

crates/router/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
