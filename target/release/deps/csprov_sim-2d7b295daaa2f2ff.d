/root/repo/target/release/deps/csprov_sim-2d7b295daaa2f2ff.d: crates/sim/src/lib.rs crates/sim/src/check.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/process.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_sim-2d7b295daaa2f2ff.rmeta: crates/sim/src/lib.rs crates/sim/src/check.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/process.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/check.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/process.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
