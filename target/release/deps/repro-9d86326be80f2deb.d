/root/repo/target/release/deps/repro-9d86326be80f2deb.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/release/deps/librepro-9d86326be80f2deb.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
