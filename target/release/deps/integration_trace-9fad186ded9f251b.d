/root/repo/target/release/deps/integration_trace-9fad186ded9f251b.d: crates/core/../../tests/integration_trace.rs

/root/repo/target/release/deps/integration_trace-9fad186ded9f251b: crates/core/../../tests/integration_trace.rs

crates/core/../../tests/integration_trace.rs:
