/root/repo/target/release/deps/csprov_web-66dcd86a17292827.d: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/release/deps/libcsprov_web-66dcd86a17292827.rlib: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/release/deps/libcsprov_web-66dcd86a17292827.rmeta: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

crates/web/src/lib.rs:
crates/web/src/tcp.rs:
crates/web/src/workload.rs:
