/root/repo/target/release/deps/cstrace-625c3a587f182094.d: crates/bench/src/bin/cstrace.rs

/root/repo/target/release/deps/cstrace-625c3a587f182094: crates/bench/src/bin/cstrace.rs

crates/bench/src/bin/cstrace.rs:
