/root/repo/target/release/deps/prop-db0db1ece6f228ac.d: crates/analysis/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-db0db1ece6f228ac.rmeta: crates/analysis/tests/prop.rs Cargo.toml

crates/analysis/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
