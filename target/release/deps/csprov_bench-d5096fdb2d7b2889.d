/root/repo/target/release/deps/csprov_bench-d5096fdb2d7b2889.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_bench-d5096fdb2d7b2889.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
