/root/repo/target/release/deps/csprov_game-e1336deeb3e7d07e.d: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

/root/repo/target/release/deps/csprov_game-e1336deeb3e7d07e: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

crates/game/src/lib.rs:
crates/game/src/config.rs:
crates/game/src/maps.rs:
crates/game/src/metrics.rs:
crates/game/src/packets.rs:
crates/game/src/server.rs:
crates/game/src/session.rs:
crates/game/src/world.rs:
