/root/repo/target/release/deps/wire-bc86b6f07a6e6a4a.d: crates/bench/benches/wire.rs

/root/repo/target/release/deps/wire-bc86b6f07a6e6a4a: crates/bench/benches/wire.rs

crates/bench/benches/wire.rs:
