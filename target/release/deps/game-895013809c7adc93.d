/root/repo/target/release/deps/game-895013809c7adc93.d: crates/bench/benches/game.rs

/root/repo/target/release/deps/game-895013809c7adc93: crates/bench/benches/game.rs

crates/bench/benches/game.rs:
