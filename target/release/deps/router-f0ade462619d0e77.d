/root/repo/target/release/deps/router-f0ade462619d0e77.d: crates/bench/benches/router.rs

/root/repo/target/release/deps/router-f0ade462619d0e77: crates/bench/benches/router.rs

crates/bench/benches/router.rs:
