/root/repo/target/release/deps/cstrace-4274c29566123f04.d: crates/bench/src/bin/cstrace.rs

/root/repo/target/release/deps/cstrace-4274c29566123f04: crates/bench/src/bin/cstrace.rs

crates/bench/src/bin/cstrace.rs:
