/root/repo/target/release/deps/csprov-641e90f8bd522bb5.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/aggregate.rs crates/core/src/experiments/figures.rs crates/core/src/experiments/nat.rs crates/core/src/experiments/tables.rs crates/core/src/experiments/web.rs crates/core/src/pipeline.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libcsprov-641e90f8bd522bb5.rlib: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/aggregate.rs crates/core/src/experiments/figures.rs crates/core/src/experiments/nat.rs crates/core/src/experiments/tables.rs crates/core/src/experiments/web.rs crates/core/src/pipeline.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libcsprov-641e90f8bd522bb5.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/aggregate.rs crates/core/src/experiments/figures.rs crates/core/src/experiments/nat.rs crates/core/src/experiments/tables.rs crates/core/src/experiments/web.rs crates/core/src/pipeline.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablations.rs:
crates/core/src/experiments/aggregate.rs:
crates/core/src/experiments/figures.rs:
crates/core/src/experiments/nat.rs:
crates/core/src/experiments/tables.rs:
crates/core/src/experiments/web.rs:
crates/core/src/pipeline.rs:
crates/core/src/sweep.rs:
