/root/repo/target/release/deps/cstrace-8f2895f1d07b6c79.d: crates/bench/src/bin/cstrace.rs

/root/repo/target/release/deps/cstrace-8f2895f1d07b6c79: crates/bench/src/bin/cstrace.rs

crates/bench/src/bin/cstrace.rs:
