/root/repo/target/release/deps/prop-1fd9355cbff9a12e.d: crates/analysis/tests/prop.rs

/root/repo/target/release/deps/prop-1fd9355cbff9a12e: crates/analysis/tests/prop.rs

crates/analysis/tests/prop.rs:
