/root/repo/target/release/deps/csprov_analysis-3779185780f122c6.d: crates/analysis/src/lib.rs crates/analysis/src/acf.rs crates/analysis/src/fit.rs crates/analysis/src/flows.rs crates/analysis/src/histogram.rs crates/analysis/src/hurst.rs crates/analysis/src/plot.rs crates/analysis/src/report.rs crates/analysis/src/series.rs crates/analysis/src/sessions.rs crates/analysis/src/summary.rs crates/analysis/src/welford.rs

/root/repo/target/release/deps/csprov_analysis-3779185780f122c6: crates/analysis/src/lib.rs crates/analysis/src/acf.rs crates/analysis/src/fit.rs crates/analysis/src/flows.rs crates/analysis/src/histogram.rs crates/analysis/src/hurst.rs crates/analysis/src/plot.rs crates/analysis/src/report.rs crates/analysis/src/series.rs crates/analysis/src/sessions.rs crates/analysis/src/summary.rs crates/analysis/src/welford.rs

crates/analysis/src/lib.rs:
crates/analysis/src/acf.rs:
crates/analysis/src/fit.rs:
crates/analysis/src/flows.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/hurst.rs:
crates/analysis/src/plot.rs:
crates/analysis/src/report.rs:
crates/analysis/src/series.rs:
crates/analysis/src/sessions.rs:
crates/analysis/src/summary.rs:
crates/analysis/src/welford.rs:
