/root/repo/target/release/deps/prop-ce58acdce9e3f600.d: crates/sim/tests/prop.rs

/root/repo/target/release/deps/prop-ce58acdce9e3f600: crates/sim/tests/prop.rs

crates/sim/tests/prop.rs:
