/root/repo/target/release/deps/csprov_analysis-fc7156f7f8ce3fdf.d: crates/analysis/src/lib.rs crates/analysis/src/acf.rs crates/analysis/src/fit.rs crates/analysis/src/flows.rs crates/analysis/src/histogram.rs crates/analysis/src/hurst.rs crates/analysis/src/plot.rs crates/analysis/src/report.rs crates/analysis/src/series.rs crates/analysis/src/sessions.rs crates/analysis/src/summary.rs crates/analysis/src/welford.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_analysis-fc7156f7f8ce3fdf.rmeta: crates/analysis/src/lib.rs crates/analysis/src/acf.rs crates/analysis/src/fit.rs crates/analysis/src/flows.rs crates/analysis/src/histogram.rs crates/analysis/src/hurst.rs crates/analysis/src/plot.rs crates/analysis/src/report.rs crates/analysis/src/series.rs crates/analysis/src/sessions.rs crates/analysis/src/summary.rs crates/analysis/src/welford.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/acf.rs:
crates/analysis/src/fit.rs:
crates/analysis/src/flows.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/hurst.rs:
crates/analysis/src/plot.rs:
crates/analysis/src/report.rs:
crates/analysis/src/series.rs:
crates/analysis/src/sessions.rs:
crates/analysis/src/summary.rs:
crates/analysis/src/welford.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
