/root/repo/target/release/deps/csprov_web-9c4bd4cb9338f13b.d: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/release/deps/csprov_web-9c4bd4cb9338f13b: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

crates/web/src/lib.rs:
crates/web/src/tcp.rs:
crates/web/src/workload.rs:
