/root/repo/target/release/deps/csprov_obs-667049e17ea7d0df.d: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/release/deps/csprov_obs-667049e17ea7d0df: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/histogram.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
