/root/repo/target/release/deps/repro-faf3439976090573.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-faf3439976090573: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
