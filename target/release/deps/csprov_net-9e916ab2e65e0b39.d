/root/repo/target/release/deps/csprov_net-9e916ab2e65e0b39.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/fault.rs crates/net/src/link.rs crates/net/src/metrics.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/trace.rs crates/net/src/wire/mod.rs crates/net/src/wire/ethernet.rs crates/net/src/wire/ipv4.rs crates/net/src/wire/udp.rs

/root/repo/target/release/deps/libcsprov_net-9e916ab2e65e0b39.rlib: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/fault.rs crates/net/src/link.rs crates/net/src/metrics.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/trace.rs crates/net/src/wire/mod.rs crates/net/src/wire/ethernet.rs crates/net/src/wire/ipv4.rs crates/net/src/wire/udp.rs

/root/repo/target/release/deps/libcsprov_net-9e916ab2e65e0b39.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/fault.rs crates/net/src/link.rs crates/net/src/metrics.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/trace.rs crates/net/src/wire/mod.rs crates/net/src/wire/ethernet.rs crates/net/src/wire/ipv4.rs crates/net/src/wire/udp.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/fault.rs:
crates/net/src/link.rs:
crates/net/src/metrics.rs:
crates/net/src/packet.rs:
crates/net/src/pcap.rs:
crates/net/src/trace.rs:
crates/net/src/wire/mod.rs:
crates/net/src/wire/ethernet.rs:
crates/net/src/wire/ipv4.rs:
crates/net/src/wire/udp.rs:
