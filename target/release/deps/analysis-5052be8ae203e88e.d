/root/repo/target/release/deps/analysis-5052be8ae203e88e.d: crates/bench/benches/analysis.rs Cargo.toml

/root/repo/target/release/deps/libanalysis-5052be8ae203e88e.rmeta: crates/bench/benches/analysis.rs Cargo.toml

crates/bench/benches/analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
