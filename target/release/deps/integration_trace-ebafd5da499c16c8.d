/root/repo/target/release/deps/integration_trace-ebafd5da499c16c8.d: crates/core/../../tests/integration_trace.rs Cargo.toml

/root/repo/target/release/deps/libintegration_trace-ebafd5da499c16c8.rmeta: crates/core/../../tests/integration_trace.rs Cargo.toml

crates/core/../../tests/integration_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
