/root/repo/target/release/deps/integration_determinism-4f059da57a86ce94.d: crates/core/../../tests/integration_determinism.rs Cargo.toml

/root/repo/target/release/deps/libintegration_determinism-4f059da57a86ce94.rmeta: crates/core/../../tests/integration_determinism.rs Cargo.toml

crates/core/../../tests/integration_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
