/root/repo/target/release/deps/repro-cca0052d05d4fb77.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-cca0052d05d4fb77: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
