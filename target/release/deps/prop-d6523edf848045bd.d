/root/repo/target/release/deps/prop-d6523edf848045bd.d: crates/sim/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-d6523edf848045bd.rmeta: crates/sim/tests/prop.rs Cargo.toml

crates/sim/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
