/root/repo/target/release/deps/prop-a6466dd9cac55180.d: crates/router/tests/prop.rs

/root/repo/target/release/deps/prop-a6466dd9cac55180: crates/router/tests/prop.rs

crates/router/tests/prop.rs:
