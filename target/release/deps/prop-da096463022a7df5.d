/root/repo/target/release/deps/prop-da096463022a7df5.d: crates/net/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-da096463022a7df5.rmeta: crates/net/tests/prop.rs Cargo.toml

crates/net/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
