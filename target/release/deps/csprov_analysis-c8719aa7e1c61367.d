/root/repo/target/release/deps/csprov_analysis-c8719aa7e1c61367.d: crates/analysis/src/lib.rs crates/analysis/src/acf.rs crates/analysis/src/fit.rs crates/analysis/src/flows.rs crates/analysis/src/histogram.rs crates/analysis/src/hurst.rs crates/analysis/src/plot.rs crates/analysis/src/report.rs crates/analysis/src/series.rs crates/analysis/src/sessions.rs crates/analysis/src/summary.rs crates/analysis/src/welford.rs

/root/repo/target/release/deps/libcsprov_analysis-c8719aa7e1c61367.rlib: crates/analysis/src/lib.rs crates/analysis/src/acf.rs crates/analysis/src/fit.rs crates/analysis/src/flows.rs crates/analysis/src/histogram.rs crates/analysis/src/hurst.rs crates/analysis/src/plot.rs crates/analysis/src/report.rs crates/analysis/src/series.rs crates/analysis/src/sessions.rs crates/analysis/src/summary.rs crates/analysis/src/welford.rs

/root/repo/target/release/deps/libcsprov_analysis-c8719aa7e1c61367.rmeta: crates/analysis/src/lib.rs crates/analysis/src/acf.rs crates/analysis/src/fit.rs crates/analysis/src/flows.rs crates/analysis/src/histogram.rs crates/analysis/src/hurst.rs crates/analysis/src/plot.rs crates/analysis/src/report.rs crates/analysis/src/series.rs crates/analysis/src/sessions.rs crates/analysis/src/summary.rs crates/analysis/src/welford.rs

crates/analysis/src/lib.rs:
crates/analysis/src/acf.rs:
crates/analysis/src/fit.rs:
crates/analysis/src/flows.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/hurst.rs:
crates/analysis/src/plot.rs:
crates/analysis/src/report.rs:
crates/analysis/src/series.rs:
crates/analysis/src/sessions.rs:
crates/analysis/src/summary.rs:
crates/analysis/src/welford.rs:
