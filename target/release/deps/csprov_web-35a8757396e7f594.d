/root/repo/target/release/deps/csprov_web-35a8757396e7f594.d: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_web-35a8757396e7f594.rmeta: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs Cargo.toml

crates/web/src/lib.rs:
crates/web/src/tcp.rs:
crates/web/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
