/root/repo/target/release/deps/csprov_web-a8840a21e3a6feae.d: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_web-a8840a21e3a6feae.rmeta: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs Cargo.toml

crates/web/src/lib.rs:
crates/web/src/tcp.rs:
crates/web/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
