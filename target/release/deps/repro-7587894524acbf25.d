/root/repo/target/release/deps/repro-7587894524acbf25.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/release/deps/librepro-7587894524acbf25.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
