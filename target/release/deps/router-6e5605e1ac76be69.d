/root/repo/target/release/deps/router-6e5605e1ac76be69.d: crates/bench/benches/router.rs Cargo.toml

/root/repo/target/release/deps/librouter-6e5605e1ac76be69.rmeta: crates/bench/benches/router.rs Cargo.toml

crates/bench/benches/router.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
