/root/repo/target/release/deps/sim_kernel-0b32f8c91429a5c4.d: crates/bench/benches/sim_kernel.rs

/root/repo/target/release/deps/sim_kernel-0b32f8c91429a5c4: crates/bench/benches/sim_kernel.rs

crates/bench/benches/sim_kernel.rs:
