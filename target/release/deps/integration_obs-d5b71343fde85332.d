/root/repo/target/release/deps/integration_obs-d5b71343fde85332.d: crates/core/../../tests/integration_obs.rs

/root/repo/target/release/deps/integration_obs-d5b71343fde85332: crates/core/../../tests/integration_obs.rs

crates/core/../../tests/integration_obs.rs:
