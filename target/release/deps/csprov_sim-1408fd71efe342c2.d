/root/repo/target/release/deps/csprov_sim-1408fd71efe342c2.d: crates/sim/src/lib.rs crates/sim/src/check.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/process.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/csprov_sim-1408fd71efe342c2: crates/sim/src/lib.rs crates/sim/src/check.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/process.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/check.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/process.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
