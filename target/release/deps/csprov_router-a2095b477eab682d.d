/root/repo/target/release/deps/csprov_router-a2095b477eab682d.d: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/metrics.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

/root/repo/target/release/deps/libcsprov_router-a2095b477eab682d.rlib: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/metrics.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

/root/repo/target/release/deps/libcsprov_router-a2095b477eab682d.rmeta: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/metrics.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

crates/router/src/lib.rs:
crates/router/src/cache.rs:
crates/router/src/engine.rs:
crates/router/src/impaired.rs:
crates/router/src/metrics.rs:
crates/router/src/nat.rs:
crates/router/src/provision.rs:
crates/router/src/table.rs:
