/root/repo/target/release/deps/csprov_web-b5c7684880cb02de.d: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/release/deps/libcsprov_web-b5c7684880cb02de.rlib: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/release/deps/libcsprov_web-b5c7684880cb02de.rmeta: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

crates/web/src/lib.rs:
crates/web/src/tcp.rs:
crates/web/src/workload.rs:
