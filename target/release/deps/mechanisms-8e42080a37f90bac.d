/root/repo/target/release/deps/mechanisms-8e42080a37f90bac.d: crates/game/tests/mechanisms.rs Cargo.toml

/root/repo/target/release/deps/libmechanisms-8e42080a37f90bac.rmeta: crates/game/tests/mechanisms.rs Cargo.toml

crates/game/tests/mechanisms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
