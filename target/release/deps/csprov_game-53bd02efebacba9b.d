/root/repo/target/release/deps/csprov_game-53bd02efebacba9b.d: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_game-53bd02efebacba9b.rmeta: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs Cargo.toml

crates/game/src/lib.rs:
crates/game/src/config.rs:
crates/game/src/maps.rs:
crates/game/src/metrics.rs:
crates/game/src/packets.rs:
crates/game/src/server.rs:
crates/game/src/session.rs:
crates/game/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
