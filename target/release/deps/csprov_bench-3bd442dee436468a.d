/root/repo/target/release/deps/csprov_bench-3bd442dee436468a.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libcsprov_bench-3bd442dee436468a.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libcsprov_bench-3bd442dee436468a.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
