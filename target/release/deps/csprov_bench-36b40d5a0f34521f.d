/root/repo/target/release/deps/csprov_bench-36b40d5a0f34521f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libcsprov_bench-36b40d5a0f34521f.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libcsprov_bench-36b40d5a0f34521f.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
