/root/repo/target/release/deps/csprov-61ee6286662a1216.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/aggregate.rs crates/core/src/experiments/figures.rs crates/core/src/experiments/nat.rs crates/core/src/experiments/tables.rs crates/core/src/experiments/web.rs crates/core/src/pipeline.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/release/deps/libcsprov-61ee6286662a1216.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/aggregate.rs crates/core/src/experiments/figures.rs crates/core/src/experiments/nat.rs crates/core/src/experiments/tables.rs crates/core/src/experiments/web.rs crates/core/src/pipeline.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablations.rs:
crates/core/src/experiments/aggregate.rs:
crates/core/src/experiments/figures.rs:
crates/core/src/experiments/nat.rs:
crates/core/src/experiments/tables.rs:
crates/core/src/experiments/web.rs:
crates/core/src/pipeline.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
