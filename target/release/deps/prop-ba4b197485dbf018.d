/root/repo/target/release/deps/prop-ba4b197485dbf018.d: crates/web/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-ba4b197485dbf018.rmeta: crates/web/tests/prop.rs Cargo.toml

crates/web/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
