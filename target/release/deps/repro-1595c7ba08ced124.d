/root/repo/target/release/deps/repro-1595c7ba08ced124.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-1595c7ba08ced124: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
