/root/repo/target/release/deps/cstrace-9de6f4febc0e2cca.d: crates/bench/src/bin/cstrace.rs Cargo.toml

/root/repo/target/release/deps/libcstrace-9de6f4febc0e2cca.rmeta: crates/bench/src/bin/cstrace.rs Cargo.toml

crates/bench/src/bin/cstrace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
