/root/repo/target/release/deps/integration_nat-79994ebdd4d74383.d: crates/core/../../tests/integration_nat.rs

/root/repo/target/release/deps/integration_nat-79994ebdd4d74383: crates/core/../../tests/integration_nat.rs

crates/core/../../tests/integration_nat.rs:
