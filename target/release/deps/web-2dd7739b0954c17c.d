/root/repo/target/release/deps/web-2dd7739b0954c17c.d: crates/bench/benches/web.rs Cargo.toml

/root/repo/target/release/deps/libweb-2dd7739b0954c17c.rmeta: crates/bench/benches/web.rs Cargo.toml

crates/bench/benches/web.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
