/root/repo/target/release/deps/csprov_obs-9461c606011d2079.d: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_obs-9461c606011d2079.rmeta: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/histogram.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
