/root/repo/target/release/deps/csprov_obs-7e9da31331a88349.d: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_obs-7e9da31331a88349.rmeta: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/histogram.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
