/root/repo/target/release/deps/cstrace-ec570ab635a83726.d: crates/bench/src/bin/cstrace.rs Cargo.toml

/root/repo/target/release/deps/libcstrace-ec570ab635a83726.rmeta: crates/bench/src/bin/cstrace.rs Cargo.toml

crates/bench/src/bin/cstrace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
