/root/repo/target/release/deps/integration_nat-45f13a09bfd42875.d: crates/core/../../tests/integration_nat.rs Cargo.toml

/root/repo/target/release/deps/libintegration_nat-45f13a09bfd42875.rmeta: crates/core/../../tests/integration_nat.rs Cargo.toml

crates/core/../../tests/integration_nat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
