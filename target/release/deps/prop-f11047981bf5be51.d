/root/repo/target/release/deps/prop-f11047981bf5be51.d: crates/net/tests/prop.rs

/root/repo/target/release/deps/prop-f11047981bf5be51: crates/net/tests/prop.rs

crates/net/tests/prop.rs:
