/root/repo/target/release/deps/prop-d5241c04ca472208.d: crates/game/tests/prop.rs

/root/repo/target/release/deps/prop-d5241c04ca472208: crates/game/tests/prop.rs

crates/game/tests/prop.rs:
