/root/repo/target/release/deps/prop-4393a1964d97a257.d: crates/game/tests/prop.rs Cargo.toml

/root/repo/target/release/deps/libprop-4393a1964d97a257.rmeta: crates/game/tests/prop.rs Cargo.toml

crates/game/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
