/root/repo/target/release/deps/csprov_model-e3f3b5e65e52d766.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs Cargo.toml

/root/repo/target/release/deps/libcsprov_model-e3f3b5e65e52d766.rmeta: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
