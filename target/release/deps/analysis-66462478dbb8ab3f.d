/root/repo/target/release/deps/analysis-66462478dbb8ab3f.d: crates/bench/benches/analysis.rs

/root/repo/target/release/deps/analysis-66462478dbb8ab3f: crates/bench/benches/analysis.rs

crates/bench/benches/analysis.rs:
