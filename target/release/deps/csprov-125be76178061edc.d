/root/repo/target/release/deps/csprov-125be76178061edc.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/aggregate.rs crates/core/src/experiments/figures.rs crates/core/src/experiments/nat.rs crates/core/src/experiments/tables.rs crates/core/src/experiments/web.rs crates/core/src/pipeline.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/csprov-125be76178061edc: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/aggregate.rs crates/core/src/experiments/figures.rs crates/core/src/experiments/nat.rs crates/core/src/experiments/tables.rs crates/core/src/experiments/web.rs crates/core/src/pipeline.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablations.rs:
crates/core/src/experiments/aggregate.rs:
crates/core/src/experiments/figures.rs:
crates/core/src/experiments/nat.rs:
crates/core/src/experiments/tables.rs:
crates/core/src/experiments/web.rs:
crates/core/src/pipeline.rs:
crates/core/src/sweep.rs:
