/root/repo/target/release/deps/wire-f0a7a9e4b3883f29.d: crates/bench/benches/wire.rs Cargo.toml

/root/repo/target/release/deps/libwire-f0a7a9e4b3883f29.rmeta: crates/bench/benches/wire.rs Cargo.toml

crates/bench/benches/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
