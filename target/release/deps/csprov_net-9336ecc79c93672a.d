/root/repo/target/release/deps/csprov_net-9336ecc79c93672a.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/fault.rs crates/net/src/link.rs crates/net/src/metrics.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/trace.rs crates/net/src/wire/mod.rs crates/net/src/wire/ethernet.rs crates/net/src/wire/ipv4.rs crates/net/src/wire/udp.rs

/root/repo/target/release/deps/csprov_net-9336ecc79c93672a: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/fault.rs crates/net/src/link.rs crates/net/src/metrics.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/trace.rs crates/net/src/wire/mod.rs crates/net/src/wire/ethernet.rs crates/net/src/wire/ipv4.rs crates/net/src/wire/udp.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/fault.rs:
crates/net/src/link.rs:
crates/net/src/metrics.rs:
crates/net/src/packet.rs:
crates/net/src/pcap.rs:
crates/net/src/trace.rs:
crates/net/src/wire/mod.rs:
crates/net/src/wire/ethernet.rs:
crates/net/src/wire/ipv4.rs:
crates/net/src/wire/udp.rs:
