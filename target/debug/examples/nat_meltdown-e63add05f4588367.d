/root/repo/target/debug/examples/nat_meltdown-e63add05f4588367.d: crates/core/../../examples/nat_meltdown.rs

/root/repo/target/debug/examples/nat_meltdown-e63add05f4588367: crates/core/../../examples/nat_meltdown.rs

crates/core/../../examples/nat_meltdown.rs:
