/root/repo/target/debug/examples/quickstart-9b6dd6f61659826c.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-9b6dd6f61659826c.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
