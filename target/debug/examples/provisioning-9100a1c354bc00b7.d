/root/repo/target/debug/examples/provisioning-9100a1c354bc00b7.d: crates/core/../../examples/provisioning.rs

/root/repo/target/debug/examples/provisioning-9100a1c354bc00b7: crates/core/../../examples/provisioning.rs

crates/core/../../examples/provisioning.rs:
