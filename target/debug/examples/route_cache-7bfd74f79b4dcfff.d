/root/repo/target/debug/examples/route_cache-7bfd74f79b4dcfff.d: crates/core/../../examples/route_cache.rs Cargo.toml

/root/repo/target/debug/examples/libroute_cache-7bfd74f79b4dcfff.rmeta: crates/core/../../examples/route_cache.rs Cargo.toml

crates/core/../../examples/route_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
