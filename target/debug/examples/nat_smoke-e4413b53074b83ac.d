/root/repo/target/debug/examples/nat_smoke-e4413b53074b83ac.d: crates/router/examples/nat_smoke.rs

/root/repo/target/debug/examples/nat_smoke-e4413b53074b83ac: crates/router/examples/nat_smoke.rs

crates/router/examples/nat_smoke.rs:
