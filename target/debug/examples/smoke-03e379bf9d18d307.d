/root/repo/target/debug/examples/smoke-03e379bf9d18d307.d: crates/game/examples/smoke.rs

/root/repo/target/debug/examples/smoke-03e379bf9d18d307: crates/game/examples/smoke.rs

crates/game/examples/smoke.rs:
