/root/repo/target/debug/examples/nat_smoke-ef897d5c1dea1ba1.d: crates/router/examples/nat_smoke.rs Cargo.toml

/root/repo/target/debug/examples/libnat_smoke-ef897d5c1dea1ba1.rmeta: crates/router/examples/nat_smoke.rs Cargo.toml

crates/router/examples/nat_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
