/root/repo/target/debug/examples/quickstart-f9a759128ab372a6.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f9a759128ab372a6: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
