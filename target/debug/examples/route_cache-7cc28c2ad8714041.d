/root/repo/target/debug/examples/route_cache-7cc28c2ad8714041.d: crates/core/../../examples/route_cache.rs

/root/repo/target/debug/examples/route_cache-7cc28c2ad8714041: crates/core/../../examples/route_cache.rs

crates/core/../../examples/route_cache.rs:
