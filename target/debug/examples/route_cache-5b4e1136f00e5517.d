/root/repo/target/debug/examples/route_cache-5b4e1136f00e5517.d: crates/core/../../examples/route_cache.rs

/root/repo/target/debug/examples/route_cache-5b4e1136f00e5517: crates/core/../../examples/route_cache.rs

crates/core/../../examples/route_cache.rs:
