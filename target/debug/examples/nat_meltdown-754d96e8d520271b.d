/root/repo/target/debug/examples/nat_meltdown-754d96e8d520271b.d: crates/core/../../examples/nat_meltdown.rs

/root/repo/target/debug/examples/nat_meltdown-754d96e8d520271b: crates/core/../../examples/nat_meltdown.rs

crates/core/../../examples/nat_meltdown.rs:
