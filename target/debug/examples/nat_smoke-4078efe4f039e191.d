/root/repo/target/debug/examples/nat_smoke-4078efe4f039e191.d: crates/router/examples/nat_smoke.rs

/root/repo/target/debug/examples/nat_smoke-4078efe4f039e191: crates/router/examples/nat_smoke.rs

crates/router/examples/nat_smoke.rs:
