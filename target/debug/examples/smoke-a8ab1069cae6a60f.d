/root/repo/target/debug/examples/smoke-a8ab1069cae6a60f.d: crates/game/examples/smoke.rs Cargo.toml

/root/repo/target/debug/examples/libsmoke-a8ab1069cae6a60f.rmeta: crates/game/examples/smoke.rs Cargo.toml

crates/game/examples/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
