/root/repo/target/debug/examples/provisioning-9f2dbd2d32e0a05a.d: crates/core/../../examples/provisioning.rs Cargo.toml

/root/repo/target/debug/examples/libprovisioning-9f2dbd2d32e0a05a.rmeta: crates/core/../../examples/provisioning.rs Cargo.toml

crates/core/../../examples/provisioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
