/root/repo/target/debug/examples/nat_meltdown-2f6498f0bd445e17.d: crates/core/../../examples/nat_meltdown.rs Cargo.toml

/root/repo/target/debug/examples/libnat_meltdown-2f6498f0bd445e17.rmeta: crates/core/../../examples/nat_meltdown.rs Cargo.toml

crates/core/../../examples/nat_meltdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
