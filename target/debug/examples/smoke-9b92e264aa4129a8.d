/root/repo/target/debug/examples/smoke-9b92e264aa4129a8.d: crates/game/examples/smoke.rs

/root/repo/target/debug/examples/smoke-9b92e264aa4129a8: crates/game/examples/smoke.rs

crates/game/examples/smoke.rs:
