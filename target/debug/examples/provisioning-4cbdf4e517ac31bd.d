/root/repo/target/debug/examples/provisioning-4cbdf4e517ac31bd.d: crates/core/../../examples/provisioning.rs

/root/repo/target/debug/examples/provisioning-4cbdf4e517ac31bd: crates/core/../../examples/provisioning.rs

crates/core/../../examples/provisioning.rs:
