/root/repo/target/debug/examples/quickstart-6a3469a346c6ad66.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6a3469a346c6ad66: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
