/root/repo/target/debug/examples/nat_smoke-c7ecda08ac4931e3.d: crates/router/examples/nat_smoke.rs

/root/repo/target/debug/examples/nat_smoke-c7ecda08ac4931e3: crates/router/examples/nat_smoke.rs

crates/router/examples/nat_smoke.rs:
