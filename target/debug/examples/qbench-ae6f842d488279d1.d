/root/repo/target/debug/examples/qbench-ae6f842d488279d1.d: crates/bench/examples/qbench.rs

/root/repo/target/debug/examples/qbench-ae6f842d488279d1: crates/bench/examples/qbench.rs

crates/bench/examples/qbench.rs:
