/root/repo/target/debug/deps/csprov_model-75e3d966f04a70fd.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/debug/deps/libcsprov_model-75e3d966f04a70fd.rlib: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/debug/deps/libcsprov_model-75e3d966f04a70fd.rmeta: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
