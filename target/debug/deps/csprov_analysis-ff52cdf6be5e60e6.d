/root/repo/target/debug/deps/csprov_analysis-ff52cdf6be5e60e6.d: crates/analysis/src/lib.rs crates/analysis/src/acf.rs crates/analysis/src/fit.rs crates/analysis/src/flows.rs crates/analysis/src/histogram.rs crates/analysis/src/hurst.rs crates/analysis/src/plot.rs crates/analysis/src/report.rs crates/analysis/src/series.rs crates/analysis/src/sessions.rs crates/analysis/src/summary.rs crates/analysis/src/welford.rs

/root/repo/target/debug/deps/libcsprov_analysis-ff52cdf6be5e60e6.rlib: crates/analysis/src/lib.rs crates/analysis/src/acf.rs crates/analysis/src/fit.rs crates/analysis/src/flows.rs crates/analysis/src/histogram.rs crates/analysis/src/hurst.rs crates/analysis/src/plot.rs crates/analysis/src/report.rs crates/analysis/src/series.rs crates/analysis/src/sessions.rs crates/analysis/src/summary.rs crates/analysis/src/welford.rs

/root/repo/target/debug/deps/libcsprov_analysis-ff52cdf6be5e60e6.rmeta: crates/analysis/src/lib.rs crates/analysis/src/acf.rs crates/analysis/src/fit.rs crates/analysis/src/flows.rs crates/analysis/src/histogram.rs crates/analysis/src/hurst.rs crates/analysis/src/plot.rs crates/analysis/src/report.rs crates/analysis/src/series.rs crates/analysis/src/sessions.rs crates/analysis/src/summary.rs crates/analysis/src/welford.rs

crates/analysis/src/lib.rs:
crates/analysis/src/acf.rs:
crates/analysis/src/fit.rs:
crates/analysis/src/flows.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/hurst.rs:
crates/analysis/src/plot.rs:
crates/analysis/src/report.rs:
crates/analysis/src/series.rs:
crates/analysis/src/sessions.rs:
crates/analysis/src/summary.rs:
crates/analysis/src/welford.rs:
