/root/repo/target/debug/deps/csprov_bench-371554999a53742b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libcsprov_bench-371554999a53742b.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libcsprov_bench-371554999a53742b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
