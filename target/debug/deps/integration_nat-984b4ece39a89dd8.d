/root/repo/target/debug/deps/integration_nat-984b4ece39a89dd8.d: crates/core/../../tests/integration_nat.rs

/root/repo/target/debug/deps/integration_nat-984b4ece39a89dd8: crates/core/../../tests/integration_nat.rs

crates/core/../../tests/integration_nat.rs:
