/root/repo/target/debug/deps/integration_determinism-293a8773d6170967.d: crates/core/../../tests/integration_determinism.rs

/root/repo/target/debug/deps/integration_determinism-293a8773d6170967: crates/core/../../tests/integration_determinism.rs

crates/core/../../tests/integration_determinism.rs:
