/root/repo/target/debug/deps/csprov_model-c5683e03df2ec901.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/debug/deps/libcsprov_model-c5683e03df2ec901.rlib: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/debug/deps/libcsprov_model-c5683e03df2ec901.rmeta: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
