/root/repo/target/debug/deps/cstrace-d404b498af12e6c1.d: crates/bench/src/bin/cstrace.rs Cargo.toml

/root/repo/target/debug/deps/libcstrace-d404b498af12e6c1.rmeta: crates/bench/src/bin/cstrace.rs Cargo.toml

crates/bench/src/bin/cstrace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
