/root/repo/target/debug/deps/repro-d6e53256d899e0ac.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-d6e53256d899e0ac.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
