/root/repo/target/debug/deps/csprov_obs-51bafac0bfb406c4.d: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libcsprov_obs-51bafac0bfb406c4.rlib: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libcsprov_obs-51bafac0bfb406c4.rmeta: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/histogram.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
