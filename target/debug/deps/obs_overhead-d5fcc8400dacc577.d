/root/repo/target/debug/deps/obs_overhead-d5fcc8400dacc577.d: crates/bench/benches/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-d5fcc8400dacc577.rmeta: crates/bench/benches/obs_overhead.rs Cargo.toml

crates/bench/benches/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
