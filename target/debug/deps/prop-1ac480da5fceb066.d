/root/repo/target/debug/deps/prop-1ac480da5fceb066.d: crates/game/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-1ac480da5fceb066.rmeta: crates/game/tests/prop.rs Cargo.toml

crates/game/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
