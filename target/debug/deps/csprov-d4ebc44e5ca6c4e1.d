/root/repo/target/debug/deps/csprov-d4ebc44e5ca6c4e1.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/aggregate.rs crates/core/src/experiments/figures.rs crates/core/src/experiments/nat.rs crates/core/src/experiments/tables.rs crates/core/src/experiments/web.rs crates/core/src/pipeline.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libcsprov-d4ebc44e5ca6c4e1.rlib: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/aggregate.rs crates/core/src/experiments/figures.rs crates/core/src/experiments/nat.rs crates/core/src/experiments/tables.rs crates/core/src/experiments/web.rs crates/core/src/pipeline.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libcsprov-d4ebc44e5ca6c4e1.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/aggregate.rs crates/core/src/experiments/figures.rs crates/core/src/experiments/nat.rs crates/core/src/experiments/tables.rs crates/core/src/experiments/web.rs crates/core/src/pipeline.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablations.rs:
crates/core/src/experiments/aggregate.rs:
crates/core/src/experiments/figures.rs:
crates/core/src/experiments/nat.rs:
crates/core/src/experiments/tables.rs:
crates/core/src/experiments/web.rs:
crates/core/src/pipeline.rs:
crates/core/src/sweep.rs:
