/root/repo/target/debug/deps/mechanisms-62554e59c5b669ee.d: crates/game/tests/mechanisms.rs

/root/repo/target/debug/deps/mechanisms-62554e59c5b669ee: crates/game/tests/mechanisms.rs

crates/game/tests/mechanisms.rs:
