/root/repo/target/debug/deps/csprov_obs-3f23371ac54f0a0b.d: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/csprov_obs-3f23371ac54f0a0b: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/histogram.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
