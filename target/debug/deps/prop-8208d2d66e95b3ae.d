/root/repo/target/debug/deps/prop-8208d2d66e95b3ae.d: crates/analysis/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-8208d2d66e95b3ae.rmeta: crates/analysis/tests/prop.rs Cargo.toml

crates/analysis/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
