/root/repo/target/debug/deps/mechanisms-8a49242834e8f2e9.d: crates/game/tests/mechanisms.rs

/root/repo/target/debug/deps/mechanisms-8a49242834e8f2e9: crates/game/tests/mechanisms.rs

crates/game/tests/mechanisms.rs:
