/root/repo/target/debug/deps/csprov_model-b71e937ab5585467.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/debug/deps/csprov_model-b71e937ab5585467: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
