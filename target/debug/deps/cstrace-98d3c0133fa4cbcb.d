/root/repo/target/debug/deps/cstrace-98d3c0133fa4cbcb.d: crates/bench/src/bin/cstrace.rs

/root/repo/target/debug/deps/cstrace-98d3c0133fa4cbcb: crates/bench/src/bin/cstrace.rs

crates/bench/src/bin/cstrace.rs:
