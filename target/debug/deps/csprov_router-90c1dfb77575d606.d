/root/repo/target/debug/deps/csprov_router-90c1dfb77575d606.d: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/metrics.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

/root/repo/target/debug/deps/csprov_router-90c1dfb77575d606: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/metrics.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

crates/router/src/lib.rs:
crates/router/src/cache.rs:
crates/router/src/engine.rs:
crates/router/src/impaired.rs:
crates/router/src/metrics.rs:
crates/router/src/nat.rs:
crates/router/src/provision.rs:
crates/router/src/table.rs:
