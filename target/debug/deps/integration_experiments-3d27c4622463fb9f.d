/root/repo/target/debug/deps/integration_experiments-3d27c4622463fb9f.d: crates/core/../../tests/integration_experiments.rs

/root/repo/target/debug/deps/integration_experiments-3d27c4622463fb9f: crates/core/../../tests/integration_experiments.rs

crates/core/../../tests/integration_experiments.rs:
