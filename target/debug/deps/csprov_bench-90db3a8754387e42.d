/root/repo/target/debug/deps/csprov_bench-90db3a8754387e42.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/csprov_bench-90db3a8754387e42: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
