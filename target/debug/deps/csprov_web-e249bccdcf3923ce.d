/root/repo/target/debug/deps/csprov_web-e249bccdcf3923ce.d: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/debug/deps/csprov_web-e249bccdcf3923ce: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

crates/web/src/lib.rs:
crates/web/src/tcp.rs:
crates/web/src/workload.rs:
