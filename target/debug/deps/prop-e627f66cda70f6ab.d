/root/repo/target/debug/deps/prop-e627f66cda70f6ab.d: crates/sim/tests/prop.rs

/root/repo/target/debug/deps/prop-e627f66cda70f6ab: crates/sim/tests/prop.rs

crates/sim/tests/prop.rs:
