/root/repo/target/debug/deps/prop-2c4a3a5fcda43e15.d: crates/net/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-2c4a3a5fcda43e15.rmeta: crates/net/tests/prop.rs Cargo.toml

crates/net/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
