/root/repo/target/debug/deps/csprov_game-d9ca606fd1f821b2.d: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

/root/repo/target/debug/deps/libcsprov_game-d9ca606fd1f821b2.rlib: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

/root/repo/target/debug/deps/libcsprov_game-d9ca606fd1f821b2.rmeta: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

crates/game/src/lib.rs:
crates/game/src/config.rs:
crates/game/src/maps.rs:
crates/game/src/packets.rs:
crates/game/src/server.rs:
crates/game/src/session.rs:
crates/game/src/world.rs:
