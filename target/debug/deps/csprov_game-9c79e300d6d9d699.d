/root/repo/target/debug/deps/csprov_game-9c79e300d6d9d699.d: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libcsprov_game-9c79e300d6d9d699.rmeta: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs Cargo.toml

crates/game/src/lib.rs:
crates/game/src/config.rs:
crates/game/src/maps.rs:
crates/game/src/metrics.rs:
crates/game/src/packets.rs:
crates/game/src/server.rs:
crates/game/src/session.rs:
crates/game/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
