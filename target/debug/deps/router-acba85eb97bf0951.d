/root/repo/target/debug/deps/router-acba85eb97bf0951.d: crates/bench/benches/router.rs Cargo.toml

/root/repo/target/debug/deps/librouter-acba85eb97bf0951.rmeta: crates/bench/benches/router.rs Cargo.toml

crates/bench/benches/router.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
