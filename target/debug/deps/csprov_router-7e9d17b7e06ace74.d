/root/repo/target/debug/deps/csprov_router-7e9d17b7e06ace74.d: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

/root/repo/target/debug/deps/csprov_router-7e9d17b7e06ace74: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

crates/router/src/lib.rs:
crates/router/src/cache.rs:
crates/router/src/engine.rs:
crates/router/src/impaired.rs:
crates/router/src/nat.rs:
crates/router/src/provision.rs:
crates/router/src/table.rs:
