/root/repo/target/debug/deps/csprov_bench-073222185b00cc74.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/csprov_bench-073222185b00cc74: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
