/root/repo/target/debug/deps/csprov_game-e550c66afc2291c8.d: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libcsprov_game-e550c66afc2291c8.rmeta: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs Cargo.toml

crates/game/src/lib.rs:
crates/game/src/config.rs:
crates/game/src/maps.rs:
crates/game/src/metrics.rs:
crates/game/src/packets.rs:
crates/game/src/server.rs:
crates/game/src/session.rs:
crates/game/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
