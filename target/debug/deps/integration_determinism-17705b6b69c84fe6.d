/root/repo/target/debug/deps/integration_determinism-17705b6b69c84fe6.d: crates/core/../../tests/integration_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_determinism-17705b6b69c84fe6.rmeta: crates/core/../../tests/integration_determinism.rs Cargo.toml

crates/core/../../tests/integration_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
