/root/repo/target/debug/deps/prop-aec1f71cf5344a5c.d: crates/router/tests/prop.rs

/root/repo/target/debug/deps/prop-aec1f71cf5344a5c: crates/router/tests/prop.rs

crates/router/tests/prop.rs:
