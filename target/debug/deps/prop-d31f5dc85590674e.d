/root/repo/target/debug/deps/prop-d31f5dc85590674e.d: crates/analysis/tests/prop.rs

/root/repo/target/debug/deps/prop-d31f5dc85590674e: crates/analysis/tests/prop.rs

crates/analysis/tests/prop.rs:
