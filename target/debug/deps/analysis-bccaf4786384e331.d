/root/repo/target/debug/deps/analysis-bccaf4786384e331.d: crates/bench/benches/analysis.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis-bccaf4786384e331.rmeta: crates/bench/benches/analysis.rs Cargo.toml

crates/bench/benches/analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
