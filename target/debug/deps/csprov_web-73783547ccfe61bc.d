/root/repo/target/debug/deps/csprov_web-73783547ccfe61bc.d: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/debug/deps/libcsprov_web-73783547ccfe61bc.rlib: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/debug/deps/libcsprov_web-73783547ccfe61bc.rmeta: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

crates/web/src/lib.rs:
crates/web/src/tcp.rs:
crates/web/src/workload.rs:
