/root/repo/target/debug/deps/web-a397f743f83445a6.d: crates/bench/benches/web.rs Cargo.toml

/root/repo/target/debug/deps/libweb-a397f743f83445a6.rmeta: crates/bench/benches/web.rs Cargo.toml

crates/bench/benches/web.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
