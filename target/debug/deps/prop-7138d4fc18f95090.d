/root/repo/target/debug/deps/prop-7138d4fc18f95090.d: crates/web/tests/prop.rs

/root/repo/target/debug/deps/prop-7138d4fc18f95090: crates/web/tests/prop.rs

crates/web/tests/prop.rs:
