/root/repo/target/debug/deps/integration_experiments-0e6839f265bbe538.d: crates/core/../../tests/integration_experiments.rs

/root/repo/target/debug/deps/integration_experiments-0e6839f265bbe538: crates/core/../../tests/integration_experiments.rs

crates/core/../../tests/integration_experiments.rs:
