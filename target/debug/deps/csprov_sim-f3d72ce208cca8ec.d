/root/repo/target/debug/deps/csprov_sim-f3d72ce208cca8ec.d: crates/sim/src/lib.rs crates/sim/src/check.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/process.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libcsprov_sim-f3d72ce208cca8ec.rmeta: crates/sim/src/lib.rs crates/sim/src/check.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/process.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/check.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/process.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
