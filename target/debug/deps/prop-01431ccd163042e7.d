/root/repo/target/debug/deps/prop-01431ccd163042e7.d: crates/router/tests/prop.rs

/root/repo/target/debug/deps/prop-01431ccd163042e7: crates/router/tests/prop.rs

crates/router/tests/prop.rs:
