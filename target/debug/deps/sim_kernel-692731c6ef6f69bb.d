/root/repo/target/debug/deps/sim_kernel-692731c6ef6f69bb.d: crates/bench/benches/sim_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libsim_kernel-692731c6ef6f69bb.rmeta: crates/bench/benches/sim_kernel.rs Cargo.toml

crates/bench/benches/sim_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
