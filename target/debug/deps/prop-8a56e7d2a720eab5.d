/root/repo/target/debug/deps/prop-8a56e7d2a720eab5.d: crates/router/tests/prop.rs

/root/repo/target/debug/deps/prop-8a56e7d2a720eab5: crates/router/tests/prop.rs

crates/router/tests/prop.rs:
