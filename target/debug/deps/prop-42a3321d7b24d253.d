/root/repo/target/debug/deps/prop-42a3321d7b24d253.d: crates/net/tests/prop.rs

/root/repo/target/debug/deps/prop-42a3321d7b24d253: crates/net/tests/prop.rs

crates/net/tests/prop.rs:
