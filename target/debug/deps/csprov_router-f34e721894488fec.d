/root/repo/target/debug/deps/csprov_router-f34e721894488fec.d: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/metrics.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libcsprov_router-f34e721894488fec.rmeta: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/metrics.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs Cargo.toml

crates/router/src/lib.rs:
crates/router/src/cache.rs:
crates/router/src/engine.rs:
crates/router/src/impaired.rs:
crates/router/src/metrics.rs:
crates/router/src/nat.rs:
crates/router/src/provision.rs:
crates/router/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
