/root/repo/target/debug/deps/csprov_sim-c9095c8aab70950d.d: crates/sim/src/lib.rs crates/sim/src/check.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/process.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libcsprov_sim-c9095c8aab70950d.rlib: crates/sim/src/lib.rs crates/sim/src/check.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/process.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libcsprov_sim-c9095c8aab70950d.rmeta: crates/sim/src/lib.rs crates/sim/src/check.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/process.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/check.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/process.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
