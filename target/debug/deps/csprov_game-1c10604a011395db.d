/root/repo/target/debug/deps/csprov_game-1c10604a011395db.d: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

/root/repo/target/debug/deps/libcsprov_game-1c10604a011395db.rlib: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

/root/repo/target/debug/deps/libcsprov_game-1c10604a011395db.rmeta: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

crates/game/src/lib.rs:
crates/game/src/config.rs:
crates/game/src/maps.rs:
crates/game/src/packets.rs:
crates/game/src/server.rs:
crates/game/src/session.rs:
crates/game/src/world.rs:
