/root/repo/target/debug/deps/repro-e8e86ba08533276e.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-e8e86ba08533276e.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
