/root/repo/target/debug/deps/csprov_web-b2c8513566044448.d: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/debug/deps/libcsprov_web-b2c8513566044448.rlib: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/debug/deps/libcsprov_web-b2c8513566044448.rmeta: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

crates/web/src/lib.rs:
crates/web/src/tcp.rs:
crates/web/src/workload.rs:
