/root/repo/target/debug/deps/integration_obs-e26e7490d92be268.d: crates/core/../../tests/integration_obs.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_obs-e26e7490d92be268.rmeta: crates/core/../../tests/integration_obs.rs Cargo.toml

crates/core/../../tests/integration_obs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
