/root/repo/target/debug/deps/csprov_web-54158bf0da851304.d: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libcsprov_web-54158bf0da851304.rmeta: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs Cargo.toml

crates/web/src/lib.rs:
crates/web/src/tcp.rs:
crates/web/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
