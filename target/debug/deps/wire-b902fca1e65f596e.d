/root/repo/target/debug/deps/wire-b902fca1e65f596e.d: crates/bench/benches/wire.rs Cargo.toml

/root/repo/target/debug/deps/libwire-b902fca1e65f596e.rmeta: crates/bench/benches/wire.rs Cargo.toml

crates/bench/benches/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
