/root/repo/target/debug/deps/game-d00130e970d68660.d: crates/bench/benches/game.rs Cargo.toml

/root/repo/target/debug/deps/libgame-d00130e970d68660.rmeta: crates/bench/benches/game.rs Cargo.toml

crates/bench/benches/game.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
