/root/repo/target/debug/deps/prop-5521941be4886eee.d: crates/game/tests/prop.rs

/root/repo/target/debug/deps/prop-5521941be4886eee: crates/game/tests/prop.rs

crates/game/tests/prop.rs:
