/root/repo/target/debug/deps/csprov_game-747a9fc8d3e7ccda.d: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

/root/repo/target/debug/deps/libcsprov_game-747a9fc8d3e7ccda.rlib: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

/root/repo/target/debug/deps/libcsprov_game-747a9fc8d3e7ccda.rmeta: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/metrics.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

crates/game/src/lib.rs:
crates/game/src/config.rs:
crates/game/src/maps.rs:
crates/game/src/metrics.rs:
crates/game/src/packets.rs:
crates/game/src/server.rs:
crates/game/src/session.rs:
crates/game/src/world.rs:
