/root/repo/target/debug/deps/integration_determinism-f1525926b42cb6e7.d: crates/core/../../tests/integration_determinism.rs

/root/repo/target/debug/deps/integration_determinism-f1525926b42cb6e7: crates/core/../../tests/integration_determinism.rs

crates/core/../../tests/integration_determinism.rs:
