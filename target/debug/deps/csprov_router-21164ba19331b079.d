/root/repo/target/debug/deps/csprov_router-21164ba19331b079.d: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

/root/repo/target/debug/deps/libcsprov_router-21164ba19331b079.rlib: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

/root/repo/target/debug/deps/libcsprov_router-21164ba19331b079.rmeta: crates/router/src/lib.rs crates/router/src/cache.rs crates/router/src/engine.rs crates/router/src/impaired.rs crates/router/src/nat.rs crates/router/src/provision.rs crates/router/src/table.rs

crates/router/src/lib.rs:
crates/router/src/cache.rs:
crates/router/src/engine.rs:
crates/router/src/impaired.rs:
crates/router/src/nat.rs:
crates/router/src/provision.rs:
crates/router/src/table.rs:
