/root/repo/target/debug/deps/csprov_net-28bff6d6af3d85ce.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/fault.rs crates/net/src/link.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/trace.rs crates/net/src/wire/mod.rs crates/net/src/wire/ethernet.rs crates/net/src/wire/ipv4.rs crates/net/src/wire/udp.rs

/root/repo/target/debug/deps/libcsprov_net-28bff6d6af3d85ce.rlib: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/fault.rs crates/net/src/link.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/trace.rs crates/net/src/wire/mod.rs crates/net/src/wire/ethernet.rs crates/net/src/wire/ipv4.rs crates/net/src/wire/udp.rs

/root/repo/target/debug/deps/libcsprov_net-28bff6d6af3d85ce.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/fault.rs crates/net/src/link.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/trace.rs crates/net/src/wire/mod.rs crates/net/src/wire/ethernet.rs crates/net/src/wire/ipv4.rs crates/net/src/wire/udp.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/fault.rs:
crates/net/src/link.rs:
crates/net/src/packet.rs:
crates/net/src/pcap.rs:
crates/net/src/trace.rs:
crates/net/src/wire/mod.rs:
crates/net/src/wire/ethernet.rs:
crates/net/src/wire/ipv4.rs:
crates/net/src/wire/udp.rs:
