/root/repo/target/debug/deps/cstrace-820bb09aa78b470d.d: crates/bench/src/bin/cstrace.rs Cargo.toml

/root/repo/target/debug/deps/libcstrace-820bb09aa78b470d.rmeta: crates/bench/src/bin/cstrace.rs Cargo.toml

crates/bench/src/bin/cstrace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
