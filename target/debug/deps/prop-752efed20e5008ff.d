/root/repo/target/debug/deps/prop-752efed20e5008ff.d: crates/sim/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-752efed20e5008ff.rmeta: crates/sim/tests/prop.rs Cargo.toml

crates/sim/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
