/root/repo/target/debug/deps/repro-193479ca59f8d976.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-193479ca59f8d976: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
