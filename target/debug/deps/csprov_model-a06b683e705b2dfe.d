/root/repo/target/debug/deps/csprov_model-a06b683e705b2dfe.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

/root/repo/target/debug/deps/csprov_model-a06b683e705b2dfe: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
