/root/repo/target/debug/deps/csprov_model-b377609cfc2b650d.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs Cargo.toml

/root/repo/target/debug/deps/libcsprov_model-b377609cfc2b650d.rmeta: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
