/root/repo/target/debug/deps/repro-0824285f26293175.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-0824285f26293175: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
