/root/repo/target/debug/deps/prop-7380f315065b5798.d: crates/router/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-7380f315065b5798.rmeta: crates/router/tests/prop.rs Cargo.toml

crates/router/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
