/root/repo/target/debug/deps/mechanisms-32c7f5608bf6e865.d: crates/game/tests/mechanisms.rs Cargo.toml

/root/repo/target/debug/deps/libmechanisms-32c7f5608bf6e865.rmeta: crates/game/tests/mechanisms.rs Cargo.toml

crates/game/tests/mechanisms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
