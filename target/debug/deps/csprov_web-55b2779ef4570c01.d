/root/repo/target/debug/deps/csprov_web-55b2779ef4570c01.d: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

/root/repo/target/debug/deps/csprov_web-55b2779ef4570c01: crates/web/src/lib.rs crates/web/src/tcp.rs crates/web/src/workload.rs

crates/web/src/lib.rs:
crates/web/src/tcp.rs:
crates/web/src/workload.rs:
