/root/repo/target/debug/deps/prop-d72b7d90c8ca21de.d: crates/game/tests/prop.rs

/root/repo/target/debug/deps/prop-d72b7d90c8ca21de: crates/game/tests/prop.rs

crates/game/tests/prop.rs:
