/root/repo/target/debug/deps/prop-8b90cca3f40c1b9d.d: crates/web/tests/prop.rs

/root/repo/target/debug/deps/prop-8b90cca3f40c1b9d: crates/web/tests/prop.rs

crates/web/tests/prop.rs:
