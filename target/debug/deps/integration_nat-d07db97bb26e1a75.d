/root/repo/target/debug/deps/integration_nat-d07db97bb26e1a75.d: crates/core/../../tests/integration_nat.rs

/root/repo/target/debug/deps/integration_nat-d07db97bb26e1a75: crates/core/../../tests/integration_nat.rs

crates/core/../../tests/integration_nat.rs:
