/root/repo/target/debug/deps/integration_obs-4e9237289347d46c.d: crates/core/../../tests/integration_obs.rs

/root/repo/target/debug/deps/integration_obs-4e9237289347d46c: crates/core/../../tests/integration_obs.rs

crates/core/../../tests/integration_obs.rs:
