/root/repo/target/debug/deps/repro-963e1822bed48647.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-963e1822bed48647: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
