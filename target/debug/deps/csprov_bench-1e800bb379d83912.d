/root/repo/target/debug/deps/csprov_bench-1e800bb379d83912.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libcsprov_bench-1e800bb379d83912.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
