/root/repo/target/debug/deps/prop-24f4dbb0b6d46c60.d: crates/web/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-24f4dbb0b6d46c60.rmeta: crates/web/tests/prop.rs Cargo.toml

crates/web/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
