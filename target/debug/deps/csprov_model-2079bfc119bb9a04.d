/root/repo/target/debug/deps/csprov_model-2079bfc119bb9a04.d: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs Cargo.toml

/root/repo/target/debug/deps/libcsprov_model-2079bfc119bb9a04.rmeta: crates/model/src/lib.rs crates/model/src/empirical.rs crates/model/src/source.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/empirical.rs:
crates/model/src/source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
