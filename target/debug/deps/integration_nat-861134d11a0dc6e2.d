/root/repo/target/debug/deps/integration_nat-861134d11a0dc6e2.d: crates/core/../../tests/integration_nat.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_nat-861134d11a0dc6e2.rmeta: crates/core/../../tests/integration_nat.rs Cargo.toml

crates/core/../../tests/integration_nat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
