/root/repo/target/debug/deps/prop-99af2dd866e3b331.d: crates/analysis/tests/prop.rs

/root/repo/target/debug/deps/prop-99af2dd866e3b331: crates/analysis/tests/prop.rs

crates/analysis/tests/prop.rs:
