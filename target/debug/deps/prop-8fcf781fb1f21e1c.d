/root/repo/target/debug/deps/prop-8fcf781fb1f21e1c.d: crates/net/tests/prop.rs

/root/repo/target/debug/deps/prop-8fcf781fb1f21e1c: crates/net/tests/prop.rs

crates/net/tests/prop.rs:
