/root/repo/target/debug/deps/integration_trace-2c7c403a28fad70e.d: crates/core/../../tests/integration_trace.rs

/root/repo/target/debug/deps/integration_trace-2c7c403a28fad70e: crates/core/../../tests/integration_trace.rs

crates/core/../../tests/integration_trace.rs:
