/root/repo/target/debug/deps/integration_experiments-760f3bd53c93d095.d: crates/core/../../tests/integration_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_experiments-760f3bd53c93d095.rmeta: crates/core/../../tests/integration_experiments.rs Cargo.toml

crates/core/../../tests/integration_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
