/root/repo/target/debug/deps/cstrace-7000e34560c628a6.d: crates/bench/src/bin/cstrace.rs

/root/repo/target/debug/deps/cstrace-7000e34560c628a6: crates/bench/src/bin/cstrace.rs

crates/bench/src/bin/cstrace.rs:
