/root/repo/target/debug/deps/integration_trace-e83df3a778acaf66.d: crates/core/../../tests/integration_trace.rs

/root/repo/target/debug/deps/integration_trace-e83df3a778acaf66: crates/core/../../tests/integration_trace.rs

crates/core/../../tests/integration_trace.rs:
