/root/repo/target/debug/deps/cstrace-dd3ed071ba6c445f.d: crates/bench/src/bin/cstrace.rs

/root/repo/target/debug/deps/cstrace-dd3ed071ba6c445f: crates/bench/src/bin/cstrace.rs

crates/bench/src/bin/cstrace.rs:
