/root/repo/target/debug/deps/csprov_obs-bf5ac64b7c26f68c.d: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libcsprov_obs-bf5ac64b7c26f68c.rmeta: crates/obs/src/lib.rs crates/obs/src/histogram.rs crates/obs/src/progress.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/histogram.rs:
crates/obs/src/progress.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
