/root/repo/target/debug/deps/csprov_bench-d175c9137e395c88.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libcsprov_bench-d175c9137e395c88.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libcsprov_bench-d175c9137e395c88.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
