/root/repo/target/debug/deps/csprov_game-ca81d3e329494678.d: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

/root/repo/target/debug/deps/csprov_game-ca81d3e329494678: crates/game/src/lib.rs crates/game/src/config.rs crates/game/src/maps.rs crates/game/src/packets.rs crates/game/src/server.rs crates/game/src/session.rs crates/game/src/world.rs

crates/game/src/lib.rs:
crates/game/src/config.rs:
crates/game/src/maps.rs:
crates/game/src/packets.rs:
crates/game/src/server.rs:
crates/game/src/session.rs:
crates/game/src/world.rs:
