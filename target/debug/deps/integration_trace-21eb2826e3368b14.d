/root/repo/target/debug/deps/integration_trace-21eb2826e3368b14.d: crates/core/../../tests/integration_trace.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_trace-21eb2826e3368b14.rmeta: crates/core/../../tests/integration_trace.rs Cargo.toml

crates/core/../../tests/integration_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
